"""Tests for the span timeline tools: Chrome-trace export, ASCII
rendering, critical path — plus span-balance integration checks on
full 16-node barriers for both networks."""

import json

import pytest

from repro.cluster import (
    build_myrinet_cluster,
    build_quadrics_cluster,
    run_barrier_experiment,
)
from repro.sim import Tracer
from repro.tools import (
    ascii_timeline,
    chrome_trace,
    component_of,
    critical_path,
    write_chrome_trace,
)


# ----------------------------------------------------------------------
# component_of
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "lane,component",
    [
        ("host3", "host"),
        ("pci12", "pci"),
        ("lanai7.cpu", "nic.cpu"),
        ("elan0.event", "nic.event"),
        ("elan15.dma", "nic.dma"),
        ("elan2.thread", "nic.thread"),
        ("wire.n0-n4", "wire"),
        ("wire.n3-bcast", "wire"),
        ("elite", "elite"),
        ("run", "run"),
    ],
)
def test_component_of(lane, component):
    assert component_of(lane) == component


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def _toy_tracer():
    tr = Tracer(enabled=True)
    tr.add_span(0.0, 1.0, "host0", "compute")
    tr.add_span(1.0, 1.5, "pci0", "pio_write")
    tr.add_span(1.5, 2.0, "wire.n0-n1", "barrier", pkt=7)
    return tr


def test_chrome_trace_structure():
    doc = chrome_trace(_toy_tracer())
    events = doc["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    assert len(x) == 3
    for event in x:
        assert event["dur"] >= 0
        assert {"name", "ts", "pid", "tid", "cat"} <= set(event)
    # Node lanes share a process; the wire lives in "fabric".
    names = {
        e["args"]["name"]: e["pid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "node0" in names and "fabric" in names
    wire_event = next(e for e in x if e["name"] == "barrier")
    assert wire_event["pid"] == names["fabric"]
    assert wire_event["args"] == {"pkt": 7}


def test_chrome_trace_skips_open_spans():
    tr = _toy_tracer()
    tr.begin_span(5.0, "host0", "stuck")
    doc = chrome_trace(tr)
    assert all(e["name"] != "stuck" for e in doc["traceEvents"])
    assert any("never ended" in w for w in doc["metadata"]["warnings"])


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_toy_tracer(), str(path))
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------
def test_ascii_timeline_rows_and_window():
    out = ascii_timeline(_toy_tracer(), width=20)
    lines = out.splitlines()
    assert any(line.startswith("host0") for line in lines)
    assert any(line.startswith("wire.n0-n1") for line in lines)
    assert "#" in out


def test_ascii_timeline_empty():
    assert "no spans" in ascii_timeline(Tracer(enabled=True))


# ----------------------------------------------------------------------
# Critical path (unit)
# ----------------------------------------------------------------------
def test_critical_path_tiles_window_exactly():
    tr = Tracer(enabled=True)
    tr.add_span(0.0, 1.0, "host0", "a")
    tr.add_span(1.5, 3.0, "pci0", "b")  # gap 1.0..1.5 becomes a wait
    path = critical_path(tr, 0.0, 3.0)
    assert [s.kind for s in path.steps] == ["busy", "wait", "busy"]
    assert sum(s.duration for s in path.steps) == pytest.approx(path.total)
    assert path.by_component() == pytest.approx({"host": 1.0, "wait": 0.5, "pci": 1.5})


def test_critical_path_prefers_latest_ending_span():
    tr = Tracer(enabled=True)
    tr.add_span(0.0, 2.0, "host0", "long")
    tr.add_span(1.0, 3.0, "pci0", "late")
    path = critical_path(tr, 0.0, 3.0)
    # Walks back through "late", then the portion of "long" before it.
    assert [s.name for s in path.steps] == ["long", "late"]
    assert path.steps[0].end == pytest.approx(1.0)


def test_critical_path_clamps_to_window():
    tr = Tracer(enabled=True)
    tr.add_span(0.0, 10.0, "host0", "spanning")
    path = critical_path(tr, 4.0, 6.0)
    assert len(path.steps) == 1
    assert (path.steps[0].start, path.steps[0].end) == (4.0, 6.0)


def test_critical_path_excludes_meta_lane():
    tr = Tracer(enabled=True)
    tr.add_span(0.0, 5.0, "run", "barrier[0]")
    path = critical_path(tr, 0.0, 5.0)
    assert [s.kind for s in path.steps] == ["wait"]


def test_critical_path_refuses_truncated():
    from repro.sim.trace import TraceTruncated

    tr = Tracer(enabled=True, max_records=1)
    tr.add_span(0.0, 1.0, "host0", "a")
    tr.add_span(1.0, 2.0, "host0", "b")
    with pytest.raises(TraceTruncated):
        critical_path(tr, 0.0, 2.0)


def test_critical_path_rejects_bad_window():
    with pytest.raises(ValueError):
        critical_path(Tracer(enabled=True), 2.0, 1.0)


# ----------------------------------------------------------------------
# Integration: real 16-node barriers, both networks
# ----------------------------------------------------------------------
def _traced_run(network, barrier):
    tracer = Tracer(enabled=True)
    if network == "quadrics":
        cluster = build_quadrics_cluster(nodes=16, tracer=tracer)
    else:
        cluster = build_myrinet_cluster(nodes=16, tracer=tracer)
    result = run_barrier_experiment(cluster, barrier, iterations=3, warmup=2)
    return tracer, result


@pytest.mark.parametrize(
    "network,barrier",
    [("quadrics", "nic-chained"), ("myrinet", "nic-collective"), ("myrinet", "host")],
)
def test_span_balance_and_nesting(network, barrier):
    tracer, _ = _traced_run(network, barrier)
    assert tracer.spans, "instrumentation emitted no spans"
    # Balance: every begun span was ended by the end of the run.
    assert tracer.open_span_count == 0
    assert all(s.closed for s in tracer.spans)
    assert all(s.end >= s.start for s in tracer.spans)
    assert not tracer.truncated
    # Nesting: hardware-unit lanes are capacity-1 resources, so their
    # spans must never overlap (wire lanes are per directed pair and the
    # "run" lane is an annotation, both excluded).
    by_lane = {}
    for span in tracer.spans:
        if span.lane == "run" or span.lane.startswith("wire"):
            continue
        by_lane.setdefault(span.lane, []).append(span)
    for lane, spans in by_lane.items():
        spans.sort(key=lambda s: (s.start, s.end))
        for prev, cur in zip(spans, spans[1:]):
            assert cur.start >= prev.end - 1e-9, (
                f"overlapping spans on {lane}: {prev} vs {cur}"
            )


@pytest.mark.parametrize(
    "network,barrier",
    [("quadrics", "nic-chained"), ("myrinet", "nic-collective")],
)
def test_critical_path_sums_to_iteration_latency(network, barrier):
    tracer, result = _traced_run(network, barrier)
    t0, t1 = result.iteration_window(-1)
    path = critical_path(tracer, t0, t1)
    assert path.total == pytest.approx(t1 - t0, abs=1e-9)
    assert sum(path.by_component().values()) == pytest.approx(t1 - t0, abs=0.01)
    assert sum(s.duration for s in path.steps) == pytest.approx(t1 - t0, abs=0.01)
    # The decomposition must attribute most of the latency to real work.
    assert path.by_component().get("wait", 0.0) < 0.5 * path.total


def test_chrome_trace_roundtrip_real_run(tmp_path):
    tracer, _ = _traced_run("quadrics", "nic-chained")
    path = tmp_path / "q.json"
    write_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(x) == len(tracer.spans)
    tids = {e["tid"] for e in x}
    named = {
        e["tid"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert tids <= named
