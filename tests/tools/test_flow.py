"""Tests for the wire-traffic inspection tools."""

import pytest

from repro.collectives import NicCollectiveBarrierEngine, ProcessGroup, nic_barrier
from repro.sim import Tracer
from repro.tools import message_flow, wire_sequence_diagram
from repro.tools.flow import wire_events
from tests.myrinet.conftest import MyrinetTestCluster


@pytest.fixture
def traced_barrier():
    tracer = Tracer(enabled=True, categories={"wire"})
    cluster = MyrinetTestCluster(n=4, tracer=tracer)
    group = ProcessGroup([0, 1, 2, 3])
    for rank in range(4):
        NicCollectiveBarrierEngine(cluster.nics[rank], group, rank)

    def prog(node):
        yield from nic_barrier(cluster.ports[node], group, 0)

    procs = [cluster.sim.process(prog(i)) for i in range(4)]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed
    return cluster, tracer


def test_wire_events_decoded(traced_barrier):
    _, tracer = traced_barrier
    events = wire_events(tracer)
    # Dissemination, N=4: 2 rounds x 4 ranks = 8 barrier messages.
    assert len(events) == 8
    assert all(ev.kind == "barrier" for ev in events)
    assert all(ev.latency > 0 for ev in events)
    assert [ev.time for ev in events] == sorted(ev.time for ev in events)


def test_time_window_filter(traced_barrier):
    _, tracer = traced_barrier
    all_events = wire_events(tracer)
    mid = all_events[4].time
    early = wire_events(tracer, t1=mid)
    late = wire_events(tracer, t0=mid)
    boundary = sum(1 for ev in all_events if ev.time == mid)
    assert len(early) == sum(1 for ev in all_events if ev.time <= mid)
    assert len(late) == sum(1 for ev in all_events if ev.time >= mid)
    assert len(early) + len(late) == len(all_events) + boundary


def test_message_flow_format(traced_barrier):
    _, tracer = traced_barrier
    text = message_flow(tracer)
    assert "barrier" in text
    assert "->" in text
    assert len(text.splitlines()) == 1 + 8  # header + events


def test_sequence_diagram(traced_barrier):
    _, tracer = traced_barrier
    diagram = wire_sequence_diagram(tracer, nodes=4)
    assert "n0" in diagram and "n3" in diagram
    assert "B" in diagram  # barrier glyph
    assert "*" in diagram  # sender marker


def test_sequence_diagram_empty():
    tracer = Tracer(enabled=True)
    assert "no wire traffic" in wire_sequence_diagram(tracer, nodes=2)


def test_disabled_tracer_yields_nothing():
    tracer = Tracer(enabled=False)
    cluster = MyrinetTestCluster(n=2, tracer=tracer)
    group = ProcessGroup([0, 1])
    for rank in range(2):
        NicCollectiveBarrierEngine(cluster.nics[rank], group, rank)

    def prog(node):
        yield from nic_barrier(cluster.ports[node], group, 0)

    for i in range(2):
        cluster.sim.process(prog(i))
    cluster.sim.run()
    assert wire_events(tracer) == []
