"""Static-rule fixtures for simlint (SL001-SL007).

Every rule gets at least one positive fixture (a violation the rule must
catch, with the right code and line) and one negative fixture (idiomatic
code the rule must stay silent on), plus suppression/scoping coverage
and the repo-wide acceptance check: the real ``repro`` package lints
clean with zero suppression comments.
"""

import textwrap

from repro.tools.simlint import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    STATIC_RULES,
    analyze_source,
    collect_static_findings,
    default_root,
    run_lint,
)
from repro.tools.simlint.static_rules import _SUPPRESS_RE


def lint(source, relpath="sim/fixture.py"):
    return analyze_source(textwrap.dedent(source), relpath)


def codes(source, relpath="sim/fixture.py"):
    return [f.code for f in lint(source, relpath)]


# ----------------------------------------------------------------------
# SL001 — yield discipline
# ----------------------------------------------------------------------
class TestYieldDiscipline:
    def test_string_yield_flagged(self):
        found = lint("""
            def barrier_proc(self):
                yield "done"
        """)
        assert [f.code for f in found] == ["SL001"]
        assert found[0].line == 3
        assert "barrier_proc" in found[0].message

    def test_collection_and_bool_yields_flagged(self):
        assert codes("""
            def p1(self):
                yield [1, 2]
            def p2(self):
                yield True
            def p3(self):
                yield {"a": 1}
        """) == ["SL001", "SL001", "SL001"]

    def test_stray_bare_yield_flagged(self):
        assert codes("""
            def proc(self):
                x = compute()
                yield
        """) == ["SL001"]

    def test_legal_yields_pass(self):
        # Delays, events, processes, and the documented generator-marker
        # idiom (`yield` directly after `return`) are all legal.
        assert codes("""
            def proc(self, params, ev):
                yield params.t_step_us
                yield ev
                msg = yield self.queue.get()
                return msg

            def handler(self):
                self.fire()
                return
                yield
        """) == []


# ----------------------------------------------------------------------
# SL002 — wall-clock reads
# ----------------------------------------------------------------------
class TestWallClock:
    def test_module_call_flagged(self):
        found = lint("""
            import time
            def stamp(self):
                return time.time()
        """)
        assert [f.code for f in found] == ["SL002"]
        assert found[0].line == 4

    def test_from_import_flagged(self):
        assert codes("""
            from time import perf_counter
            def stamp(self):
                return perf_counter()
        """) == ["SL002"]

    def test_sim_now_passes(self):
        assert codes("""
            def stamp(self, sim):
                return sim.now
        """) == []

    def test_out_of_scope_path_exempt(self):
        # Harness code (tools/, experiments/) may read the wall clock.
        assert codes("""
            import time
            def stamp():
                return time.time()
        """, relpath="tools/bench.py") == []


# ----------------------------------------------------------------------
# SL003 — unseeded RNG
# ----------------------------------------------------------------------
class TestUnseededRng:
    def test_module_global_draw_flagged(self):
        assert codes("""
            import random
            def jitter(self):
                return random.random()
        """) == ["SL003"]

    def test_from_import_draw_flagged(self):
        assert codes("""
            from random import choice
            def pick(self, peers):
                return choice(peers)
        """) == ["SL003"]

    def test_unseeded_random_instance_flagged(self):
        assert codes("""
            import random
            def make_rng():
                return random.Random()
        """) == ["SL003"]

    def test_seeded_instance_and_deterministic_rng_pass(self):
        assert codes("""
            import random
            from repro.sim.rng import DeterministicRng
            def make_rngs(seed):
                return random.Random(seed), DeterministicRng(seed, "unit")
        """) == []


# ----------------------------------------------------------------------
# SL004 — id() ordering
# ----------------------------------------------------------------------
class TestIdUsage:
    def test_id_in_logic_flagged(self):
        assert codes("""
            def sort_key(packet):
                return id(packet)
        """) == ["SL004"]

    def test_id_in_repr_exempt(self):
        assert codes("""
            class Port:
                def __repr__(self):
                    return f"<Port at {id(self):#x}>"
        """) == []


# ----------------------------------------------------------------------
# SL005 — unordered iteration
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_set_iteration_flagged(self):
        assert codes("""
            def fan_out(self, sim):
                peers = {1, 2, 3}
                for p in peers:
                    sim.schedule(0.0, self.poke, p)
        """) == ["SL005"]

    def test_set_comprehension_flagged(self):
        assert codes("""
            def snapshot(self, pending: set):
                return [p for p in pending]
        """) == ["SL005"]

    def test_dict_iteration_that_schedules_flagged(self):
        assert codes("""
            def drain(self, sim, queues: dict):
                for dst in queues:
                    sim.schedule(0.0, self.kick, dst)
        """) == ["SL005"]

    def test_pure_dict_iteration_passes(self):
        # Reading a dict without scheduling from the loop body is fine.
        assert codes("""
            def total(self, queues: dict):
                n = 0
                for dst in queues:
                    n += len(queues[dst])
                return n
        """) == []

    def test_sorted_iteration_passes(self):
        assert codes("""
            def drain(self, sim, queues: dict):
                for dst in sorted(queues):
                    sim.schedule(0.0, self.kick, dst)
        """) == []


# ----------------------------------------------------------------------
# SL006 — tracer guard
# ----------------------------------------------------------------------
class TestTracerGuard:
    def test_unguarded_record_flagged(self):
        found = lint("""
            def deliver(self, tracer, now):
                tracer.record(now, "wire", "nic0", "delivered")
        """)
        assert [f.code for f in found] == ["SL006"]
        assert "enabled" in found[0].fixit

    def test_guarded_record_passes(self):
        assert codes("""
            def deliver(self, tracer, now):
                if tracer.enabled:
                    tracer.record(now, "wire", "nic0", "delivered")
        """) == []

    def test_and_guard_and_count_pass(self):
        # `x and tracer.enabled and tracer.record(...)` guards; count()
        # is a shadow no-op and needs no guard.
        assert codes("""
            def deliver(self, tracer, ok):
                ok and tracer.enabled and tracer.add_span(0, 1, "u", "k")
                tracer.count("wire.packets")
        """) == []

    def test_tracer_definition_module_exempt(self):
        assert codes("""
            def record(self, tracer):
                tracer.record(0.0, "u", "n", "self-test")
        """, relpath="sim/trace.py") == []


# ----------------------------------------------------------------------
# SL007 — timing-constant hygiene
# ----------------------------------------------------------------------
class TestTimingLiterals:
    def test_inline_delay_yield_flagged(self):
        assert codes("""
            def inject(self):
                yield 0.5
        """, relpath="myrinet/fixture.py") == ["SL007"]

    def test_inline_cpu_task_cost_flagged(self):
        assert codes("""
            def inject(self, nic):
                yield from nic.cpu_task(1.5, "inject")
        """, relpath="myrinet/fixture.py") == ["SL007"]

    def test_inline_size_kwarg_flagged(self):
        assert codes("""
            def send(self, fabric, Packet):
                fabric.transmit(Packet(0, 1, "data", size_bytes=64))
        """, relpath="myrinet/fixture.py") == ["SL007"]

    def test_named_constants_pass(self):
        assert codes("""
            def inject(self, nic, params):
                yield params.t_inject
                yield from nic.cpu_task(params.t_fill, "fill")
                yield 0
        """, relpath="myrinet/fixture.py") == []

    def test_params_module_exempt(self):
        assert codes("""
            def default_budget():
                yield 0.5
        """, relpath="myrinet/params.py") == []

    def test_sim_scope_without_timing_scope_exempt(self):
        assert codes("""
            def tick(self):
                yield 0.5
        """, relpath="topology/fixture.py") == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    SOURCE = """
        import random
        def jitter(self):
            return random.random()  {comment}
    """

    def test_matching_code_suppressed(self):
        src = self.SOURCE.format(comment="# simlint: disable=SL003")
        assert codes(src) == []

    def test_non_matching_code_not_suppressed(self):
        src = self.SOURCE.format(comment="# simlint: disable=SL002")
        assert codes(src) == ["SL003"]

    def test_blanket_disable_suppresses_everything(self):
        src = self.SOURCE.format(comment="# simlint: disable")
        assert codes(src) == []

    def test_suppression_is_line_scoped(self):
        assert codes("""
            import random  # simlint: disable=SL003
            def jitter(self):
                return random.random()
        """) == ["SL003"]


# ----------------------------------------------------------------------
# Repo-wide acceptance: the simulator itself lints clean, honestly.
# ----------------------------------------------------------------------
def test_repro_package_lints_clean():
    assert collect_static_findings() == []


def test_repro_package_uses_no_suppressions():
    # Violations were fixed, not silenced: no suppression comment may
    # appear anywhere in the simulator sources (the simlint package
    # itself documents the syntax and is exempt).
    root = default_root()
    offenders = []
    scanned = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("tools/simlint/"):
            continue
        scanned.append(rel)
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if _SUPPRESS_RE.search(line):
                offenders.append(f"{rel}:{lineno}")
    assert offenders == []
    # The chaos runner and degradation report are simulator sources too
    # — guard against a future carve-out quietly exempting them.
    assert "tools/chaos.py" in scanned
    assert "experiments/chaos.py" in scanned


def test_every_static_code_has_a_registry_entry():
    assert set(STATIC_RULES) == {f"SL{i:03d}" for i in range(1, 8)}


# ----------------------------------------------------------------------
# Exit codes (library level + CLI e2e)
# ----------------------------------------------------------------------
CLEAN_MODULE = textwrap.dedent("""
    def proc(self, params):
        yield params.t_step_us
""")

DIRTY_MODULE = textwrap.dedent("""
    import random
    def jitter(self):
        return random.random()
""")


def test_run_lint_clean_tree_exits_zero(tmp_path):
    (tmp_path / "myrinet").mkdir()
    (tmp_path / "myrinet" / "clean.py").write_text(CLEAN_MODULE)
    assert run_lint(root=tmp_path) == EXIT_CLEAN
    assert EXIT_CLEAN == 0


def test_run_lint_findings_exit_one(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "bad.py").write_text(DIRTY_MODULE)
    lines = []
    assert run_lint(root=tmp_path, emit=lines.append) == EXIT_FINDINGS
    assert EXIT_FINDINGS == 1
    report = "\n".join(lines)
    assert "SL003" in report and "sim/bad.py:4" in report

def test_run_lint_missing_path_exits_two(tmp_path):
    assert run_lint(root=tmp_path / "nope") == EXIT_INTERNAL
    assert EXIT_INTERNAL == 2


def test_run_lint_syntax_error_exits_two(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "broken.py").write_text("def oops(:\n")
    lines = []
    assert run_lint(root=tmp_path, emit=lines.append) == EXIT_INTERNAL
    assert any("internal error" in line for line in lines)


def test_cli_lint_end_to_end(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "bad.py").write_text(DIRTY_MODULE)
    assert main(["lint", "--path", str(tmp_path)]) == 1
    assert "SL003" in capsys.readouterr().out

    assert main(["lint", "--path", str(tmp_path / "missing")]) == 2
    capsys.readouterr()

    (tmp_path / "sim" / "bad.py").write_text(CLEAN_MODULE)
    assert main(["lint", "--path", str(tmp_path)]) == 0
