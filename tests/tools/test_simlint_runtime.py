"""Runtime model checks: delta phases, perturbation, quiescence.

Three kinds of coverage:

- kernel contract tests for :meth:`Simulator.schedule_phase` (the
  arbitration primitive the fabric's deterministic link grants rely on),
  on both the stock kernel and the tie-break-perturbed one;
- injected-violation fixtures: an order-dependent callback must be
  caught as SL101 by :func:`compare_runs`, a leaked pool unit as SL103
  and a deadlocked process as SL102 by :func:`check_quiescent`;
- positive controls: real barrier experiments (including a seeded fault
  run) stay bit-identical under tie-break permutation and audit clean
  at quiescence.
"""

import pytest

from repro.sim import SimEvent, Simulator, Store
from repro.sim.rng import DeterministicRng
from repro.tools.simlint import (
    TieBreakSimulator,
    check_quiescent,
    compare_runs,
    perturb_barrier_experiment,
)


# ----------------------------------------------------------------------
# Delta-phase kernel contract
# ----------------------------------------------------------------------
def _phase_ordering_trace(sim):
    order = []

    def arm():
        sim.schedule_phase(2, order.append, "p2")
        sim.schedule_phase(1, order.append, "p1")
        order.append("n1")

    sim.schedule(1.0, arm)
    sim.schedule(1.0, order.append, "n2")
    sim.run()
    return order


def test_schedule_phase_runs_after_all_same_time_phase0_calls():
    # p1/p2 are scheduled *before* n2 exists on the heap, yet every
    # phase-0 call at t=1 runs first — phases order, not arrival.
    assert _phase_ordering_trace(Simulator()) == ["n1", "n2", "p1", "p2"]


def test_tiebreak_simulator_preserves_phase_ordering():
    # The perturbed kernel randomizes same-phase ties only; the
    # delta-phase guarantee holds for every permutation.
    for round_idx in range(5):
        rng = DeterministicRng(7, f"test/tiebreak/{round_idx}")
        order = _phase_ordering_trace(TieBreakSimulator(rng))
        assert set(order[:2]) == {"n1", "n2"}
        assert order[2:] == ["p1", "p2"]


@pytest.mark.parametrize("sim_factory", [
    Simulator,
    lambda: TieBreakSimulator(DeterministicRng(0, "test")),
])
def test_schedule_phase_rejects_non_future_phase(sim_factory):
    sim = sim_factory()
    with pytest.raises(ValueError):
        sim.schedule_phase(0, print)

    seen = []

    def in_phase_two():
        seen.append(sim.current_phase)
        with pytest.raises(ValueError):
            sim.schedule_phase(2, print)

    sim.schedule_phase(2, in_phase_two)
    sim.run()
    assert seen == [2]


def test_phase_resets_when_time_advances():
    sim = Simulator()
    phases = []
    sim.schedule(0.0, lambda: sim.schedule_phase(3, lambda: phases.append(sim.current_phase)))
    sim.schedule(1.0, lambda: phases.append(sim.current_phase))
    sim.run()
    assert phases == [3, 0]


# ----------------------------------------------------------------------
# Injected violation: order-dependent callback -> SL101
# ----------------------------------------------------------------------
def test_compare_runs_catches_order_dependent_callback():
    def build_and_run(sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        return tuple(order)  # observable leaks the same-time pop order

    findings = compare_runs(build_and_run, rounds=8, seed=0, where="fixture")
    assert findings
    assert {f.code for f in findings} == {"SL101"}
    assert all(f.path == "fixture" for f in findings)


def test_compare_runs_passes_order_independent_model():
    def build_and_run(sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        return tuple(sorted(order))  # commutative observable

    assert compare_runs(build_and_run, rounds=8, seed=0) == []


# ----------------------------------------------------------------------
# Injected violations at quiescence: SL102 (deadlock), SL103 (leak)
# ----------------------------------------------------------------------
class _FakeProfile:
    name = "fixture"


class _FakeCluster:
    def __init__(self, sim):
        self.sim = sim
        self.profile = _FakeProfile()
        self.nics = ()
        self.ports = ()
        self.tracer = None


def test_quiescence_catches_deadlocked_process():
    sim = Simulator()
    sim.track_processes()
    orphan = SimEvent(sim, name="ack.never")

    def waiter():
        yield orphan  # nobody will ever succeed this

    sim.process(waiter(), name="stuck-sender")
    sim.run()
    report = check_quiescent(_FakeCluster(sim))
    assert [f.code for f in report.findings] == ["SL102"]
    assert "stuck-sender" in report.findings[0].message
    edges = [e for e in report.graph if e.process == "stuck-sender"]
    assert edges and not edges[0].benign
    assert "ack.never" in report.render()


def test_quiescence_treats_parked_service_loop_as_benign():
    sim = Simulator()
    sim.track_processes()
    work = Store(sim, name="nic.work")

    def service_loop():
        while True:
            yield work.get()

    sim.process(service_loop(), name="rx-loop")
    sim.run()
    report = check_quiescent(_FakeCluster(sim))
    assert report.ok
    assert [e.benign for e in report.graph] == [True]


def test_quiescence_flags_required_process_even_when_parked():
    sim = Simulator()
    sim.track_processes()
    work = Store(sim, name="bench.work")

    def driver():
        yield work.get()

    sim.process(driver(), name="bench@0")
    sim.run()
    report = check_quiescent(_FakeCluster(sim), must_complete=("bench@0",))
    assert [f.code for f in report.findings] == ["SL102"]


def test_quiescence_catches_leaked_send_packet():
    from tests.myrinet.conftest import MyrinetTestCluster

    cluster = MyrinetTestCluster(n=2)
    cluster.profile = _FakeProfile()

    def sender():
        yield from cluster.ports[0].send(1, 64, payload="hello")

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    cluster.sim.process(sender())
    cluster.sim.process(receiver())
    cluster.sim.run()
    assert check_quiescent(cluster).ok

    # Inject the violation: a pool unit acquired and never released —
    # the exact leak the retry-exhaustion path used to exhibit.
    assert cluster.nics[0].packet_pool.try_acquire()
    report = check_quiescent(cluster)
    assert [f.code for f in report.findings] == ["SL103"]
    assert "pktpool" in report.findings[0].message
    cluster.nics[0].packet_pool.release()


def test_retry_exhaustion_releases_pool_and_records():
    # Regression for the fault-path leak: a black-holed peer must not
    # retain pool units, send records, or armed timers once the retry
    # budget is spent, and the audit must agree.
    import dataclasses

    from repro.network import FaultInjector, PacketKind
    from tests.myrinet.conftest import TEST_GM, MyrinetTestCluster

    gm = dataclasses.replace(TEST_GM, max_retries=2, ack_timeout_us=50.0)
    faults = FaultInjector()
    faults.drop_all_matching(
        lambda p: p.kind == PacketKind.DATA and p.dst == 1
    )
    cluster = MyrinetTestCluster(n=2, gm=gm, faults=faults)
    cluster.profile = _FakeProfile()

    def sender():
        yield from cluster.ports[0].send(1, 32, payload="doomed")

    cluster.sim.process(sender())
    cluster.sim.run()
    assert cluster.nics[0].packet_pool.in_use == 0
    assert cluster.nics[0].send_records == {}
    assert check_quiescent(cluster).ok


# ----------------------------------------------------------------------
# Positive controls on real experiments (small N keeps these fast)
# ----------------------------------------------------------------------
def test_gsync_bit_identical_under_perturbation():
    # gsync is the regression scheme: same-instant up-RDMAs contending
    # for the parent's last link exposed schedule-ordered grants before
    # the fabric arbiter existed.
    report = perturb_barrier_experiment(
        "elan3_piii700", "gsync", nodes=8, rounds=3, iterations=3, warmup=1
    )
    assert report.ok, report.findings[0].message if report.findings else ""


def test_faulty_nic_collective_bit_identical_under_perturbation():
    report = perturb_barrier_experiment(
        "lanai_xp_xeon2400", "nic-collective", nodes=8, rounds=3,
        iterations=3, warmup=1, drop_probability=0.05,
    )
    assert report.ok, report.findings[0].message if report.findings else ""
    assert report.baseline.counters.get("wire.dropped", 0) > 0


def test_fault_injection_rejected_on_quadrics():
    with pytest.raises(ValueError):
        perturb_barrier_experiment(
            "elan3_piii700", "gsync", nodes=4, drop_probability=0.1
        )


def test_barrier_run_audits_clean_at_quiescence():
    from repro.cluster.builder import build_cluster
    from repro.cluster.profiles import get_profile
    from repro.cluster.runner import run_barrier_experiment

    sim = Simulator()
    sim.track_processes()
    cluster = build_cluster(get_profile("lanai_xp_xeon2400"), 8, sim=sim)
    run_barrier_experiment(
        cluster, "nic-collective", iterations=3, warmup=1, seed=0
    )
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    assert any(e.benign for e in report.graph)  # service loops parked
