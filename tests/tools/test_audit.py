"""Tests for the counter audit: protocol-derived expectations vs the
simulator's measured traffic, across node counts and both networks."""

import pytest

from repro.tools import (
    AUDITABLE_BARRIERS,
    aggregate_counters,
    audit_counters,
    expected_counters,
    run_counter_audit,
)


def test_aggregate_collapses_per_node_pci():
    counters = {
        "pci0.pio": 3,
        "pci1.pio": 4,
        "pci0.dma.nic_to_host": 2,
        "wire.barrier": 9,
    }
    assert aggregate_counters(counters) == {
        "pci.pio": 7,
        "pci.dma.nic_to_host": 2,
        "wire.barrier": 9,
    }


def test_expected_counters_closed_form():
    # N=8 -> r=3 rounds, so 24 messages per barrier; 2 barriers.
    exp = expected_counters("nic-collective", nodes=8, barriers=2)
    assert exp["wire.barrier"] == 48
    assert exp["wire.ack"] == 0
    assert exp["pci.pio"] == 16  # one doorbell per rank per barrier
    direct = expected_counters("nic-direct", nodes=8, barriers=2)
    assert direct["wire.ack"] == 48  # sender-driven: ACK per packet
    host = expected_counters("host", nodes=8, barriers=2)
    assert host["pci.pio"] == 96  # per *message*, not per barrier
    chained = expected_counters("nic-chained", nodes=8, barriers=2)
    assert chained["elan.event_fired"] == 48


def test_expected_counters_consume_schedule_ir():
    # The message totals come off the compiled schedule IR, not a
    # re-derived formula — the closed form survives as a cross-check.
    from repro.collectives.algorithms import closed_form_message_count
    from repro.collectives.schedule_ir import compile_schedule
    from repro.tools.audit import _messages_per_barrier

    for nodes in (2, 4, 6, 8, 13, 16):
        from_ir = compile_schedule("barrier", "dissemination", nodes).total_messages()
        assert _messages_per_barrier(nodes) == from_ir
        assert from_ir == closed_form_message_count("dissemination", nodes)
        exp = expected_counters("nic-collective", nodes=nodes, barriers=3)
        assert exp["wire.barrier"] == 3 * from_ir


def test_expected_counters_rejects_unknown():
    with pytest.raises(ValueError, match="auditable"):
        expected_counters("gsync", nodes=8, barriers=1)
    with pytest.raises(ValueError):
        expected_counters("host", nodes=1, barriers=1)


def test_audit_counters_reports_failures():
    expected = expected_counters("nic-collective", nodes=4, barriers=1)
    measured = {name: value for name, value in expected.items()}
    measured["wire.barrier"] += 1  # a model regression added a packet
    audit = audit_counters(measured, "nic-collective", nodes=4, barriers=1)
    assert not audit.passed
    assert [c.name for c in audit.failures()] == ["wire.barrier"]
    assert "FAIL" in audit.table()


@pytest.mark.parametrize("nodes", [8, 16, 64])
@pytest.mark.parametrize("barrier", AUDITABLE_BARRIERS)
def test_audit_passes_on_real_runs(barrier, nodes):
    iterations, warmup = (10, 3) if nodes < 64 else (2, 1)
    audit = run_counter_audit(
        barrier, nodes=nodes, iterations=iterations, warmup=warmup
    )
    assert audit.passed, f"\n{audit.table()}"
    assert audit.barriers == iterations + warmup


def test_audit_seed_insensitive():
    # The counts are structural — the node permutation must not matter.
    for seed in (0, 7):
        audit = run_counter_audit(
            "nic-chained", nodes=8, iterations=5, warmup=2, seed=seed
        )
        assert audit.passed, f"\n{audit.table()}"


# ----------------------------------------------------------------------
# Group-scoped flow audit (multi-job workloads)
# ----------------------------------------------------------------------
def test_group_flow_audit_two_overlapping_jobs_exact():
    """Two jobs with overlapping allocations on one fabric: the global
    wire totals conflate their traffic (the single-job closed form
    false-fails), but the per-group flow audit is exact for each."""
    from repro.cluster import build_cluster
    from repro.mpi import create_communicators
    from repro.tools.audit import audit_group_flows

    cluster = build_cluster("lanai_xp_xeon2400", 8)
    comms_a = create_communicators(cluster, nodes=[0, 1, 2, 3, 4])
    comms_b = create_communicators(cluster, nodes=[3, 4, 5, 6, 7])

    def prog(comm, count):
        for _ in range(count):
            yield from comm.barrier()

    for rank, comm in enumerate(comms_a):
        cluster.sim.process(prog(comm, 2), name=f"a@{rank}")
    for rank, comm in enumerate(comms_b):
        cluster.sim.process(prog(comm, 3), name=f"b@{rank}")
    cluster.sim.run()

    group_a = comms_a[0]._ctx.barrier_group
    group_b = comms_b[0]._ctx.barrier_group
    per_barrier = group_a.collective_schedule("barrier").total_messages()

    # The machine-wide count sums both jobs: any single-job expectation
    # (2 barriers of one 5-node group) is wrong against it.
    total = cluster.fabric.tracer.counters["wire.barrier"]
    assert total == 5 * per_barrier  # 2 + 3 barriers, same group size
    assert total != 2 * per_barrier

    checks = audit_group_flows(
        cluster.fabric,
        [(group_a, "barrier", 2), (group_b, "barrier", 3)],
    )
    assert [c.ok for c in checks] == [True, True]
    assert checks[0].expected_packets == 2 * per_barrier
    assert checks[1].expected_packets == 3 * per_barrier
    assert checks[0].group_id != checks[1].group_id


def test_group_flow_audit_flags_missing_traffic():
    from repro.cluster import build_cluster
    from repro.mpi import create_communicators
    from repro.tools.audit import audit_group_flows

    cluster = build_cluster("lanai_xp_xeon2400", 4)
    comms = create_communicators(cluster)
    group = comms[0]._ctx.barrier_group
    # No barrier ever ran: the audit must report the shortfall, not pass.
    checks = audit_group_flows(cluster.fabric, [(group, "barrier", 1)])
    assert not checks[0].ok
    assert checks[0].actual_packets == 0
    assert checks[0].expected_packets > 0
