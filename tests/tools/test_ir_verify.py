"""simlint SL201-SL208: the schedule-IR verifier and the bounded model
checker of the data-engine sequence automaton.

One deliberately-broken schedule per rule, asserting the exact SLxxx
code, the ``ir://...`` locus, and the fix-it text — plus the clean-grid
proof (every tuner-universe schedule verifies with zero findings) and
the PR 7 regression guards (the silent NACK-budget ``return`` and the
retired-sequence re-entry, reintroduced via shims on the exported
``SEQUENCE_AUTOMATON`` table, must be caught by SL207/SL208).
"""

import warnings

import pytest

from repro.collectives.algorithms import SCHEDULE_CACHE, configure_schedule_cache
from repro.collectives.data_engine import SEQUENCE_AUTOMATON
from repro.collectives.schedule_ir import (
    CollectiveSchedule,
    ScheduleOp,
    compile_schedule,
)
from repro.tools.simlint import (
    IR_RULES,
    IrVerifyError,
    ModelBounds,
    check_archive_bound,
    ir_grid,
    model_check_schedule,
    run_ir_verify,
    verify_schedule,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    configure_schedule_cache()
    SCHEDULE_CACHE.clear()
    yield
    configure_schedule_cache()
    SCHEDULE_CACHE.clear()


def _schedule(collective, ops_by_rank, payload=0, root=0, algorithm="fixture"):
    """Hand-build a broken schedule; 'fixture' skips the closed-form
    message-count cross-check (it has no §5.1 formula)."""
    return CollectiveSchedule(
        collective,
        algorithm,
        len(ops_by_rank),
        payload,
        tuple(tuple(ops) for ops in ops_by_rank),
        root=root,
    )


def _only(findings, code):
    assert [f.code for f in findings] == [code], [f.render() for f in findings]
    return findings[0]


# ----------------------------------------------------------------------
# Seeded defects: one per rule, exact code + locus + fix-it
# ----------------------------------------------------------------------
def test_sl201_orphan_send():
    broken = _schedule("barrier", [
        [ScheduleOp("send", 0, peer=1, nbytes=0), ScheduleOp("dma", 1, nbytes=0)],
        [ScheduleOp("dma", 0, nbytes=0)],
    ])
    finding = _only(verify_schedule(broken), "SL201")
    assert finding.path == "ir://barrier/fixture/n2/p0/root0/rank0"
    assert finding.line == 1  # 1-based op index of the orphan send
    assert "orphan send" in finding.message
    assert "dropped as unexpected" in finding.message
    assert "add a recv op at rank 1 with peer=0, peer_phase=0" in finding.fixit


def test_sl202_wait_cycle():
    # Both ranks recv before they send: the classic head-to-head deadlock.
    broken = _schedule("barrier", [
        [ScheduleOp("recv", 0, peer=1, peer_phase=0),
         ScheduleOp("send", 0, peer=1, nbytes=0),
         ScheduleOp("dma", 1, nbytes=0)],
        [ScheduleOp("recv", 0, peer=0, peer_phase=0),
         ScheduleOp("send", 0, peer=0, nbytes=0),
         ScheduleOp("dma", 1, nbytes=0)],
    ])
    finding = _only(verify_schedule(broken), "SL202")
    assert finding.path == "ir://barrier/fixture/n2/p0/root0"
    assert "wait cycle" in finding.message
    assert "rank 0" in finding.message and "rank 1" in finding.message
    assert "send_first" in finding.fixit


def test_sl203_overlapping_merge():
    # Rank 0's contribution reaches the root twice: directly, and folded
    # into rank 1's partial — {0, 2} merged with {0, 1} double-counts 0.
    wire = 4 + 1  # payload + 1-byte bitmap for n=3
    broken = _schedule("reduce", [
        [ScheduleOp("send", 0, peer=1, nbytes=wire),
         ScheduleOp("send", 1, peer=2, nbytes=wire),
         ScheduleOp("dma", 2, nbytes=0)],
        [ScheduleOp("recv", 0, peer=0, peer_phase=0),
         ScheduleOp("reduce", 0, peer=0),
         ScheduleOp("send", 1, peer=2, nbytes=wire),
         ScheduleOp("dma", 2, nbytes=0)],
        [ScheduleOp("recv", 0, peer=0, peer_phase=1),
         ScheduleOp("reduce", 0, peer=0),
         ScheduleOp("recv", 1, peer=1, peer_phase=1),
         ScheduleOp("reduce", 1, peer=1),
         ScheduleOp("dma", 2, nbytes=4)],
    ], payload=4, root=2)
    finding = _only(verify_schedule(broken), "SL203")
    assert finding.path == "ir://reduce/fixture/n3/p4/root2/rank2"
    assert finding.line == 4  # the second reduce on the root
    assert "overlapping merge" in finding.message
    assert "{0, 1}" in finding.message and "{0, 2}" in finding.message
    assert "double-counted" in finding.message
    assert "reduce-safe" in finding.fixit


def test_sl203_incomplete_coverage():
    # Rank 1's contribution never reaches rank 0: allreduce must deliver
    # the full set on *every* rank.
    wire = 4 + 1
    broken = _schedule("allreduce", [
        [ScheduleOp("send", 0, peer=1, nbytes=wire),
         ScheduleOp("dma", 1, nbytes=4)],
        [ScheduleOp("recv", 0, peer=0, peer_phase=0),
         ScheduleOp("reduce", 0, peer=0),
         ScheduleOp("dma", 1, nbytes=4)],
    ], payload=4)
    finding = _only(verify_schedule(broken), "SL203")
    assert finding.path == "ir://allreduce/fixture/n2/p4/root0/rank0"
    assert "incomplete reduction" in finding.message
    assert "missing {1}" in finding.message


def test_sl204_wrong_wire_bytes():
    wire = 4 + 1
    broken = _schedule("allreduce", [
        [ScheduleOp("send", 0, peer=1, nbytes=3),  # pin says 5
         ScheduleOp("recv", 0, peer=1, peer_phase=0),
         ScheduleOp("reduce", 0, peer=1),
         ScheduleOp("dma", 1, nbytes=4)],
        [ScheduleOp("send", 0, peer=0, nbytes=wire),
         ScheduleOp("recv", 0, peer=0, peer_phase=0),
         ScheduleOp("reduce", 0, peer=0),
         ScheduleOp("dma", 1, nbytes=4)],
    ], payload=4)
    finding = _only(verify_schedule(broken), "SL204")
    assert finding.path == "ir://allreduce/fixture/n2/p4/root0/rank0"
    assert finding.line == 1
    assert "wire bytes 3 != pinned 5" in finding.message
    assert "nbytes=5" in finding.fixit


def test_sl204_message_count_drift():
    # A *real* algorithm name arms the closed-form cross-check: drop one
    # send/recv pair from a compiled schedule and the count conservation
    # against §5.1 must fire (this is what keeps audit honest).
    good = compile_schedule("barrier", "gather-broadcast", 4)
    ops = [list(good.ops(r)) for r in range(4)]
    ops[3] = [op for op in ops[3] if op.kind == "dma"]
    ops[0] = [
        op for op in ops[0]
        if not (op.kind in ("recv", "reduce") and op.peer == 3)
        and not (op.kind == "send" and op.peer == 3)
    ]
    broken = _schedule(
        "barrier", ops, algorithm="gather-broadcast"
    )
    findings = verify_schedule(broken)
    counts = [f for f in findings if "message-count conservation" in f.message]
    assert len(counts) == 1
    assert counts[0].code == "SL204"
    assert "5 sends" in counts[0].message and "is 6" in counts[0].message


def test_sl205_archive_depth_overflow():
    schedule = compile_schedule("barrier", "dissemination", 8)
    findings = check_archive_bound([schedule], archive_depth=2, max_in_flight=8)
    finding = _only(findings, "SL205")
    assert finding.path == "ir://engine/retirement-archive"
    assert "archive-depth overflow" in finding.message
    assert "7 can retire out of order" in finding.message
    assert "done_floor" in finding.message
    assert "coll_archive_depth to >= 7" in finding.fixit


def test_sl205_clean_at_default_depth():
    schedule = compile_schedule("barrier", "dissemination", 8)
    assert check_archive_bound([schedule]) == []


def test_sl206_unresolvable_nack_target():
    broken = _schedule("barrier", [
        [ScheduleOp("send", 0, peer=1, nbytes=0),
         ScheduleOp("recv", 0, peer=1, peer_phase=99),  # sender stamps 0
         ScheduleOp("dma", 1, nbytes=0)],
        [ScheduleOp("send", 0, peer=0, nbytes=0),
         ScheduleOp("recv", 0, peer=0, peer_phase=0),
         ScheduleOp("dma", 1, nbytes=0)],
    ])
    finding = _only(verify_schedule(broken), "SL206")
    assert finding.path == "ir://barrier/fixture/n2/p0/root0/rank0"
    assert finding.line == 2
    assert "unresolvable NACK target" in finding.message
    assert "sent_messages[99]" in finding.message
    assert "peer_phase=0" in finding.fixit


def test_sl207_silent_return_shim_is_caught(monkeypatch):
    # The PR 7 pre-fix bug: NACK budget exhausts and the handler just
    # returns — live sequence, dead timer, host waits forever.  The
    # engine dispatches through SEQUENCE_AUTOMATON, so shimming the
    # table reintroduces the bug *and* the model checker must catch it.
    monkeypatch.setitem(
        SEQUENCE_AUTOMATON, ("running", "timeout_exhausted"), "ignore"
    )
    schedule = compile_schedule("allreduce", "pairwise-exchange", 2, 4)
    findings, _states = model_check_schedule(schedule)
    finding = _only(findings, "SL207")
    assert finding.path == "ir://allreduce/pairwise-exchange/n2/p4/root0"
    assert "absorbing state" in finding.message
    assert "parked live with dead timers" in finding.message
    assert "budget exhausted -> 'ignore'" in finding.message  # the trace
    assert "never a silent return" in finding.fixit


def test_sl208_retired_reentry_shim_is_caught(monkeypatch):
    # The other PR 7 bug class: an arrival for a retired sequence must
    # be dropped as a duplicate, never re-enter the automaton.
    monkeypatch.setitem(SEQUENCE_AUTOMATON, ("retired", "arrival"), "restart")
    schedule = compile_schedule("allreduce", "pairwise-exchange", 2, 4)
    findings, _states = model_check_schedule(schedule)
    finding = _only(findings, "SL208")
    assert "terminal multiplicity" in finding.message
    assert "run (and complete) twice" in finding.message
    assert "'drop'" in finding.fixit


def test_sl208_automaton_hole():
    table = dict(SEQUENCE_AUTOMATON)
    del table[("running", "invalid")]
    schedule = compile_schedule("allreduce", "pairwise-exchange", 2, 4)
    findings, _ = model_check_schedule(schedule, table=table)
    holes = [f for f in findings if "automaton hole" in f.message]
    assert len(holes) == 1 and holes[0].code == "SL208"
    assert "('running', 'invalid')" in holes[0].message


# ----------------------------------------------------------------------
# The clean-grid proof and the driver
# ----------------------------------------------------------------------
def test_quick_grid_is_clean():
    report = run_ir_verify("quick")
    assert report.ok, [f.render() for f in report.findings]
    assert report.schedules_checked == len(ir_grid("quick"))
    assert report.model_points == 6
    assert report.states_explored > 0
    assert "0 findings" in report.summary()


def test_grid_covers_non_pow2_and_roots():
    points = ir_grid("tuner")
    assert any(p.n == 6 for p in points), "non-pow2 N must be covered"
    assert any(p.collective == "reduce" and p.root != 0 for p in points)
    assert any(p.collective == "alltoall" for p in points)
    with pytest.raises(IrVerifyError):
        ir_grid("nope")


def test_bounds_refuse_vacuous_loss_budget():
    # loss_budget <= max_retries makes the SL207 hang state unreachable
    # (every NACK round re-injects a resend the adversary can't lose).
    with pytest.raises(IrVerifyError):
        ModelBounds(max_retries=2, loss_budget=2)


def test_every_ir_rule_is_registered():
    assert set(IR_RULES) == {f"SL20{i}" for i in range(1, 9)}


def test_run_lint_ir_exit_codes(tmp_path, monkeypatch):
    # End-to-end through the runner: clean tree + clean grid -> exit 0;
    # with the PR 7 shim reinstalled the same invocation must fail (1).
    from repro.tools.simlint import EXIT_CLEAN, EXIT_FINDINGS, run_lint

    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    lines = []
    code = run_lint(root=target, ir=True, ir_grid="quick", emit=lines.append)
    assert code == EXIT_CLEAN
    assert any("ir-verify[quick]" in line for line in lines)

    monkeypatch.setitem(
        SEQUENCE_AUTOMATON, ("running", "timeout_exhausted"), "ignore"
    )
    lines = []
    code = run_lint(root=target, ir=True, ir_grid="quick", emit=lines.append)
    assert code == EXIT_FINDINGS
    assert any("SL207" in line for line in lines)


def test_normalization_warnings_do_not_leak_from_verify():
    # run_ir_verify compiles non-pow2 reducing shapes (which normalize)
    # but must not spray the satellite's one-shot warning at lint users.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        report = run_ir_verify("quick")
    assert report.ok
