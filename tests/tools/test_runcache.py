"""Tests for the content-addressed run cache (PR 5 tentpole).

Covers the contract the sweeps rely on: hit after store, miss on any
request-field change (params, seed, source digest), corrupted entries
treated as misses, order-preserving merge in ``parallel_map``, warm
re-runs performing *zero* simulations with bit-identical output, and
the perfbench warm cross-check.
"""

import dataclasses
import json

import pytest

from repro.cluster import get_profile
from repro.experiments import fig6
from repro.experiments import report as report_mod
from repro.experiments.common import parallel_map, sweep
from repro.tools import runcache
from repro.tools.runcache import (
    RunCache,
    atomic_write_text,
    cached_call,
    jsonable,
    point_request,
    resolve_cache,
    run_request,
    source_digest,
)


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "cache")


def stock_request(**overrides):
    fields = dict(
        network="myrinet", profile="lanai_xp_xeon2400", barrier="nic-collective",
        algorithm="dissemination", n=8, iterations=5, warmup=2, seed=0,
    )
    fields.update(overrides)
    return point_request(**fields)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "sub" / "out.txt"
        atomic_write_text(target, "first")
        assert target.read_text() == "first"
        atomic_write_text(target, "second")
        assert target.read_text() == "second"

    def test_no_tmp_litter(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "original")
        monkeypatch.setattr(
            runcache.os, "replace",
            lambda *a: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement")
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestRequests:
    def test_jsonable_expands_dataclasses(self):
        params = get_profile("lanai_xp_xeon2400")
        expanded = jsonable(params)
        assert isinstance(expanded, dict)
        # Nested params dataclasses are expanded field-by-field.
        assert isinstance(expanded["wire"], dict)
        json.dumps(expanded)  # fully JSON-serializable

    def test_jsonable_preserves_dict_order(self):
        # Payloads may be repr-compared against live results (chaos
        # fault_stats); insertion order must survive the round trip.
        assert list(jsonable({"b": 1, "a": 2})) == ["b", "a"]

    def test_jsonable_rejects_opaque_objects(self):
        with pytest.raises(TypeError, match="plain data"):
            jsonable(object())

    def test_key_ignores_dict_order_but_not_values(self):
        a = {"kind": "x", "n": 8, "seed": 0}
        b = {"seed": 0, "n": 8, "kind": "x"}
        assert RunCache.key_digest(a) == RunCache.key_digest(b)
        assert RunCache.key_digest(a) != RunCache.key_digest({**a, "n": 16})

    def test_request_embeds_source_digest(self):
        request = run_request("x", n=8)
        assert request["source_digest"] == source_digest()

    def test_point_request_snapshots_full_params(self):
        request = stock_request()
        assert request["params"]["name"] == "lanai_xp_xeon2400"
        assert "wire" in request["params"]


class TestHitMissInvalidation:
    def test_miss_then_hit(self, cache):
        request = stock_request()
        assert cache.get(request) is None
        cache.put(request, 12.5)
        assert cache.get(request) == 12.5
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_none_payload_rejected(self, cache):
        with pytest.raises(ValueError, match="must not be None"):
            cache.put(stock_request(), None)

    def test_param_change_misses(self, cache):
        cache.put(stock_request(), 12.5)
        perturbed = dataclasses.replace(
            get_profile("lanai_xp_xeon2400"),
            gm=dataclasses.replace(
                get_profile("lanai_xp_xeon2400").gm, nack_timeout_us=999.0
            ),
        )
        assert cache.get(stock_request(profile=perturbed)) is None

    def test_seed_change_misses(self, cache):
        cache.put(stock_request(seed=0), 12.5)
        assert cache.get(stock_request(seed=1)) is None

    def test_n_change_misses(self, cache):
        cache.put(stock_request(n=8), 12.5)
        assert cache.get(stock_request(n=16)) is None

    def test_source_digest_change_misses(self, cache, monkeypatch):
        cache.put(stock_request(), 12.5)
        monkeypatch.setattr(runcache, "source_digest", lambda: "deadbeef")
        assert cache.get(stock_request()) is None

    def test_corrupted_entry_is_miss_and_pruned(self, cache):
        request = stock_request()
        cache.put(request, 12.5)
        path = cache.entry_path(request)
        path.write_text('{"schema": "repro.runcache/1", "trunca')
        assert cache.get(request) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_unknown_schema_is_miss(self, cache):
        request = stock_request()
        cache.put(request, 12.5)
        path = cache.entry_path(request)
        entry = json.loads(path.read_text())
        entry["schema"] = "repro.runcache/99"
        path.write_text(json.dumps(entry))
        assert cache.get(request) is None

    def test_gc_drops_stale_digests(self, cache, monkeypatch):
        cache.put(stock_request(n=8), 1.0)
        cache.put(stock_request(n=16), 2.0)
        assert cache.gc() == (0, 2)
        # Entries minted under another digest are stale.
        monkeypatch.setattr(runcache, "source_digest", lambda: "deadbeef")
        assert cache.gc() == (2, 0)
        assert cache.entry_count() == 0

    def test_clear_removes_everything(self, cache):
        cache.put(stock_request(), 1.0)
        cache.write_stats()
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.read_last_run_stats() is None


class TestResolve:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_cache("auto") is None

    def test_explicit_off(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_passthrough(self, cache):
        assert resolve_cache(cache) is cache

    def test_auto_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        resolved = resolve_cache("auto")
        assert resolved is not None
        assert resolved.root == tmp_path / "elsewhere"

    def test_cached_call_roundtrip(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 3}

        request = run_request("t", n=1)
        assert cached_call(cache, request, compute) == {"v": 3}
        assert cached_call(cache, request, compute) == {"v": 3}
        assert len(calls) == 1
        # Uncached path always computes.
        assert cached_call(None, request, compute) == {"v": 3}
        assert len(calls) == 2


class TestParallelMapCaching:
    def test_only_misses_execute_and_order_is_preserved(self, cache):
        executed = []

        def fn(item):
            executed.append(item)
            return item * 10

        def key_fn(item):
            return run_request("pm-test", item=item)

        cache.put(key_fn(2), 20)
        cache.put(key_fn(4), 40)
        out = parallel_map(fn, [1, 2, 3, 4, 5], cache=cache, key_fn=key_fn)
        assert out == [10, 20, 30, 40, 50]
        assert executed == [1, 3, 5]

    def test_decode_encode_roundtrip(self, cache):
        def key_fn(item):
            return run_request("pm-pair", item=item)

        out1 = parallel_map(
            lambda i: (i, i + 0.5), [1, 2], cache=cache, key_fn=key_fn,
            decode=lambda p: (p[0], p[1]),
        )
        out2 = parallel_map(
            lambda i: (_ for _ in ()).throw(AssertionError("warm must not run")),
            [1, 2], cache=cache, key_fn=key_fn, decode=lambda p: (p[0], p[1]),
        )
        assert out1 == out2 == [(1, 1.5), (2, 2.5)]


NS = [2, 4]
SWEEP_ARGS = dict(
    network="myrinet", profile="lanai_xp_xeon2400", barrier="nic-collective",
    algorithm="dissemination", n_values=NS, iterations=4, warmup=1,
)


class TestSweepWarm:
    def test_warm_sweep_runs_zero_simulations(self, cache, monkeypatch):
        cold = sweep(**SWEEP_ARGS, cache=cache)
        assert cache.stats()["misses"] == len(NS)

        def boom(*args, **kwargs):
            raise AssertionError("warm sweep must not simulate")

        monkeypatch.setattr("repro.experiments.common.sweep_point", boom)
        warm = sweep(**SWEEP_ARGS, cache=cache)
        assert warm == cold
        assert cache.stats()["hits"] == len(NS)

    def test_no_cache_still_simulates(self, monkeypatch):
        live = sweep(**SWEEP_ARGS, cache=None)
        assert len(live.latencies) == len(NS)

    def test_warm_equals_cold_bit_for_bit(self, cache):
        cold = sweep(**SWEEP_ARGS, cache=cache)
        warm = sweep(**SWEEP_ARGS, cache=cache)
        assert [lat.hex() for lat in warm.latencies] == [
            lat.hex() for lat in cold.latencies
        ]


@pytest.mark.slow
class TestReportWarm:
    def test_warm_report_identical_and_simulation_free(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance criterion: a warm report re-runs zero
        simulations and renders byte-identical output (modulo the
        wall-clock timing line)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        monkeypatch.setattr(report_mod, "EXPERIMENTS", [fig6])
        monkeypatch.setattr(report_mod, "AUDIT_POINTS", [("nic-collective", 8)])

        def strip_timing(text: str) -> str:
            return "\n".join(
                line for line in text.splitlines()
                if not line.startswith("_Total generation time")
            )

        cold_out = tmp_path / "cold.md"
        assert report_mod.main(["--quick", "--out", str(cold_out)]) == 0
        capsys.readouterr()

        def boom(*args, **kwargs):
            raise AssertionError("warm report must not simulate")

        monkeypatch.setattr("repro.experiments.common.sweep_point", boom)
        monkeypatch.setattr("repro.tools.run_counter_audit", boom)
        # The process-wide cache instance survives across main() calls
        # (real CLI runs are separate processes); zero the counters so
        # the warm run's stats stand alone.
        shared = resolve_cache("auto")
        shared.hits = shared.misses = shared.stores = shared.corrupt = 0
        warm_out = tmp_path / "warm.md"
        assert report_mod.main(["--quick", "--out", str(warm_out)]) == 0
        err = capsys.readouterr().err
        assert "0 misses" in err
        assert strip_timing(warm_out.read_text()) == strip_timing(
            cold_out.read_text()
        )


class TestPerfbenchCache:
    SPEC = None  # set lazily to keep import costs at module level low

    def _spec(self):
        from repro.tools.perfbench import PointSpec

        return PointSpec(
            "tiny", "lanai91_piii700", "nic-collective", 8,
            iterations=3, warmup=1,
        )

    def _request(self, spec):
        return run_request(
            "bench-point", params=get_profile(spec.profile),
            barrier=spec.barrier, nodes=spec.nodes,
            iterations=spec.iterations, warmup=spec.warmup, seed=0,
        )

    def test_cold_then_warm(self, cache):
        from repro.tools.perfbench import bench_point

        spec = self._spec()
        cold = bench_point(spec, trials=1, cache=cache)
        assert cold["cache"] == "cold"
        warm = bench_point(spec, trials=1, cache=cache)
        assert warm["cache"] == "warm"
        assert warm["events_scheduled"] == cold["events_scheduled"]
        assert warm["mean_latency_us"] == cold["mean_latency_us"]

    def test_cache_off_by_default(self):
        from repro.tools.perfbench import bench_point

        assert bench_point(self._spec(), trials=1)["cache"] == "off"

    def test_schedule_cache_hit_rate_surfaced(self):
        from repro.collectives.algorithms import SCHEDULE_CACHE
        from repro.tools.perfbench import bench_point

        SCHEDULE_CACHE.clear()
        row = bench_point(self._spec(), trials=2)
        sched = row["schedule_cache"]
        # Trial 1 compiles the message pattern, trial 2 replays it.
        assert sched["misses"] >= 1
        assert sched["hits"] >= 1
        assert 0 < sched["hit_rate"] < 1

    def test_warm_mismatch_is_determinism_violation(self, cache):
        from repro.tools.perfbench import bench_point

        spec = self._spec()
        row = bench_point(spec, trials=1, cache=cache)
        request = self._request(spec)
        cache.put(
            request,
            {
                "events_scheduled": row["events_scheduled"] + 1,
                "mean_latency_us": row["mean_latency_us"],
            },
        )
        with pytest.raises(RuntimeError, match="determinism violation"):
            bench_point(spec, trials=1, cache=cache)


class TestChaosCache:
    def test_baseline_cached_and_comparable(self, cache):
        from repro.tools.chaos import MYRINET_SCENARIOS, run_chaos_scenario

        scenario = MYRINET_SCENARIOS[0]
        barrier = scenario.applicable_schemes[0]
        cold = run_chaos_scenario(
            scenario, barrier, nodes=8, iterations=2, cache=cache
        )
        assert cache.stats()["stores"] == 1
        warm = run_chaos_scenario(
            scenario, barrier, nodes=8, iterations=2, cache=cache
        )
        assert cache.stats()["hits"] == 1
        assert warm.comparable() == cold.comparable()
