"""Chaos campaign runner: scenario plumbing, invariants, SL107."""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.cluster.runner import run_barrier_experiment
from repro.network import FaultInjector
from repro.sim import DeterministicRng, Simulator
from repro.tools.chaos import (
    ALL_SCENARIOS,
    ChaosScenario,
    run_campaign,
    run_chaos_scenario,
)
from repro.tools.simlint import check_quiescent
from repro.tools.simlint.perturb import TieBreakSimulator


def scenario(name, network="myrinet"):
    match = [s for s in ALL_SCENARIOS if s.name == name and s.network == network]
    assert len(match) == 1
    return match[0]


class TestScenarioValidation:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="infiniband", description="")

    def test_unknown_expectation_rejected(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="myrinet", description="",
                          expect="explode")

    def test_degrade_needs_a_counter(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="myrinet", description="",
                          expect="degrade")

    def test_inapplicable_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(scenario("crash"), "host", nodes=4)

    def test_catalogue_covers_every_fault_class(self):
        names = {(s.network, s.name) for s in ALL_SCENARIOS}
        for required in ("drop", "corrupt", "duplicate", "delay", "flap",
                         "crash", "link-death", "slow-host"):
            assert ("myrinet", required) in names
        for required in ("delay", "slow-host", "hw-degrade", "hw-fail"):
            assert ("quadrics", required) in names
        # Data collectives and the non-blocking barrier each cover a
        # transient (flap) and a terminal (link-death / crash) fault.
        for required in ("allreduce-flap", "allreduce-link-death",
                         "bcast-flap", "bcast-link-death",
                         "ibarrier-flap", "ibarrier-crash"):
            assert ("myrinet", required) in names

    def test_collective_validation(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="myrinet", description="",
                          collective="allscatter")
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="quadrics", description="",
                          collective="allreduce")

    def test_data_collective_scenarios_collapse_to_one_scheme(self):
        assert scenario("allreduce-flap").applicable_schemes == (
            "nic-collective",
        )

    def test_allreduce_link_death_surfaces_typed_failures(self):
        result = run_chaos_scenario(
            scenario("allreduce-link-death"), "nic-collective",
            nodes=8, iterations=2,
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures > 0
        reasons = {
            o.split(":", 1)[1]
            for record in result.outcomes for o in record
            if o.startswith("fail:")
        }
        assert reasons == {"datacoll-retry-budget-exhausted"}

    def test_ibarrier_flap_recovers(self):
        result = run_chaos_scenario(
            scenario("ibarrier-flap"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures == 0

    def test_bcast_flap_delivers_exact_payloads(self):
        result = run_chaos_scenario(
            scenario("bcast-flap"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert all(o == "ok" for record in result.outcomes for o in record)


class TestScenarioRuns:
    def test_recover_scenario_recovers(self):
        result = run_chaos_scenario(
            scenario("drop"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures == 0
        assert result.counters["wire.dropped"] > 0
        assert result.fault_stats["dropped"] == result.counters["wire.dropped"]

    def test_link_death_surfaces_typed_failures(self):
        result = run_chaos_scenario(
            scenario("link-death"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures > 0
        reasons = {
            o.split(":", 1)[1]
            for record in result.outcomes for o in record
            if o.startswith("fail:")
        }
        assert reasons == {"nack-retry-budget-exhausted"}

    def test_hw_degrade_counts_fallbacks(self):
        result = run_chaos_scenario(
            scenario("hw-degrade", "quadrics"), "hgsync", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures == 0
        assert result.counters["elan.hw_fallback"] > 0

    def test_hw_fail_escalates(self):
        result = run_chaos_scenario(
            scenario("hw-fail", "quadrics"), "hgsync", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures > 0

    def test_expectation_violation_is_reported(self):
        # A fault-free scenario that *expects* failures must not pass.
        impossible = ChaosScenario(
            name="nothing-happens",
            network="myrinet",
            description="no faults, yet failures expected",
            expect="fail",
            schemes=("host",),
        )
        result = run_chaos_scenario(impossible, "host", nodes=4, iterations=1)
        assert not result.ok
        assert any("expected surfaced failures" in v for v in result.violations)

    def test_faulted_run_bit_identical_under_tiebreak(self):
        baseline = run_chaos_scenario(
            scenario("flap"), "nic-collective", nodes=8, iterations=2
        )
        replay = run_chaos_scenario(
            scenario("flap"), "nic-collective", nodes=8, iterations=2,
            sim=TieBreakSimulator(DeterministicRng(1, "test/tiebreak")),
        )
        assert replay.comparable() == baseline.comparable()


def test_unfired_drop_plan_surfaces_as_sl107():
    # A plan whose flow never carries enough matching packets silently
    # turns the scenario into a fault-free run; the quiescence audit
    # must say so.
    faults = FaultInjector()
    faults.drop_nth_matching(
        lambda p: p.src == 0 and p.dst == 1, occurrence=10_000,
        label="too-greedy",
    )
    sim = Simulator()
    sim.track_processes()
    cluster = build_cluster(
        get_profile("lanai_xp_xeon2400"), 4, faults=faults, sim=sim
    )
    run_barrier_experiment(cluster, "nic-collective", iterations=1, warmup=1)
    report = check_quiescent(cluster)
    assert [f.code for f in report.findings] == ["SL107"]
    assert "too-greedy" in report.findings[0].message


def test_campaign_smoke_quadrics():
    campaign = run_campaign(
        networks=("quadrics",), nodes=8, iterations=2, rounds=1
    )
    assert campaign.ok, campaign.render()
    assert len(campaign.results) == 7  # delay x2, slow-host x3, hw-degrade, hw-fail
    rendered = campaign.render()
    assert rendered.endswith("PASS")
    assert "hw-degrade/hgsync" in rendered


# ----------------------------------------------------------------------
# Randomized chaos fuzzer
# ----------------------------------------------------------------------

from repro.tools.chaos import (  # noqa: E402
    make_fuzz_plan,
    run_fuzz_block,
    run_fuzz_case,
)


class TestFuzzPlan:
    def test_same_seed_same_plan(self):
        assert make_fuzz_plan("myrinet", 7) == make_fuzz_plan("myrinet", 7)

    def test_networks_draw_independent_plans(self):
        m = make_fuzz_plan("myrinet", 7)
        q = make_fuzz_plan("quadrics", 7)
        assert m.network == "myrinet" and q.network == "quadrics"
        # Quadrics has no CRC/duplication model on the barrier path.
        assert q.corrupt_probability == 0.0
        assert q.duplicate_probability == 0.0

    def test_kills_are_distinct_and_ordered(self):
        for seed in range(8):
            plan = make_fuzz_plan("myrinet", seed)
            victims = [v for v, _ in plan.kills]
            times = [t for _, t in plan.kills]
            assert len(set(victims)) == len(victims)
            assert times == sorted(times)
            assert len(plan.segments) == len(plan.kills) + 1

    def test_final_segment_forces_acceptance_tail(self):
        plan = make_fuzz_plan("myrinet", 3)
        assert plan.segments[-1][-2:] == ("barrier", "allreduce")
        qplan = make_fuzz_plan("quadrics", 3)
        assert qplan.segments[-1][-2:] == ("barrier", "ibarrier")

    def test_flaps_shorter_than_suspicion_timeout(self):
        """A flap must never be convictable as a death."""
        for seed in range(8):
            for network in ("myrinet", "quadrics"):
                plan = make_fuzz_plan(network, seed)
                for _a, _b, start, until in plan.flaps:
                    assert until - start < plan.hb_timeout_us

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            make_fuzz_plan("infiniband", 0)


class TestFuzzCase:
    @pytest.mark.parametrize("network", ["myrinet", "quadrics"])
    def test_single_case_passes(self, network):
        plan = make_fuzz_plan(network, 0)
        result = run_fuzz_case(plan)
        assert result.ok, "\n".join(result.violations + result.quiescence)
        assert result.epochs == len(plan.kills)
        assert len(result.detected_at) == len(plan.kills)

    def test_mid_recovery_kill_handled(self):
        """Seed 1 draws two kills whose second lands inside the first
        kill's detection window — the controller must chain the repairs
        and every survivor still completes the final epoch."""
        plan = make_fuzz_plan("myrinet", 1)
        assert len(plan.kills) == 2
        result = run_fuzz_case(plan)
        assert result.ok, "\n".join(result.violations + result.quiescence)
        assert result.epochs == 2

    def test_tie_break_replay_is_bit_identical(self):
        plan = make_fuzz_plan("quadrics", 2)
        baseline = run_fuzz_case(plan)
        replay = run_fuzz_case(
            plan,
            sim=TieBreakSimulator(DeterministicRng(9, "fuzz-test/tiebreak")),
        )
        assert baseline.ok and replay.ok
        assert replay.comparable() == baseline.comparable()


def test_fuzz_block_smoke():
    report = run_fuzz_block(networks=("myrinet",), seeds=(0,), rounds=1)
    assert report.ok, report.render()
    assert report.render().endswith("PASS")
