"""Chaos campaign runner: scenario plumbing, invariants, SL107."""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.cluster.runner import run_barrier_experiment
from repro.network import FaultInjector
from repro.sim import DeterministicRng, Simulator
from repro.tools.chaos import (
    ALL_SCENARIOS,
    ChaosScenario,
    run_campaign,
    run_chaos_scenario,
)
from repro.tools.simlint import check_quiescent
from repro.tools.simlint.perturb import TieBreakSimulator


def scenario(name, network="myrinet"):
    match = [s for s in ALL_SCENARIOS if s.name == name and s.network == network]
    assert len(match) == 1
    return match[0]


class TestScenarioValidation:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="infiniband", description="")

    def test_unknown_expectation_rejected(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="myrinet", description="",
                          expect="explode")

    def test_degrade_needs_a_counter(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", network="myrinet", description="",
                          expect="degrade")

    def test_inapplicable_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(scenario("crash"), "host", nodes=4)

    def test_catalogue_covers_every_fault_class(self):
        names = {(s.network, s.name) for s in ALL_SCENARIOS}
        for required in ("drop", "corrupt", "duplicate", "delay", "flap",
                         "crash", "link-death", "slow-host"):
            assert ("myrinet", required) in names
        for required in ("delay", "slow-host", "hw-degrade", "hw-fail"):
            assert ("quadrics", required) in names


class TestScenarioRuns:
    def test_recover_scenario_recovers(self):
        result = run_chaos_scenario(
            scenario("drop"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures == 0
        assert result.counters["wire.dropped"] > 0
        assert result.fault_stats["dropped"] == result.counters["wire.dropped"]

    def test_link_death_surfaces_typed_failures(self):
        result = run_chaos_scenario(
            scenario("link-death"), "nic-collective", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures > 0
        reasons = {
            o.split(":", 1)[1]
            for record in result.outcomes for o in record
            if o.startswith("fail:")
        }
        assert reasons == {"nack-retry-budget-exhausted"}

    def test_hw_degrade_counts_fallbacks(self):
        result = run_chaos_scenario(
            scenario("hw-degrade", "quadrics"), "hgsync", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures == 0
        assert result.counters["elan.hw_fallback"] > 0

    def test_hw_fail_escalates(self):
        result = run_chaos_scenario(
            scenario("hw-fail", "quadrics"), "hgsync", nodes=8, iterations=2
        )
        assert result.ok, (result.violations, result.quiescence)
        assert result.failures > 0

    def test_expectation_violation_is_reported(self):
        # A fault-free scenario that *expects* failures must not pass.
        impossible = ChaosScenario(
            name="nothing-happens",
            network="myrinet",
            description="no faults, yet failures expected",
            expect="fail",
            schemes=("host",),
        )
        result = run_chaos_scenario(impossible, "host", nodes=4, iterations=1)
        assert not result.ok
        assert any("expected surfaced failures" in v for v in result.violations)

    def test_faulted_run_bit_identical_under_tiebreak(self):
        baseline = run_chaos_scenario(
            scenario("flap"), "nic-collective", nodes=8, iterations=2
        )
        replay = run_chaos_scenario(
            scenario("flap"), "nic-collective", nodes=8, iterations=2,
            sim=TieBreakSimulator(DeterministicRng(1, "test/tiebreak")),
        )
        assert replay.comparable() == baseline.comparable()


def test_unfired_drop_plan_surfaces_as_sl107():
    # A plan whose flow never carries enough matching packets silently
    # turns the scenario into a fault-free run; the quiescence audit
    # must say so.
    faults = FaultInjector()
    faults.drop_nth_matching(
        lambda p: p.src == 0 and p.dst == 1, occurrence=10_000,
        label="too-greedy",
    )
    sim = Simulator()
    sim.track_processes()
    cluster = build_cluster(
        get_profile("lanai_xp_xeon2400"), 4, faults=faults, sim=sim
    )
    run_barrier_experiment(cluster, "nic-collective", iterations=1, warmup=1)
    report = check_quiescent(cluster)
    assert [f.code for f in report.findings] == ["SL107"]
    assert "too-greedy" in report.findings[0].message


def test_campaign_smoke_quadrics():
    campaign = run_campaign(
        networks=("quadrics",), nodes=8, iterations=2, rounds=1
    )
    assert campaign.ok, campaign.render()
    assert len(campaign.results) == 7  # delay x2, slow-host x3, hw-degrade, hw-fail
    rendered = campaign.render()
    assert rendered.endswith("PASS")
    assert "hw-degrade/hgsync" in rendered
