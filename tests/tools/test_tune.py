"""The auto-tuner and its decision tables."""

import json

import pytest

from repro.collectives import ProcessGroup
from repro.collectives.tuning import (
    TABLE_ENV,
    Decision,
    DecisionTable,
    current_decision_table,
    install_decision_table,
    pick_algorithm,
)
from repro.tools.runcache import RunCache
from repro.tools.tune import candidate_points, main as tune_main, run_tuner


@pytest.fixture(autouse=True)
def no_table():
    """Tests control the installed table explicitly."""
    install_decision_table(None)
    yield
    install_decision_table(None)


def table_fixture():
    return DecisionTable(
        entries=(
            Decision("allreduce", "myrinet", 8, 4, "dissemination", 10.0),
            Decision("allreduce", "myrinet", 8, 4096, "gather-broadcast", 40.0),
            Decision("allreduce", "myrinet", 32, 4, "pairwise-exchange", 20.0),
            Decision("barrier", "any", 16, 0, "pairwise-exchange", 15.0),
        ),
    )


# ----------------------------------------------------------------------
# DecisionTable lookup and persistence
# ----------------------------------------------------------------------
def test_pick_snaps_to_nearest_measured_point():
    table = table_fixture()
    assert table.pick("allreduce", 8, 4) == "dissemination"
    assert table.pick("allreduce", 8, 4096) == "gather-broadcast"
    # N distance (in log2) dominates payload distance...
    assert table.pick("allreduce", 32, 4096) == "pairwise-exchange"
    # ...and unmeasured shapes snap to the nearest grid point.
    assert table.pick("allreduce", 12, 4) == "dissemination"
    assert table.pick("allreduce", 24, 64) == "pairwise-exchange"
    assert table.pick("alltoall", 8, 4) is None
    # Network filter: "any" rows answer for both networks.
    assert table.pick("barrier", 16, network="quadrics") == "pairwise-exchange"
    assert table.pick("allreduce", 8, 4, network="quadrics") is None


def test_json_roundtrip(tmp_path):
    table = table_fixture()
    path = tmp_path / "table.json"
    path.write_text(table.to_json())
    loaded = DecisionTable.load(path)
    assert loaded.entries == table.entries
    assert loaded.source == str(path)
    with pytest.raises(ValueError, match="not a tuning table"):
        DecisionTable.from_json(json.dumps({"format": "something-else"}))


def test_env_table_loads_once(tmp_path, monkeypatch):
    path = tmp_path / "table.json"
    path.write_text(table_fixture().to_json())
    monkeypatch.setenv(TABLE_ENV, str(path))
    install_decision_table(None)
    # install(None) marks the env as already probed...
    assert current_decision_table() is None
    # ...so force a fresh probe the way a new process would see it.
    import repro.collectives.tuning as tuning

    monkeypatch.setattr(tuning, "_loaded", False)
    monkeypatch.setattr(tuning, "_table", None)
    table = current_decision_table()
    assert table is not None and len(table) == 4
    assert pick_algorithm("barrier", 16) == "pairwise-exchange"


def test_pick_algorithm_defaults_without_table():
    assert pick_algorithm("barrier", 16) == "dissemination"
    assert pick_algorithm("allgather", 8, default="gather-broadcast") == (
        "gather-broadcast"
    )


def test_auto_group_consults_installed_table():
    install_decision_table(table_fixture())
    group = ProcessGroup(list(range(16)))  # algorithm="auto" is the default
    assert group.requested_algorithm == "auto"
    assert group.algorithm == "pairwise-exchange"
    schedule = group.collective_schedule("allreduce", payload_bytes=4)
    assert schedule.algorithm == "dissemination"  # nearest: n=8 row
    # Explicit algorithms bypass the table entirely.
    fixed = ProcessGroup(list(range(16)), algorithm="gather-broadcast")
    assert fixed.algorithm == "gather-broadcast"
    assert fixed.collective_schedule("allreduce").algorithm == "gather-broadcast"


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def test_candidate_grid_excludes_unsafe_reductions():
    points = candidate_points([6, 8], [4], repeats=1)
    allreduce = {(p.algorithm, p.n) for p in points if p.collective == "allreduce"}
    assert ("dissemination", 8) in allreduce
    assert ("dissemination", 6) not in allreduce
    assert ("pairwise-exchange", 6) in allreduce


def test_tiny_sweep_emits_winners_and_recaches(tmp_path):
    cache = RunCache(tmp_path / "cache")
    grid = dict(n_values=[2], payloads=[4], repeats=2, verbose=False)
    table = run_tuner(cache=cache, **grid)
    assert cache.misses > 0 and cache.hits == 0
    # One winner per (collective, shape); every latency is positive.
    shapes = {(e.collective, e.n, e.payload_bytes) for e in table.entries}
    assert len(shapes) == len(table.entries) == 3
    assert all(e.latency_us > 0 for e in table.entries)
    # A warm re-run simulates nothing and reproduces the table exactly.
    warm_cache = RunCache(tmp_path / "cache")
    warm = run_tuner(cache=warm_cache, **grid)
    assert warm_cache.misses == 0 and warm_cache.hits == cache.misses
    assert warm.entries == table.entries


def test_cli_writes_table_and_reports_cache(tmp_path, capsys, monkeypatch):
    import repro.tools.runcache as runcache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(runcache, "_default_caches", {})
    out = tmp_path / "table.json"
    assert tune_main(["--quick", "--repeats", "1", "--out", str(out)]) == 0
    table = DecisionTable.load(out)
    assert len(table) > 0
    assert table.meta["points_measured"] > len(table)
    err = capsys.readouterr().err
    assert "0 hits" in err
    # The warm re-run is all hits — the tuner-smoke CI contract.  A
    # fresh default-cache map stands in for the fresh CI process.
    monkeypatch.setattr(runcache, "_default_caches", {})
    assert tune_main(["--quick", "--repeats", "1", "--out", str(out)]) == 0
    err = capsys.readouterr().err
    assert " 0 misses" in err
