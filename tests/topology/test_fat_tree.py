"""Unit tests for the Quadrics quaternary fat tree."""

import pytest

from repro.topology import QuaternaryFatTree


def test_dimension_inferred():
    assert QuaternaryFatTree(4).dimension == 1
    assert QuaternaryFatTree(5).dimension == 2
    assert QuaternaryFatTree(16).dimension == 2
    assert QuaternaryFatTree(17).dimension == 3
    assert QuaternaryFatTree(1024).dimension == 5


def test_explicit_dimension_validated():
    with pytest.raises(ValueError):
        QuaternaryFatTree(17, dimension=2)


def test_same_leaf_route_one_switch():
    topo = QuaternaryFatTree(16, dimension=2)
    route = topo.route(0, 3)  # both under elite_l1_0
    assert route.hops == ("elite_l1_0",)


def test_cross_leaf_route_climbs_to_root():
    topo = QuaternaryFatTree(16, dimension=2)
    route = topo.route(0, 5)
    assert route.hops == ("elite_l1_0", "elite_l2_0", "elite_l1_1")
    assert route.switch_count == 3


def test_route_switch_count_formula():
    topo = QuaternaryFatTree(64, dimension=3)
    # lca at level l => 2l-1 switches
    for src, dst in [(0, 1), (0, 4), (0, 16), (5, 21), (63, 0)]:
        level = topo.lca_level(src, dst)
        assert topo.route(src, dst).switch_count == 2 * level - 1


def test_lca_level_zero_for_self():
    topo = QuaternaryFatTree(16)
    assert topo.lca_level(7, 7) == 0


def test_lca_level_symmetric():
    topo = QuaternaryFatTree(64, dimension=3)
    for src, dst in [(0, 1), (3, 17), (60, 2)]:
        assert topo.lca_level(src, dst) == topo.lca_level(dst, src)


def test_loopback_route():
    topo = QuaternaryFatTree(8)
    assert topo.route(2, 2).hops == ()


def test_broadcast_hops():
    assert QuaternaryFatTree(4, dimension=1).broadcast_hops() == 1
    assert QuaternaryFatTree(16, dimension=2).broadcast_hops() == 3
    assert QuaternaryFatTree(1024, dimension=5).broadcast_hops() == 9


def test_switch_inventory():
    topo = QuaternaryFatTree(16, dimension=2)
    switches = topo.switches()
    assert len([s for s in switches if "_l1_" in s]) == 4
    assert len([s for s in switches if "_l2_" in s]) == 1


def test_all_routes_valid_8_nodes():
    """The paper's 8-node Elan3 system is a dimension-2 tree."""
    topo = QuaternaryFatTree(8, dimension=2)
    for s in range(8):
        for d in range(8):
            route = topo.route(s, d)
            if s == d:
                assert route.switch_count == 0
            else:
                assert route.switch_count in (1, 3)


def test_port_validation():
    topo = QuaternaryFatTree(8)
    with pytest.raises(ValueError):
        topo.route(0, 9)
