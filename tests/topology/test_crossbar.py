"""Unit tests for the Myrinet Clos/crossbar topology."""

import pytest

from repro.topology import ClosTopology


def test_single_switch_for_small_cluster():
    topo = ClosTopology(8)
    assert topo.levels == 1
    assert topo.switches() == ["xbar0"]


def test_sixteen_nodes_fit_one_xbar16():
    topo = ClosTopology(16, radix=16)
    assert topo.levels == 1


def test_route_through_single_crossbar():
    topo = ClosTopology(8)
    route = topo.route(0, 5)
    assert route.hops == ("xbar0",)
    assert route.switch_count == 1
    assert route.link_count == 2


def test_loopback_route_is_empty():
    topo = ClosTopology(8)
    route = topo.route(3, 3)
    assert route.hops == ()
    assert route.link_count == 0


def test_two_level_clos_created_beyond_radix():
    topo = ClosTopology(32, radix=16)
    assert topo.levels == 2
    assert topo.n_leaves == 4
    assert topo.n_spines == 8


def test_two_level_same_leaf_route():
    topo = ClosTopology(32, radix=16)
    # ports 0..7 live on leaf0
    route = topo.route(0, 7)
    assert route.hops == ("leaf0",)


def test_two_level_cross_leaf_route():
    topo = ClosTopology(32, radix=16)
    route = topo.route(0, 31)
    assert len(route.hops) == 3
    assert route.hops[0] == "leaf0"
    assert route.hops[0].startswith("leaf")
    assert route.hops[1].startswith("spine")
    assert route.hops[2] == "leaf3"
    assert route.link_count == 4


def test_route_is_deterministic():
    topo = ClosTopology(64, radix=16)
    assert topo.route(1, 60) == topo.route(1, 60)


def test_capacity_limit_enforced():
    with pytest.raises(ValueError):
        ClosTopology(4097, radix=16)  # four-level max is 8^4 = 4096


def test_three_level_clos_beyond_two_level_capacity():
    topo = ClosTopology(65, radix=16)
    assert topo.levels == 3


def test_three_level_routes():
    topo = ClosTopology(512, radix=16)
    # ports 0..63 share pod 0; same-pod traffic stays below the tops
    same_pod = topo.route(0, 63)
    assert len(same_pod.hops) == 3
    assert same_pod.hops[0].startswith("leaf")
    assert same_pod.hops[1].startswith("mid0_")
    assert same_pod.hops[2].startswith("leaf")
    # cross-pod traffic climbs to a top switch: 5 hops, 6 links
    cross_pod = topo.route(0, 511)
    assert len(cross_pod.hops) == 5
    assert cross_pod.hops[2].startswith("top")
    assert cross_pod.link_count == 6
    # still deterministic
    assert topo.route(0, 511) == topo.route(0, 511)


def test_three_level_all_pairs_sample():
    topo = ClosTopology(512, radix=16)
    for s in range(0, 512, 61):
        for d in range(0, 512, 53):
            route = topo.route(s, d)
            if s != d:
                assert 1 <= route.switch_count <= 5


def test_four_level_clos_beyond_three_level_capacity():
    topo = ClosTopology(513, radix=16)
    assert topo.levels == 4


def test_four_level_routes():
    topo = ClosTopology(4096, radix=16)
    # Sub-superpod traffic keeps the three-level shapes.
    assert len(topo.route(0, 63).hops) == 3
    intra_sp = topo.route(0, 511)
    assert len(intra_sp.hops) == 5
    assert intra_sp.hops[2].startswith("top0_")
    # Cross-superpod traffic climbs to an apex: 7 hops, 8 links.
    cross_sp = topo.route(0, 4095)
    assert len(cross_sp.hops) == 7
    assert cross_sp.hops[3].startswith("apex")
    assert cross_sp.link_count == 8
    # Dispersive ownership: each source's flows own one apex.
    assert topo.route(7, 4095).hops[3] == "apex7"
    # Every hop is a real switch, paths are deterministic.
    switches = set(topo.switches())
    for s in range(0, 4096, 509):
        for d in range(0, 4096, 487):
            if s == d:
                continue
            route = topo.route(s, d)
            assert 1 <= route.switch_count <= 7
            assert all(h in switches for h in route.hops)
    assert topo.route(0, 4095) == topo.route(0, 4095)


def test_three_level_layout_unchanged_by_four_level_support():
    """Regression guard: adding level 4 must not move any <=512-node
    route (frozen baselines depend on the exact paths)."""
    topo = ClosTopology(512, radix=16)
    assert topo.levels == 3
    assert topo.route(0, 511).hops == (
        "leaf0", "mid0_0", "top0", "mid7_0", "leaf63",
    )
    assert "apex0" not in topo.switches()


def test_port_range_validation():
    topo = ClosTopology(8)
    with pytest.raises(ValueError):
        topo.route(0, 8)
    with pytest.raises(ValueError):
        topo.route(-1, 0)


def test_all_pairs_have_routes():
    topo = ClosTopology(32, radix=16)
    for s in range(32):
        for d in range(32):
            route = topo.route(s, d)
            if s != d:
                assert 1 <= route.switch_count <= 3


def test_max_hops():
    assert ClosTopology(8).max_hops() == 1
    assert ClosTopology(32, radix=16).max_hops() == 3


def test_invalid_construction():
    with pytest.raises(ValueError):
        ClosTopology(0)
    with pytest.raises(ValueError):
        ClosTopology(4, radix=1)
