"""Property-based tests over both topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import ClosTopology, QuaternaryFatTree


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    data=st.data(),
)
def test_clos_routes_well_formed(n, data):
    topo = ClosTopology(n, radix=16)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    route = topo.route(src, dst)
    assert route.src == src and route.dst == dst
    if src == dst:
        assert route.hops == ()
    else:
        # Route must start at src's leaf and end at dst's leaf.
        switches = set(topo.switches())
        assert all(hop in switches for hop in route.hops)
        assert route.link_count == route.switch_count + 1


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=256),
    data=st.data(),
)
def test_fat_tree_routes_well_formed(n, data):
    topo = QuaternaryFatTree(n)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    route = topo.route(src, dst)
    if src == dst:
        assert route.hops == ()
        return
    level = topo.lca_level(src, dst)
    assert route.switch_count == 2 * level - 1
    # Palindrome levels: climb 1..L then descend L-1..1.
    levels = [int(h.split("_l")[1].split("_")[0]) for h in route.hops]
    assert levels == list(range(1, level + 1)) + list(range(level - 1, 0, -1))


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=128), data=st.data())
def test_fat_tree_route_symmetric_in_length(n, data):
    topo = QuaternaryFatTree(n)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    forward = topo.route(src, dst)
    back = topo.route(dst, src)
    assert forward.switch_count == back.switch_count


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=64), data=st.data())
def test_clos_route_symmetric_in_length(n, data):
    topo = ClosTopology(n, radix=16)
    src = data.draw(st.integers(min_value=0, max_value=n - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert (
        topo.route(src, dst).switch_count == topo.route(dst, src).switch_count
    )


@settings(max_examples=30, deadline=None)
@given(dim=st.integers(min_value=1, max_value=5))
def test_fat_tree_capacity_structure(dim):
    topo = QuaternaryFatTree(4**dim, dimension=dim)
    for level in range(1, dim):
        a = f"elite_l{level}_0"
        b = f"elite_l{level + 1}_0"
        assert topo.link_capacity(a, b) == 4**level
        assert topo.link_capacity(b, a) == 4**level
