"""Every example script must run clean (deliverable b)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"
