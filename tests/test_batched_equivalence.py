"""Batched fast-path kernel vs the unbatched reference path.

``build_cluster(..., reference=True)`` disables every whole-experiment
batching fast path — chained-barrier prearming and the fat tree's
up-edge elision — so the run takes the plain per-iteration code.  The
fast paths are only admissible because they are *provably* inert: these
tests pin the proof down empirically by requiring bit-identical
latencies, per-iteration end times, and physics counters at the
verification sizes (the scale points then inherit the guarantee from
the same code path).
"""

import pytest

from repro.cluster import build_cluster, run_barrier_experiment

PHYSICS_COUNTERS = ("wire.packets", "elan.rdma_issued", "elan.event_fired")

CASES = [
    ("elan3_piii700", "nic-chained"),
    ("lanai_xp_xeon2400", "nic-collective"),
]


def _run(profile: str, barrier: str, n: int, reference: bool):
    cluster = build_cluster(profile, n, reference=reference)
    result = run_barrier_experiment(
        cluster, barrier, iterations=10, warmup=3, seed=0
    )
    counters = {
        key: cluster.tracer.counters.get(key, 0) for key in PHYSICS_COUNTERS
    }
    return {
        "mean_latency_us": result.mean_latency_us,
        "iteration_ends_us": tuple(result.iteration_ends_us),
        "delivered": cluster.fabric.delivered_count,
        "counters": counters,
    }


@pytest.mark.parametrize("profile,barrier", CASES)
def test_batched_matches_reference_n16(profile, barrier):
    assert _run(profile, barrier, 16, False) == _run(profile, barrier, 16, True)


@pytest.mark.slow
@pytest.mark.parametrize("profile,barrier", CASES)
def test_batched_matches_reference_n128(profile, barrier):
    assert _run(profile, barrier, 128, False) == _run(profile, barrier, 128, True)


@pytest.mark.slow
def test_sl101_perturbation_clean_at_n128():
    """Tie-break permutations must not move the batched kernel's results.

    The calendar-queue kernel, the arbitration domain's pooled decision
    passes, and the prearmed chains all promise schedule independence;
    N=128 exercises multi-stage fat-tree routes (where up-edge elision
    and the pooled passes actually engage), unlike the N=16 CI smoke.
    """
    from repro.tools.simlint.perturb import perturb_barrier_experiment

    report = perturb_barrier_experiment(
        "elan3_piii700", "nic-chained", nodes=128,
        rounds=3, iterations=3, warmup=1,
    )
    assert report.ok, [str(f) for f in report.findings]


def test_chained_driver_setup_flattens_each_rank_once(monkeypatch):
    """Driver setup is O(N): one schedule flatten per rank, shared.

    The pre-optimization constructors re-flattened every peer's schedule
    inside every driver — O(N^2 log N), 69 of 85 seconds at N=1024.
    """
    import repro.collectives.quadrics_barrier as qb

    calls = []
    real = qb._flatten_ops

    def counting(phases):
        calls.append(1)
        return real(phases)

    monkeypatch.setattr(qb, "_flatten_ops", counting)
    cluster = build_cluster("elan3_piii700", 32)
    run_barrier_experiment(cluster, "nic-chained", iterations=2, warmup=1, seed=0)
    assert len(calls) == 32


def test_collective_states_share_one_layout():
    """Per-iteration receive states derive masks from one shared layout."""
    from repro.collectives import ProcessGroup
    from repro.collectives.myrinet_engines import NicCollectiveBarrierEngine

    cluster = build_cluster("lanai_xp_xeon2400", 16)
    group = ProcessGroup(range(16), algorithm="dissemination")
    engine = NicCollectiveBarrierEngine(cluster.nics[0], group, 0)
    state_a = engine._state(0)
    state_b = engine._state(1)
    assert state_a._layout is state_b._layout
    assert state_a._layout is engine._layout
