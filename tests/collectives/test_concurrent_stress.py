"""Concurrent-sequence stress: four collectives in flight per group, N=16.

The paper's protocol keeps per-group *and* per-sequence state on the
NIC; these tests load that state machine with several sequences
genuinely in flight per group — on both networks — and then hold the
runs to the simlint bar:

- SL101: results (and completion times) must be bit-identical when
  same-timestamp event order is permuted (``compare_runs``);
- one fault scenario per network: a Myrinet link flap mid-run (healed
  by NACK recovery) and Quadrics packet delays (absorbed by the
  cumulative event thresholds);
- SL102-SL107: the drained cluster passes the quiescence audit —
  no parked processes, leaked packets, open engine states or timers.
"""

from repro.collectives import (
    NicAllreduceEngine,
    ProcessGroup,
    QuadricsChainedBarrier,
    nic_iallgather,
    nic_iallreduce,
)
from repro.collectives.allgather import NicAllgatherEngine
from repro.network import FaultInjector
from repro.sim import DeterministicRng
from repro.tools.simlint import check_quiescent, compare_runs
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster
from tests.quadrics.conftest import QuadricsTestCluster

N = 16
DEPTH = 4  # sequences in flight per group at once


# ----------------------------------------------------------------------
# Myrinet: two groups x four sequences each, waited newest-first
# ----------------------------------------------------------------------
def run_myrinet_stress(sim=None, faults=None, track=False):
    """Every node keeps 4 allgathers and 4 allreduces in flight, then
    consumes the completions out of posting order.  Asserts the results
    in place so every perturbed round is checked, not just the first.
    """
    cluster = MyrinetTestCluster(n=N, sim=sim, faults=faults)
    if track:
        cluster.sim.track_processes()
    gather_group = ProcessGroup(list(range(N)), algorithm="dissemination")
    reduce_group = ProcessGroup(list(range(N)), algorithm="dissemination")
    engines = []
    for rank in range(N):
        engines.append(NicAllgatherEngine(cluster.nics[rank], gather_group, rank))
        engines.append(NicAllreduceEngine(cluster.nics[rank], reduce_group, rank))
    results = {}

    def prog(node):
        gather_reqs, reduce_reqs = [], []
        for seq in range(DEPTH):
            req = yield from nic_iallgather(
                cluster.ports[node], gather_group, seq, node * 10 + seq
            )
            gather_reqs.append(req)
            req = yield from nic_iallreduce(
                cluster.ports[node], reduce_group, seq, node + seq
            )
            reduce_reqs.append(req)
        gathers, totals = [None] * DEPTH, [None] * DEPTH
        for seq in reversed(range(DEPTH)):
            gathers[seq] = yield from gather_reqs[seq].wait()
            totals[seq] = yield from reduce_reqs[seq].wait()
        results[node] = (gathers, totals)

    run_all(cluster, [prog(node) for node in range(N)])
    want = (
        [{rank: rank * 10 + seq for rank in range(N)} for seq in range(DEPTH)],
        [sum(range(N)) + N * seq for seq in range(DEPTH)],
    )
    assert results == {node: want for node in range(N)}
    for engine in engines:
        assert engine.states == {}
        assert sorted(engine.archive) == list(range(DEPTH))
    return cluster, results


def test_myrinet_four_in_flight_quiesces_clean():
    cluster, _ = run_myrinet_stress(track=True)
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    for nic in cluster.nics:
        assert nic.packet_pool.in_use == 0


def test_myrinet_stress_bit_identical_under_perturbation():
    def build_and_run(sim):
        cluster, results = run_myrinet_stress(sim=sim)
        return results, cluster.sim.now

    findings = compare_runs(build_and_run, rounds=3, where="myrinet/stress16")
    assert not findings, [f.message for f in findings]


def test_myrinet_stress_survives_link_flap():
    faults = FaultInjector()
    hole = faults.flap_link(3, 11, 1.0, 60.0)
    cluster, _ = run_myrinet_stress(faults=faults, track=True)
    # The flap really bit, recovery really ran, and nothing leaked.
    assert hole.dropped > 0
    report = check_quiescent(cluster)
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# Quadrics: four chained barriers armed at once per driver
# ----------------------------------------------------------------------
def run_quadrics_stress(sim=None, faults=None, track=False):
    cluster = QuadricsTestCluster(n=N, sim=sim, faults=faults)
    if track:
        cluster.sim.track_processes()
    group = ProcessGroup(list(range(N)), algorithm="dissemination")
    drivers = {
        node: QuadricsChainedBarrier(cluster.ports[node], group)
        for node in range(N)
    }
    completions = {}

    def prog(node):
        driver = drivers[node]
        requests = []
        for seq in range(DEPTH):
            req = yield from driver.ibarrier(seq)
            requests.append(req)
        order = []
        for seq in reversed(range(DEPTH)):
            done = yield from requests[seq].wait()
            order.append((seq, done.seq))
        completions[node] = order

    run_all(cluster, [prog(node) for node in range(N)])
    assert all(d.barriers_completed == DEPTH for d in drivers.values())
    assert all(
        order == [(seq, seq) for seq in reversed(range(DEPTH))]
        for order in completions.values()
    )
    return cluster, completions


def test_quadrics_four_in_flight_quiesces_clean():
    cluster, _ = run_quadrics_stress(track=True)
    report = check_quiescent(cluster)
    assert report.ok, report.render()


def test_quadrics_stress_bit_identical_under_perturbation():
    def build_and_run(sim):
        cluster, completions = run_quadrics_stress(sim=sim)
        return completions, cluster.sim.now

    findings = compare_runs(build_and_run, rounds=3, where="quadrics/stress16")
    assert not findings, [f.message for f in findings]


def test_quadrics_stress_survives_delay_faults():
    faults = FaultInjector(
        rng=DeterministicRng(7, "stress/quadrics-delay"),
        delay_probability=0.2,
        delay_jitter_us=5.0,
    )
    cluster, _ = run_quadrics_stress(faults=faults, track=True)
    assert faults.delayed > 0
    report = check_quiescent(cluster)
    assert report.ok, report.render()
