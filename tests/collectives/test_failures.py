"""Exhaustiveness tests for the typed failure-reason registry.

``repro.collectives.failures`` promises that every failure reason the
simulator can mint is either a :class:`FailureReason` member or matches
a registered dynamic prefix.  These tests grep the source tree and
assert exhaustiveness in both directions:

* every ``FailureReason.X`` referenced in ``src/`` is a real member,
  and every member is actually referenced outside the registry (no
  dead entries);
* every dynamic-prefix literal minted in ``src/`` is registered, and
  every registered prefix is minted somewhere.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.collectives.failures import (
    DYNAMIC_REASON_PREFIXES,
    FailureReason,
    Revoked,
    classify_reason,
    is_revocation,
)

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _source_files():
    return [p for p in SRC.rglob("*.py") if p.name != "failures.py"]


class TestRegistryExhaustiveness:
    def test_every_reference_is_a_member(self):
        """No source file names a FailureReason member that does not
        exist (a typo'd member would raise at import time, but only on
        the code path that touches it — catch it statically here)."""
        pattern = re.compile(r"FailureReason\.([A-Z_]+)")
        members = set(FailureReason.__members__)
        for path in _source_files():
            for name in pattern.findall(path.read_text()):
                assert name in members, f"{path.name} references unknown {name}"

    def test_every_member_is_referenced(self):
        """Every registry entry is used by at least one engine — a
        member nothing mints is a stale vocabulary entry."""
        blob = "\n".join(p.read_text() for p in _source_files())
        for name in FailureReason.__members__:
            assert f"FailureReason.{name}" in blob, f"{name} is never minted"

    def test_every_dynamic_prefix_is_minted(self):
        blob = "\n".join(p.read_text() for p in _source_files())
        for prefix in DYNAMIC_REASON_PREFIXES:
            # Minting sites build the reason in an f-string whose
            # literal head is the prefix (modulo the trailing space).
            assert prefix.rstrip() in blob, f"prefix {prefix!r} is never minted"

    def test_no_raw_reason_literals_outside_registry(self):
        """Engines must mint reasons through FailureReason members, not
        raw strings — a raw literal would dodge the registry and make
        campaign triage (and the chaos fuzzer's outcome validation)
        raise on an unclassifiable reason.  Any kebab literal shaped
        like a reason that *does* appear must therefore classify."""
        shaped = re.compile(
            r"[\"']([a-z][a-z0-9-]*-(?:exhausted|dead|restart|revoked|exceeded))[\"']"
        )
        # Engine-command verbs share the kebab shape but are not
        # failure reasons ("peer-dead" is the host->engine command the
        # retry-exhaustion path posts; the *reason* it escalates to is
        # FailureReason.PEER_DEAD = "peer-declared-dead").
        command_verbs = {"peer-dead"}
        for path in _source_files():
            for literal in shaped.findall(path.read_text()):
                if literal in command_verbs:
                    continue
                classify_reason(literal)  # raises ValueError if unregistered


class TestClassifyReason:
    @pytest.mark.parametrize("member", list(FailureReason))
    def test_members_round_trip(self, member):
        assert classify_reason(member.value) == member.name

    def test_dynamic_prefixes_classify_with_detail(self):
        for prefix, short in DYNAMIC_REASON_PREFIXES.items():
            assert classify_reason(prefix + "rank 3 used max, rank 0 sum") == short

    def test_unknown_reason_raises(self):
        with pytest.raises(ValueError, match="unregistered failure reason"):
            classify_reason("spontaneous-combustion")

    def test_empty_reason_raises(self):
        with pytest.raises(ValueError):
            classify_reason("")


class TestRevocation:
    def test_revoked_is_typed(self):
        exc = Revoked(group_id=7, seq=3, node=5, failed_at=12.5)
        assert exc.reason == FailureReason.GROUP_REVOKED.value
        assert is_revocation(exc.reason)
        assert exc.node == 5

    def test_only_group_revoked_is_revocation(self):
        for member in FailureReason:
            expected = member is FailureReason.GROUP_REVOKED
            assert is_revocation(member.value) is expected
