"""Unit + property tests for the collective protocol bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveGroupState, CollectiveSendRecord, make_schedule
from repro.collectives.algorithms import Phase


PHASES = (
    Phase(sends=(1,), recvs=(3,)),
    Phase(sends=(2,), recvs=(2,)),
    Phase(sends=(3,), recvs=(1,)),
)


class TestCollectiveSendRecord:
    def test_starts_empty(self):
        rec = CollectiveSendRecord(0, PHASES, created_at=0.0)
        assert rec.sent_bits == 0
        assert rec.total_slots == 3
        assert not rec.all_sent

    def test_mark_and_query(self):
        rec = CollectiveSendRecord(0, PHASES, created_at=0.0)
        rec.mark_sent(0, 1)
        assert rec.was_sent(0, 1)
        assert not rec.was_sent(1, 2)

    def test_all_sent(self):
        rec = CollectiveSendRecord(0, PHASES, created_at=0.0)
        rec.mark_sent(0, 1)
        rec.mark_sent(1, 2)
        assert not rec.all_sent
        rec.mark_sent(2, 3)
        assert rec.all_sent

    def test_was_sent_unknown_slot_false(self):
        rec = CollectiveSendRecord(0, PHASES, created_at=0.0)
        assert rec.was_sent(7, 9) is False

    def test_mark_unknown_slot_raises(self):
        rec = CollectiveSendRecord(0, PHASES, created_at=0.0)
        with pytest.raises(KeyError):
            rec.mark_sent(7, 9)

    def test_single_record_replaces_per_packet_records(self):
        """One record regardless of message count (§6.3)."""
        sched = make_schedule("dissemination", 64)
        rec = CollectiveSendRecord(0, sched.phases(0), created_at=0.0)
        assert rec.total_slots == 6  # log2(64) sends, one bit each


class TestCollectiveGroupState:
    def test_initial_state(self):
        st_ = CollectiveGroupState(5, PHASES, created_at=1.0)
        assert st_.seq == 5
        assert st_.phase == 0
        assert not st_.started and not st_.complete

    def test_mark_arrived(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        assert st_.mark_arrived(3) is True
        assert st_.has_arrived(3)
        assert not st_.has_arrived(2)

    def test_unexpected_sender_rejected(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        assert st_.mark_arrived(9) is False
        with pytest.raises(KeyError):
            st_.has_arrived(9)

    def test_duplicate_arrival_idempotent(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        st_.mark_arrived(3)
        bits = st_.arrived_bits
        st_.mark_arrived(3)
        assert st_.arrived_bits == bits

    def test_phase_recvs_complete(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        assert not st_.phase_recvs_complete(0)
        st_.mark_arrived(3)
        assert st_.phase_recvs_complete(0)

    def test_missing_senders_through_current_phase(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        st_.phase = 1
        assert st_.missing_senders() == [(0, 3), (1, 2)]
        st_.mark_arrived(3)
        assert st_.missing_senders() == [(1, 2)]

    def test_duplicate_pair_schedule_rejected(self):
        bad = (Phase(recvs=(1,)), Phase(recvs=(1,)))
        with pytest.raises(ValueError):
            CollectiveGroupState(0, bad, created_at=0.0)

    def test_cancel_timer_without_timer(self):
        st_ = CollectiveGroupState(0, PHASES, created_at=0.0)
        st_.cancel_nack_timer()  # no-op


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    rank_frac=st.floats(min_value=0.0, max_value=0.999),
    algo=st.sampled_from(["dissemination", "pairwise-exchange", "gather-broadcast"]),
)
def test_arrival_bitvector_completeness(n, rank_frac, algo):
    """Marking every expected sender makes every phase complete."""
    sched = make_schedule(algo, n)
    rank = int(rank_frac * n)
    state = CollectiveGroupState(0, sched.phases(rank), created_at=0.0)
    for sender in sched.expected_senders(rank):
        state.mark_arrived(sender)
    for phase_idx in range(len(sched.phases(rank))):
        assert state.phase_recvs_complete(phase_idx)
    state.phase = len(sched.phases(rank))
    assert state.missing_senders() == []


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    data=st.data(),
)
def test_send_record_bits_match_marks(n, data):
    sched = make_schedule("dissemination", n)
    rec = CollectiveSendRecord(0, sched.phases(0), created_at=0.0)
    slots = [(m, p.sends[0]) for m, p in enumerate(sched.phases(0))]
    chosen = data.draw(st.lists(st.sampled_from(slots), unique=True))
    for phase, dst in chosen:
        rec.mark_sent(phase, dst)
    for phase, dst in slots:
        assert rec.was_sent(phase, dst) == ((phase, dst) in chosen)
    assert rec.all_sent == (len(chosen) == len(slots))
