"""The compiled collective schedule IR and its two-layer cache."""

import pytest

from repro.collectives import ProcessGroup
from repro.collectives.algorithms import (
    SCHEDULE_CACHE,
    configure_schedule_cache,
    make_schedule,
    schedule_cache_stats,
)
from repro.collectives.schedule_ir import (
    CollectiveSchedule,
    bitmap_bytes,
    compile_schedule,
    normalize_algorithm,
    reduce_safe,
)

ALGORITHMS = ["dissemination", "pairwise-exchange", "gather-broadcast"]


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, default-sized schedule cache."""
    configure_schedule_cache()
    SCHEDULE_CACHE.clear()
    yield
    configure_schedule_cache()
    SCHEDULE_CACHE.clear()


# ----------------------------------------------------------------------
# Structural invariants of compiled schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 13, 16])
def test_sends_and_recvs_pair_up(algorithm, n):
    schedule = compile_schedule("allgather", algorithm, n, payload_bytes=4)
    sends = []
    recvs = []
    for rank in range(n):
        ops = schedule.ops(rank)
        assert ops[-1].kind == "dma", "every rank ends with result delivery"
        for op in ops:
            if op.kind == "send":
                sends.append((rank, op.peer, op.phase))
            elif op.kind == "recv":
                recvs.append((op.peer, rank, op.peer_phase))
    # Every send is matched by exactly one recv expecting that sender's
    # phase tag — the wire-matching contract of the replay engine.
    assert sorted(sends) == sorted(recvs)
    assert schedule.total_messages() == len(sends)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_reducing_schedules_follow_recvs_with_reduce(n):
    schedule = compile_schedule("allreduce", "pairwise-exchange", n, payload_bytes=4)
    for rank in range(n):
        ops = schedule.ops(rank)
        for i, op in enumerate(ops):
            if op.kind == "recv":
                assert ops[i + 1].kind == "reduce"
                assert ops[i + 1].peer == op.peer


def test_reduce_safety_and_normalization():
    assert reduce_safe("pairwise-exchange", 6)
    assert reduce_safe("gather-broadcast", 6)
    assert reduce_safe("dissemination", 8)
    assert not reduce_safe("dissemination", 6)
    # A reducing collective silently substitutes a safe pattern...
    assert normalize_algorithm("allreduce", "dissemination", 6) == "pairwise-exchange"
    assert normalize_algorithm("allreduce", "dissemination", 8) == "dissemination"
    # ...while union-merge collectives keep what they asked for.
    assert normalize_algorithm("allgather", "dissemination", 6) == "dissemination"


def test_requested_algorithm_recorded_and_warned_once():
    import warnings

    from repro.collectives import schedule_ir

    schedule_ir._normalization_warned.clear()
    try:
        # Non-pow2 reduction: dissemination is substituted and the
        # substitution is recorded and warned about — exactly once.
        with pytest.warns(RuntimeWarning, match="normalized to 'pairwise-exchange'"):
            schedule = compile_schedule("allreduce", "dissemination", 6, 4)
        assert schedule.algorithm == "pairwise-exchange"
        assert schedule.requested_algorithm == "dissemination"
        assert schedule.normalized
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            again = compile_schedule("allreduce", "dissemination", 6, 4)
        assert again is schedule  # cached under the *requested* name
        # Pow2 and non-reducing shapes are untouched, no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            clean = compile_schedule("allreduce", "dissemination", 8, 4)
            union = compile_schedule("allgather", "dissemination", 6, 4)
        assert not clean.normalized and clean.requested_algorithm == "dissemination"
        assert not union.normalized
    finally:
        schedule_ir._normalization_warned.clear()


def test_reducing_wire_bytes_are_value_plus_bitmap():
    n = 16
    schedule = compile_schedule("allreduce", "pairwise-exchange", n, payload_bytes=8)
    sends = [op for ops in schedule.ops_by_rank for op in ops if op.kind == "send"]
    assert sends, "no sends compiled"
    # O(1) + bitmap per hop, independent of how many contributions the
    # partial already folds — the O(N)-map-per-hop regression guard.
    assert {op.nbytes for op in sends} == {8 + bitmap_bytes(n)}


# ----------------------------------------------------------------------
# Cached replay is bit-identical to fresh derivation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cached_schedule_identical_to_fresh(algorithm):
    cached = compile_schedule("allgather", algorithm, 8, payload_bytes=4)
    assert compile_schedule("allgather", algorithm, 8, payload_bytes=4) is cached
    SCHEDULE_CACHE.clear()
    fresh = compile_schedule("allgather", algorithm, 8, payload_bytes=4)
    assert fresh is not cached
    assert fresh == cached  # dataclass equality: op-for-op identical


def test_group_compiles_once_per_shape():
    group = ProcessGroup(list(range(8)))
    first = group.collective_schedule("allgather", payload_bytes=4)
    assert group.collective_schedule("allgather", payload_bytes=4) is first
    assert isinstance(first, CollectiveSchedule)
    # A different payload is a different compilation.
    other = group.collective_schedule("allgather", payload_bytes=64)
    assert other is not first
    assert other.payload_bytes == 64


# ----------------------------------------------------------------------
# The shared LRU cache (pattern layer + IR layer)
# ----------------------------------------------------------------------
def test_cache_hit_rate_counts_both_layers():
    make_schedule("dissemination", 8)
    make_schedule("dissemination", 8)
    compile_schedule("barrier", "dissemination", 8)
    compile_schedule("barrier", "dissemination", 8)
    stats = schedule_cache_stats()
    # 3 misses: the pattern, the IR compile, and the compile's own
    # pattern lookup hits the first entry.
    assert stats["hits"] == 3
    assert stats["misses"] == 2
    assert stats["hit_rate"] == pytest.approx(0.6)
    assert stats["size"] == 2


def test_cache_evicts_lru_and_resizes():
    configure_schedule_cache(4)
    for n in [2, 4, 8, 16, 32]:
        make_schedule("dissemination", n)
    stats = schedule_cache_stats()
    assert stats["size"] == 4
    assert stats["evictions"] == 1
    # n=2 was the least recently used; rebuilding it misses.
    misses = stats["misses"]
    make_schedule("dissemination", 2)
    assert schedule_cache_stats()["misses"] == misses + 1
    # Growing the cache keeps residents; shrinking drops the oldest.
    configure_schedule_cache(2)
    assert schedule_cache_stats()["size"] == 2


def test_cache_size_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE_SIZE", "3")
    configure_schedule_cache()
    for n in [2, 4, 8, 16]:
        make_schedule("dissemination", n)
    assert schedule_cache_stats()["size"] == 3
