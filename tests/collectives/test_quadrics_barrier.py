"""End-to-end tests for the chained-RDMA barrier on Quadrics (§7)."""

import pytest

from repro.collectives import ProcessGroup, QuadricsChainedBarrier
from repro.quadrics import elan_gsync
from tests.collectives.conftest import run_all
from tests.quadrics.conftest import QuadricsTestCluster


def make_drivers(qc, algorithm="dissemination", nodes=None):
    nodes = list(range(len(qc.nics))) if nodes is None else nodes
    group = ProcessGroup(nodes, algorithm=algorithm)
    drivers = {node: QuadricsChainedBarrier(qc.ports[node], group) for node in nodes}
    return group, drivers


@pytest.mark.parametrize("algorithm", ["dissemination", "pairwise-exchange", "gather-broadcast"])
def test_completes_all_ranks(qcluster8, algorithm):
    qc = qcluster8
    group, drivers = make_drivers(qc, algorithm)
    done = {}

    def prog(node):
        yield from drivers[node].barrier(0)
        done[node] = qc.sim.now

    run_all(qc, [prog(i) for i in range(8)])
    assert set(done) == set(range(8))


def test_no_early_exit(qcluster8):
    qc = qcluster8
    group, drivers = make_drivers(qc)
    entries, exits = {}, {}

    def prog(node, delay):
        yield delay
        entries[node] = qc.sim.now
        yield from drivers[node].barrier(0)
        exits[node] = qc.sim.now

    run_all(qc, [prog(i, float(i * 4)) for i in range(8)])
    assert min(exits.values()) >= max(entries.values())


@pytest.mark.parametrize("n", [2, 3, 5, 7, 8])
@pytest.mark.parametrize("algorithm", ["dissemination", "pairwise-exchange"])
def test_odd_sizes(n, algorithm):
    qc = QuadricsTestCluster(n=n)
    group, drivers = make_drivers(qc, algorithm)
    done = []

    def prog(node):
        yield from drivers[node].barrier(0)
        done.append(node)

    run_all(qc, [prog(i) for i in range(n)])
    assert sorted(done) == list(range(n))


def test_consecutive_barriers_cumulative_events(qcluster8):
    """Back-to-back barriers reuse event words with growing thresholds."""
    qc = qcluster8
    group, drivers = make_drivers(qc)

    def prog(node):
        for seq in range(10):
            yield from drivers[node].barrier(seq)

    run_all(qc, [prog(i) for i in range(8)])
    assert all(d.barriers_completed == 10 for d in drivers.values())


def test_skewed_entries_overlap_safely(qcluster8):
    """A fast rank's next-barrier RDMA may land before a slow rank has

    armed its chain — cumulative event counters must absorb it."""
    qc = qcluster8
    group, drivers = make_drivers(qc)

    def prog(node):
        for seq in range(5):
            # Rank-dependent compute skew between barriers.
            yield float((node * 7) % 3)
            yield from drivers[node].barrier(seq)

    run_all(qc, [prog(i) for i in range(8)])
    assert all(d.barriers_completed == 5 for d in drivers.values())


def test_host_uninvolved_between_start_and_completion(qcluster8):
    """NIC offload: only the trigger command and the completion event

    touch the host bus per barrier (no per-phase crossings)."""
    qc = qcluster8
    group, drivers = make_drivers(qc)

    def prog(node):
        yield from drivers[node].barrier(0)

    run_all(qc, [prog(i) for i in range(8)])
    # Host->NIC: one command PIO; NIC->host: one 8-byte event DMA.
    assert qc.pcis[0].pio_count == 1
    assert qc.tracer.counters.get("pci0.dma.nic_to_host", 0) == 1


def test_faster_than_gsync(qcluster8):
    """The headline Quadrics claim: NIC barrier beats the tree barrier."""
    qc = qcluster8
    group, drivers = make_drivers(qc)
    spans = {"nic": 0.0, "gsync": 0.0}

    def prog(node):
        start = qc.sim.now
        yield from drivers[node].barrier(0)
        spans["nic"] = max(spans["nic"], qc.sim.now - start)
        mid = qc.sim.now
        yield from elan_gsync(qc.ports[node], list(range(8)), 0)
        spans["gsync"] = max(spans["gsync"], qc.sim.now - mid)

    run_all(qc, [prog(i) for i in range(8)])
    assert spans["nic"] < spans["gsync"]


def test_permuted_nodes(qcluster8):
    qc = qcluster8
    group, drivers = make_drivers(qc, nodes=[3, 0, 6, 1, 7, 4, 2, 5])
    done = []

    def prog(node):
        yield from drivers[node].barrier(0)
        done.append(node)

    run_all(qc, [prog(i) for i in range(8)])
    assert sorted(done) == list(range(8))
