"""Membership views and the NIC failure detector.

Covers the three evidence paths that feed :class:`MembershipView`:

* piggybacked liveness from ordinary collective traffic (no heartbeats
  sent while links stay chatty),
* active heartbeat probing and suspicion timeout on both networks,
* retry-exhaustion escalation from the Myrinet ACK path, unified into
  the same typed :class:`PeerDead` vocabulary.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.collectives import BarrierFailure
from repro.collectives.failures import classify_reason
from repro.collectives.membership import MembershipView, PeerDead
from repro.mpi import create_communicators
from repro.network.faults import FaultInjector
from repro.sim import DeterministicRng, Simulator
from repro.tools.simlint import check_quiescent


class TestMembershipView:
    def test_observe_alive_is_monotonic(self):
        view = MembershipView(node_id=0)
        view.observe_alive(1, 10.0)
        view.observe_alive(1, 5.0)  # stale evidence must not rewind
        assert view.last_heard[1] == 10.0

    def test_self_observations_ignored(self):
        view = MembershipView(node_id=0)
        view.observe_alive(0, 10.0)
        assert 0 not in view.last_heard

    def test_declare_dead_idempotent_first_wins(self):
        view = MembershipView(node_id=0)
        first = view.declare_dead(2, 100.0, "heartbeat-timeout")
        second = view.declare_dead(2, 150.0, "retry-exhaustion")
        assert isinstance(first, PeerDead)
        assert second is None
        assert view.dead[2].detected_at == 100.0
        assert view.dead[2].origin == "heartbeat-timeout"

    def test_dead_peers_stop_accumulating_liveness(self):
        view = MembershipView(node_id=0)
        view.declare_dead(2, 100.0, "external")
        view.observe_alive(2, 200.0)  # late packet from a zombie
        assert 2 not in view.last_heard
        assert view.is_dead(2)

    def test_callbacks_fire_exactly_once_per_verdict(self):
        view = MembershipView(node_id=0)
        verdicts = []
        view.on_death(verdicts.append)
        view.declare_dead(3, 50.0, "heartbeat-timeout")
        view.declare_dead(3, 60.0, "retry-exhaustion")
        assert [v.node for v in verdicts] == [3]

    def test_alive_peers_excludes_self_and_dead(self):
        view = MembershipView(node_id=1)
        view.declare_dead(3, 10.0, "external")
        assert view.alive_peers(range(4)) == [0, 2]

    def test_silent_for_uses_default_for_never_heard(self):
        view = MembershipView(node_id=0)
        assert view.silent_for(5, now=400.0, since_default=100.0) == 300.0
        view.observe_alive(5, 350.0)
        assert view.silent_for(5, now=400.0, since_default=100.0) == 50.0


def _detector_cluster(profile_name, n, seed):
    sim = Simulator()
    sim.track_processes()
    faults = FaultInjector()
    profile = get_profile(profile_name)
    cluster = build_cluster(profile, n, faults=faults, sim=sim)
    rng = DeterministicRng(seed, "membership-test")
    for node in range(n):
        cluster.nics[node].enable_failure_detector(
            range(n), rng=rng, period_us=50.0, timeout_us=150.0,
            horizon_us=2000.0)
    return sim, faults, cluster


@pytest.mark.parametrize(
    "profile_name,counter",
    [("lanai_xp_xeon2400", "gm.peer_dead_hb"),
     ("elan3_piii700", "elan.peer_dead_hb")],
    ids=["myrinet", "quadrics"],
)
class TestHeartbeatDetection:
    def test_crash_is_convicted_by_every_survivor(self, profile_name, counter):
        n = 4
        sim, faults, cluster = _detector_cluster(profile_name, n, seed=11)
        victim = 2
        faults.kill_node(victim, at_us=100.0)

        def killer():
            yield 100.0
            cluster.nics[victim].crashed = True

        sim.process(killer(), name="killer")
        sim.run()
        survivors = [node for node in range(n) if node != victim]
        for s in survivors:
            view = cluster.nics[s].membership
            assert view.is_dead(victim), f"node {s} never convicted {victim}"
            verdict = view.dead[victim]
            assert verdict.origin == "heartbeat-timeout"
            # Suspicion needs a full timeout of silence since the
            # victim's last beat, which lands at most one period before
            # the kill at t=100.
            assert verdict.detected_at >= 100.0 - 50.0 + 150.0
            # And no survivor convicted another survivor.
            assert view.alive_peers(range(n)) == [
                p for p in survivors if p != s
            ]
        assert cluster.tracer.counters[counter] == len(survivors)

    def test_healthy_cluster_convicts_nobody(self, profile_name, counter):
        n = 4
        sim, _faults, cluster = _detector_cluster(profile_name, n, seed=12)
        sim.run()
        for node in range(n):
            assert not cluster.nics[node].membership.dead
        assert cluster.tracer.counters[counter] == 0

    def test_detector_drains_at_horizon(self, profile_name, counter):
        sim, _faults, cluster = _detector_cluster(profile_name, 4, seed=13)
        sim.run()  # would hang (or loop forever) without the horizon bound
        assert sim.now <= 2000.0 + 50.0
        report = check_quiescent(cluster)
        assert not report.findings


class TestPiggybackedLiveness:
    def test_collective_traffic_refreshes_last_heard(self):
        """Ordinary barrier packets count as liveness evidence — no
        detector enabled, no heartbeats sent, yet every node has heard
        from its schedule peers."""
        sim = Simulator()
        sim.track_processes()
        profile = get_profile("lanai_xp_xeon2400")
        cluster = build_cluster(profile, 4, sim=sim)
        comms = create_communicators(cluster)

        def program(comm):
            yield from comm.barrier()

        for comm in comms:
            sim.process(program(comm), name=f"rank@{comm.node}")
        sim.run()
        assert cluster.tracer.counters["gm.heartbeat_tx"] == 0
        for node in range(4):
            view = cluster.nics[node].membership
            assert view.last_heard, f"node {node} heard nobody"
            assert all(peer != node for peer in view.last_heard)


class TestRetryExhaustionUnification:
    def test_ack_budget_escalates_to_peer_dead(self):
        """With the detector off, a blackholed peer is still convicted:
        the Myrinet timeout loop exhausts its ACK retry budget and
        reports through the same declare_dead path, and the in-flight
        direct-scheme barrier fails typed instead of hanging."""
        from repro.collectives import NicDirectBarrierEngine, nic_barrier
        from tests.collectives.conftest import (
            install_engines,
            make_group,
            run_all,
        )
        from tests.myrinet.conftest import TEST_GM, MyrinetTestCluster

        faults = FaultInjector()
        victim = 3
        faults.drop_all_matching(
            lambda p: victim in (p.src, p.dst), label=f"dead:{victim}"
        )
        gm = replace(TEST_GM, ack_timeout_us=20.0, max_retries=2)
        cluster = MyrinetTestCluster(n=4, gm=gm, faults=faults)
        cluster.sim.track_processes()
        group = make_group(cluster)
        install_engines(cluster, group, engine_cls=NicDirectBarrierEngine)
        failures = {}

        def prog(node):
            try:
                yield from nic_barrier(cluster.ports[node], group, 0)
            except BarrierFailure as exc:
                failures[node] = exc

        survivors = [node for node in range(4) if node != victim]
        run_all(cluster, [prog(node) for node in group.node_ids])
        # Every survivor whose schedule sent to the victim convicted it
        # via retry exhaustion; at least one must have.
        verdicts = [
            cluster.nics[s].membership.dead[victim]
            for s in survivors
            if cluster.nics[s].membership.is_dead(victim)
        ]
        assert verdicts, "no survivor escalated retry exhaustion"
        for verdict in verdicts:
            assert verdict.origin == "retry-exhaustion"
            assert "p2p seq" in verdict.detail
        # The in-flight barrier failed typed (peer-dead escalation or
        # the watchdog), never hung, and the reason classifies.
        assert failures
        for exc in failures.values():
            assert classify_reason(exc.reason) in ("PEER_DEAD", "BARRIER_DEADLINE")
        assert cluster.tracer.counters["gm.peer_dead"] >= 1
        report = check_quiescent(cluster)
        assert report.ok, report.render()
