"""Unit-level tests of the shared data-collective engine machinery."""

import pytest

from repro.collectives import ProcessGroup
from repro.collectives.allgather import NicAllgatherEngine, nic_allgather
from repro.collectives.data_engine import _DataState
from repro.network import FaultInjector, Packet, PacketKind
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster


class TestDataState:
    def test_initial(self):
        state = _DataState(3)
        assert state.seq == 3
        assert not state.started and not state.complete
        assert state.pending == {} and state.sent_messages == {}

    def test_cancel_timer_noop(self):
        _DataState(0).cancel_timer()


class TestEngineGuards:
    def test_wrong_node_rejected(self):
        cluster = MyrinetTestCluster(n=2)
        group = ProcessGroup([0, 1])
        with pytest.raises(ValueError):
            NicAllgatherEngine(cluster.nics[0], group, rank=1)

    def test_unknown_command(self):
        cluster = MyrinetTestCluster(n=2)
        group = ProcessGroup([0, 1])
        NicAllgatherEngine(cluster.nics[0], group, 0)
        cluster.nics[0].post_engine_command((group.group_id, "frobnicate", 0))
        with pytest.raises(ValueError, match="unknown allgather command"):
            cluster.sim.run()

    def test_barrier_packet_rejected(self):
        cluster = MyrinetTestCluster(n=2)
        group = ProcessGroup([0, 1])
        engine = NicAllgatherEngine(cluster.nics[0], group, 0)
        packet = Packet(1, 0, PacketKind.BARRIER, 8, payload=None)
        with pytest.raises(TypeError):
            list(engine.on_barrier_packet(packet))


class TestDuplicateSuppression:
    def test_duplicate_in_flight_message_ignored(self):
        """A retransmission racing the original must merge only once."""
        cluster = MyrinetTestCluster(n=4)
        group = ProcessGroup([0, 1, 2, 3])
        engines = [
            NicAllgatherEngine(cluster.nics[i], group, i) for i in range(4)
        ]
        # Duplicate every allgather data packet on the wire.
        original = cluster.fabric.transmit

        def duplicating(packet):
            original(packet)
            if packet.kind == PacketKind.BCAST:
                clone = Packet(
                    packet.src, packet.dst, packet.kind,
                    packet.size_bytes, payload=packet.payload,
                )
                original(clone)

        cluster.fabric.transmit = duplicating

        def prog(node):
            gathered = yield from nic_allgather(cluster.ports[node], group, 0, node)
            assert gathered == {r: r for r in range(4)}

        run_all(cluster, [prog(i) for i in range(4)])
        assert cluster.tracer.counters["allgather.rx_duplicate"] >= 1
        assert all(e.completed == 1 for e in engines)

    def test_archive_bounded(self):
        cluster = MyrinetTestCluster(n=2)
        group = ProcessGroup([0, 1])
        engines = [NicAllgatherEngine(cluster.nics[i], group, i) for i in range(2)]

        def prog(node):
            for seq in range(12):
                yield from nic_allgather(cluster.ports[node], group, seq, node)

        run_all(cluster, [prog(i) for i in range(2)])
        assert all(len(e.archive) <= 8 for e in engines)
        # Retirement is archive-aligned: the last 8 sequences sit in
        # the archive, everything older is below the pruned floor.
        assert all(sorted(e.archive) == list(range(4, 12)) for e in engines)
        assert all(e.done_floor == 3 for e in engines)
        assert all(e._retired(s) for e in engines for s in range(12))
        assert not any(e._retired(12) for e in engines)


class TestGiveUp:
    def test_dead_sender_fails_typed_instead_of_hanging(self):
        """Black-holing a peer: ranks stuck behind it exhaust the NACK
        retry budget and their hosts get a *typed* CollectiveFailure —
        the regression for the hang where `_on_nack_timeout` only
        counted `gave_up` and left the state (and the host's
        recv_matching) dangling forever."""
        import dataclasses

        from repro.collectives.data_engine import (
            RETRY_BUDGET_EXHAUSTED,
            CollectiveFailure,
        )
        from tests.myrinet.conftest import TEST_GM

        gm = dataclasses.replace(TEST_GM, max_retries=3, nack_timeout_us=50.0)
        faults = FaultInjector()
        faults.drop_all_matching(lambda p: p.src == 1)  # rank 1 mute
        cluster = MyrinetTestCluster(n=4, gm=gm, faults=faults)
        group = ProcessGroup([0, 1, 2, 3])
        engines = [NicAllgatherEngine(cluster.nics[i], group, i) for i in range(4)]

        failures = []

        def prog(node):
            try:
                yield from nic_allgather(cluster.ports[node], group, 0, node)
            except CollectiveFailure as exc:
                failures.append((node, exc.reason))

        procs = [cluster.sim.process(prog(i)) for i in range(4)]
        cluster.sim.run()  # MUST terminate
        assert cluster.tracer.counters["allgather.gave_up"] >= 1
        # Every host unblocked: the stuck ranks raised typed failures
        # instead of hanging in recv_matching.
        assert all(p.completion.processed for p in procs)
        assert failures
        assert all(reason == RETRY_BUDGET_EXHAUSTED for _, reason in failures)
        # No dangling per-sequence state on any NIC.
        assert all(not e.states for e in engines)
