"""Non-blocking collectives: requests, overlap, out-of-order completion.

Covers the MPI-3-style ``i``-collective layer on both networks:

- the out-of-order-completion regression (a retired high seq must not
  swallow live lower-seq traffic — per-seq retirement, not a
  watermark);
- several sequences genuinely in flight per group, waited out of
  order, bit-identical to the blocking runs;
- ``test()`` polling as an alternative to ``wait()``;
- measured latency hiding from overlapping a barrier with an
  allreduce, against the back-to-back blocking baseline;
- the Quadrics chained-barrier request handles.
"""

import pytest

from repro.collectives import (
    NicAllreduceEngine,
    NicBroadcastEngine,
    NicCollectiveBarrierEngine,
    ProcessGroup,
    QuadricsChainedBarrier,
    nic_allreduce,
    nic_barrier,
    nic_iallgather,
    nic_iallreduce,
    nic_ibarrier,
    nic_ibcast,
    nic_ireduce,
)
from repro.collectives.allgather import NicAllgatherEngine
from repro.collectives.reduce import NicReduceEngine
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster
from tests.quadrics.conftest import QuadricsTestCluster


def install(cluster, engine_cls, **kwargs):
    group = ProcessGroup(list(range(len(cluster.nics))))
    engines = [
        engine_cls(cluster.nics[node], group, rank, **kwargs)
        for rank, node in enumerate(group.node_ids)
    ]
    return group, engines


# ----------------------------------------------------------------------
# Out-of-order completion (the done_through watermark regression)
# ----------------------------------------------------------------------
def test_retired_high_seq_does_not_swallow_live_low_seq():
    """Seq 1 retires everywhere before rank 0 even *starts* seq 0.

    Under the old single-watermark duplicate filter, every rank that
    finished seq 1 would then drop rank 0's live seq-0 messages as
    duplicates (and the NACK-recovery retransmits with them), ending in
    retry-budget exhaustion.  Per-seq retirement keeps seq 0 alive.
    """
    n = 4
    cluster = MyrinetTestCluster(n=n)
    group, engines = install(cluster, NicAllgatherEngine)
    results = {}

    def straggler(node):
        # Rank 0 completes seq 1 before contributing to seq 0 at all.
        req1 = yield from nic_iallgather(cluster.ports[node], group, 1, node + 100)
        r1 = yield from req1.wait()
        req0 = yield from nic_iallgather(cluster.ports[node], group, 0, node)
        r0 = yield from req0.wait()
        results[node] = (r0, r1)

    def prompt(node):
        req0 = yield from nic_iallgather(cluster.ports[node], group, 0, node)
        req1 = yield from nic_iallgather(cluster.ports[node], group, 1, node + 100)
        r1 = yield from req1.wait()
        r0 = yield from req0.wait()
        results[node] = (r0, r1)

    run_all(cluster, [straggler(0)] + [prompt(i) for i in range(1, n)])
    want0 = {rank: rank for rank in range(n)}
    want1 = {rank: rank + 100 for rank in range(n)}
    assert results == {i: (want0, want1) for i in range(n)}
    # Nothing gave up, nothing was mistaken for a duplicate.
    assert "datacoll.gave_up" not in cluster.tracer.counters
    assert "datacoll.rx_duplicate" not in cluster.tracer.counters
    assert all(e.states == {} for e in engines)
    # Both sequences are retired per-seq; the archive holds them both.
    assert all(sorted(e.archive) == [0, 1] for e in engines)


# ----------------------------------------------------------------------
# Multiple sequences in flight, waited out of order
# ----------------------------------------------------------------------
def test_four_in_flight_allreduces_match_blocking():
    depth = 4

    def blocking_totals():
        cluster = MyrinetTestCluster(n=4)
        group, _ = install(cluster, NicAllreduceEngine)
        got = {}

        def prog(node):
            totals = []
            for seq in range(depth):
                total = yield from nic_allreduce(
                    cluster.ports[node], group, seq, node * 3 + seq
                )
                totals.append(total)
            got[node] = totals

        run_all(cluster, [prog(i) for i in range(4)])
        return got

    cluster = MyrinetTestCluster(n=4)
    group, engines = install(cluster, NicAllreduceEngine)
    got = {}

    def prog(node):
        requests = []
        for seq in range(depth):
            req = yield from nic_iallreduce(
                cluster.ports[node], group, seq, node * 3 + seq
            )
            requests.append(req)
        # Wait newest-first: completions consumed out of posting order.
        totals = [None] * depth
        for seq in reversed(range(depth)):
            totals[seq] = yield from requests[seq].wait()
        got[node] = totals

    run_all(cluster, [prog(i) for i in range(4)])
    expected = [sum(node * 3 + seq for node in range(4)) for seq in range(depth)]
    assert all(totals == expected for totals in got.values())
    assert got == blocking_totals()
    assert all(e.completed == depth and e.states == {} for e in engines)


def test_request_test_polls_to_completion():
    cluster = MyrinetTestCluster(n=4)
    group, _ = install(cluster, NicAllgatherEngine)
    polls = {}

    def prog(node):
        req = yield from nic_iallgather(cluster.ports[node], group, 0, node)
        count = 0
        while not (yield from req.test()):
            count += 1
            yield 1.0  # host does something else between polls
        polls[node] = count
        assert req.done
        assert req.result == {rank: rank for rank in range(4)}
        # wait() after a successful test returns the stored result.
        again = yield from req.wait()
        assert again == req.result

    run_all(cluster, [prog(i) for i in range(4)])
    # The collective takes real simulated time: nobody's first poll wins.
    assert all(count > 0 for count in polls.values())


def test_overlap_hides_latency_vs_blocking():
    """ibarrier + iallreduce posted together beat the blocking sum."""

    def build():
        cluster = MyrinetTestCluster(n=8)
        barrier_group = ProcessGroup(list(range(8)))
        reduce_group = ProcessGroup(list(range(8)))
        for rank in range(8):
            NicCollectiveBarrierEngine(cluster.nics[rank], barrier_group, rank)
            NicAllreduceEngine(cluster.nics[rank], reduce_group, rank)
        return cluster, barrier_group, reduce_group

    cluster, barrier_group, reduce_group = build()

    def blocking(node):
        yield from nic_barrier(cluster.ports[node], barrier_group, 0)
        yield from nic_allreduce(cluster.ports[node], reduce_group, 0, node)

    run_all(cluster, [blocking(i) for i in range(8)])
    blocking_us = cluster.sim.now

    cluster, barrier_group, reduce_group = build()

    def overlapped(node):
        barrier_req = yield from nic_ibarrier(
            cluster.ports[node], barrier_group, 0
        )
        reduce_req = yield from nic_iallreduce(
            cluster.ports[node], reduce_group, 0, node
        )
        yield from reduce_req.wait()
        yield from barrier_req.wait()

    run_all(cluster, [overlapped(i) for i in range(8)])
    overlapped_us = cluster.sim.now

    assert overlapped_us < blocking_us, (
        f"overlap hid nothing: {overlapped_us} !< {blocking_us}"
    )


# ----------------------------------------------------------------------
# The other starters
# ----------------------------------------------------------------------
def test_ibcast_delivers_payload_everywhere():
    cluster = MyrinetTestCluster(n=8)
    group, _ = install(cluster, NicBroadcastEngine)
    got = {}

    def prog(node):
        req = yield from nic_ibcast(
            cluster.ports[node], group, 0, size_bytes=256,
            payload=b"tuned" if node == 0 else None,
        )
        done = yield from req.wait()
        got[node] = done.payload

    run_all(cluster, [prog(i) for i in range(8)])
    assert got == {i: b"tuned" for i in range(8)}


def test_ireduce_result_lands_at_root_only():
    cluster = MyrinetTestCluster(n=4)
    group, _ = install(cluster, NicReduceEngine)
    got = {}

    def prog(node):
        req = yield from nic_ireduce(cluster.ports[node], group, 0, node + 1, op="prod")
        got[node] = yield from req.wait()

    run_all(cluster, [prog(i) for i in range(4)])
    assert got[0] == 1 * 2 * 3 * 4
    assert all(got[i] is None for i in range(1, 4))


# ----------------------------------------------------------------------
# Quadrics chained-barrier requests
# ----------------------------------------------------------------------
def test_quadrics_ibarrier_two_in_flight_waited_in_reverse():
    cluster = QuadricsTestCluster(n=8)
    nodes = list(range(8))
    group = ProcessGroup(nodes)
    drivers = {
        node: QuadricsChainedBarrier(cluster.ports[node], group)
        for node in nodes
    }

    def prog(node):
        driver = drivers[node]
        req0 = yield from driver.ibarrier(0)
        req1 = yield from driver.ibarrier(1)
        yield from req1.wait()
        yield from req0.wait()

    run_all(cluster, [prog(node) for node in nodes])
    assert all(d.barriers_completed == 2 for d in drivers.values())


def test_quadrics_ibarrier_test_polls_to_completion():
    cluster = QuadricsTestCluster(n=8)
    nodes = list(range(8))
    group = ProcessGroup(nodes)
    drivers = {
        node: QuadricsChainedBarrier(cluster.ports[node], group)
        for node in nodes
    }
    polls = {}

    def prog(node):
        req = yield from drivers[node].ibarrier(0)
        count = 0
        while not (yield from req.test()):
            count += 1
            yield 0.5
        polls[node] = count

    run_all(cluster, [prog(node) for node in nodes])
    assert all(d.barriers_completed == 1 for d in drivers.values())
    assert all(count > 0 for count in polls.values())
