"""Unit + property tests for barrier schedules."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    Phase,
    dissemination,
    gather_broadcast,
    make_schedule,
    pairwise_exchange,
)


class TestPhase:
    def test_duplicate_sends_rejected(self):
        with pytest.raises(ValueError):
            Phase(sends=(1, 1))

    def test_duplicate_recvs_rejected(self):
        with pytest.raises(ValueError):
            Phase(recvs=(2, 2))

    def test_empty(self):
        assert Phase().empty
        assert not Phase(sends=(1,)).empty


class TestDissemination:
    def test_step_count_is_ceil_log2(self):
        for n, steps in [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4)]:
            sched = dissemination(n)
            assert sched.max_steps == steps, n
            # Dissemination is perfectly symmetric: all ranks equal.
            assert all(len(sched.phases(r)) == steps for r in range(n))

    def test_structure_matches_paper(self):
        """Step m: i sends to (i + 2^m) mod N, receives from (i - 2^m) mod N."""
        sched = dissemination(8)
        for i in range(8):
            for m, phase in enumerate(sched.phases(i)):
                assert phase.sends == ((i + 2**m) % 8,)
                assert phase.recvs == ((i - 2**m) % 8,)
                assert phase.send_first

    def test_total_messages(self):
        assert dissemination(8).total_messages() == 8 * 3
        assert dissemination(5).total_messages() == 5 * 3

    def test_single_rank(self):
        sched = dissemination(1)
        assert sched.phases(0) == ()

    def test_validates(self):
        for n in range(1, 20):
            dissemination(n).validate()


class TestPairwiseExchange:
    def test_power_of_two_steps(self):
        for n in (2, 4, 8, 16, 32):
            sched = pairwise_exchange(n)
            assert sched.max_steps == int(math.log2(n))

    def test_non_power_of_two_steps(self):
        """floor(log2 N) + 2 steps for non-powers of two (§5.1)."""
        for n in (3, 5, 6, 7, 9, 12, 15):
            sched = pairwise_exchange(n)
            assert sched.max_steps == math.floor(math.log2(n)) + 2, n

    def test_power_of_two_partners(self):
        sched = pairwise_exchange(8)
        for i in range(8):
            for m, phase in enumerate(sched.phases(i)):
                partner = i ^ (1 << m)
                assert phase.sends == (partner,)
                assert phase.recvs == (partner,)

    def test_extra_ranks_report_then_wait(self):
        sched = pairwise_exchange(6)  # M = 4, extras = ranks 4, 5
        for i in (4, 5):
            phases = sched.phases(i)
            assert len(phases) == 2
            assert phases[0].sends == (i - 4,)
            assert phases[1].recvs == (i - 4,)

    def test_partnered_low_ranks_bracket_the_exchange(self):
        sched = pairwise_exchange(6)
        for i in (0, 1):
            phases = sched.phases(i)
            assert phases[0].recvs == (i + 4,)
            assert phases[-1].sends == (i + 4,)

    def test_validates(self):
        for n in range(1, 40):
            pairwise_exchange(n).validate()


class TestGatherBroadcast:
    def test_two_phases_for_internal_nodes(self):
        sched = gather_broadcast(8, degree=2)
        assert len(sched.phases(0)) == 2  # root: gather + bcast
        assert len(sched.phases(1)) == 2

    def test_leaf_phases(self):
        sched = gather_broadcast(7, degree=2)
        leaf = sched.phases(5)
        assert leaf[0].sends == (2,) and leaf[0].recvs == ()
        assert leaf[1].recvs == (2,) and leaf[1].sends == ()

    def test_root_has_no_parent(self):
        sched = gather_broadcast(8, degree=4)
        for phase in sched.phases(0):
            assert 0 not in phase.sends and 0 not in phase.recvs

    def test_recv_before_send(self):
        sched = gather_broadcast(8)
        for r in range(8):
            assert all(not p.send_first for p in sched.phases(r))

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            gather_broadcast(4, degree=1)

    def test_validates(self):
        for n in range(1, 30):
            for d in (2, 3, 4):
                gather_broadcast(n, degree=d).validate()

    def test_message_count_formula(self):
        """GB needs exactly 2*(N-1) messages: one up + one down per edge."""
        for n in (2, 7, 16, 31):
            assert gather_broadcast(n, degree=2).total_messages() == 2 * (n - 1)
            assert gather_broadcast(n, degree=4).total_messages() == 2 * (n - 1)


class TestMakeSchedule:
    def test_by_name(self):
        assert make_schedule("dissemination", 8).algorithm == "dissemination"
        assert make_schedule("pairwise-exchange", 8).algorithm == "pairwise-exchange"
        assert make_schedule("gather-broadcast", 8).algorithm == "gather-broadcast"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_schedule("tournament", 8)

    def test_rank_range_checked(self):
        sched = make_schedule("dissemination", 4)
        with pytest.raises(ValueError):
            sched.phases(4)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
ALGOS = ["dissemination", "pairwise-exchange", "gather-broadcast"]


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=1, max_value=200), algo=st.sampled_from(ALGOS))
def test_schedules_always_validate(n, algo):
    make_schedule(algo, n)  # make_schedule() runs validate()


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=2, max_value=128), algo=st.sampled_from(ALGOS))
def test_every_rank_participates(n, algo):
    """Every rank both sends and receives at least one message."""
    sched = make_schedule(algo, n)
    for r in range(n):
        sends = [d for p in sched.phases(r) for d in p.sends]
        recvs = [s for p in sched.phases(r) for s in p.recvs]
        assert sends, (algo, n, r)
        assert recvs, (algo, n, r)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=2, max_value=96), algo=st.sampled_from(ALGOS))
def test_barrier_information_flow(n, algo):
    """Causal closure: when the schedule's dependency graph is executed,

    no rank can finish before every rank has started.  We simulate the
    phase ordering abstractly: a rank's phase completes only when all
    its receives' matching sends have completed at the sender."""
    sched = make_schedule(algo, n)
    # known[r] = set of ranks whose start is causally prior to r's finish.
    known = {r: {r} for r in range(n)}
    # Iterate phases in lockstep until a fixpoint: abstract dataflow.
    changed = True
    rounds = 0
    while changed and rounds < 4 * sched.max_steps + 4:
        changed = False
        rounds += 1
        for r in range(n):
            for phase in sched.phases(r):
                for src in phase.recvs:
                    before = len(known[r])
                    known[r] |= known[src]
                    if len(known[r]) != before:
                        changed = True
    for r in range(n):
        assert known[r] == set(range(n)), (algo, n, r)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=64))
def test_dissemination_message_count_formula(n):
    sched = dissemination(n)
    assert sched.total_messages() == n * math.ceil(math.log2(n))


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=64), algo=st.sampled_from(ALGOS))
def test_expected_senders_consistent(n, algo):
    sched = make_schedule(algo, n)
    for r in range(n):
        senders = sched.expected_senders(r)
        for s in senders:
            targets = [d for p in sched.phases(s) for d in p.sends]
            assert r in targets
