"""Unit tests for the chained-RDMA barrier's chain construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.algorithms import Phase, make_schedule
from repro.collectives.quadrics_barrier import _Op, _flatten_ops


class TestFlattenOps:
    def test_dissemination_alternates_send_wait(self):
        phases = make_schedule("dissemination", 8).phases(0)
        ops = _flatten_ops(phases)
        kinds = [op.kind for op in ops]
        assert kinds == ["send", "wait"] * 3

    def test_gather_broadcast_leaf(self):
        phases = make_schedule("gather-broadcast", 8).phases(7)
        ops = _flatten_ops(phases)
        # Leaf: send to parent, then wait for the release.
        assert [op.kind for op in ops] == ["send", "wait"]

    def test_gather_broadcast_root(self):
        phases = make_schedule("gather-broadcast", 8).phases(0)
        ops = _flatten_ops(phases)
        assert [op.kind for op in ops] == ["wait", "send"]

    def test_adjacent_sends_merge(self):
        phases = (
            Phase(sends=(1,), recvs=()),
            Phase(sends=(2,), recvs=(3,)),
        )
        ops = _flatten_ops(phases)
        assert ops[0] == _Op("send", (1, 2))
        assert ops[1] == _Op("wait", (3,))

    def test_empty_phases_disappear(self):
        phases = (Phase(), Phase(sends=(1,), recvs=(2,)))
        ops = _flatten_ops(phases)
        assert len(ops) == 2

    def test_recv_then_send_order(self):
        phases = (Phase(sends=(1,), recvs=(2,), send_first=False),)
        ops = _flatten_ops(phases)
        assert [op.kind for op in ops] == ["wait", "send"]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    rank_frac=st.floats(min_value=0.0, max_value=0.999),
    algo=st.sampled_from(["dissemination", "pairwise-exchange", "gather-broadcast"]),
)
def test_ops_preserve_all_peers(n, rank_frac, algo):
    """Flattening loses no sends/recvs and never merges waits."""
    rank = int(rank_frac * n)
    phases = make_schedule(algo, n).phases(rank)
    ops = _flatten_ops(phases)
    sends = [p for op in ops if op.kind == "send" for p in op.peers]
    waits = [p for op in ops if op.kind == "wait" for p in op.peers]
    assert sorted(sends) == sorted(d for ph in phases for d in ph.sends)
    assert sorted(waits) == sorted(s for ph in phases for s in ph.recvs)
    # No two adjacent sends (they must have merged).
    for a, b in zip(ops, ops[1:]):
        assert not (a.kind == "send" and b.kind == "send")


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=32),
    algo=st.sampled_from(["dissemination", "pairwise-exchange", "gather-broadcast"]),
)
def test_every_send_lands_in_exactly_one_remote_wait(n, algo):
    """The sender's remote_wait_index lookup is well-defined: each

    (sender → receiver) pair appears in exactly one wait op of the
    receiver."""
    schedule = make_schedule(algo, n)
    flat = {rank: _flatten_ops(schedule.phases(rank)) for rank in range(n)}
    for sender in range(n):
        for op in flat[sender]:
            if op.kind != "send":
                continue
            for dst in op.peers:
                hits = [
                    t
                    for t, dst_op in enumerate(flat[dst])
                    if dst_op.kind == "wait" and sender in dst_op.peers
                ]
                assert len(hits) == 1, (algo, n, sender, dst)
