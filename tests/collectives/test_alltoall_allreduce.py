"""End-to-end tests for NIC-based Alltoall (Bruck) and Allreduce."""

import pytest

from repro.collectives import (
    CollectiveFailure,
    NicAllreduceEngine,
    NicAlltoallEngine,
    ProcessGroup,
    nic_allreduce,
    nic_alltoall,
)
from repro.network import FaultInjector, PacketKind
from repro.sim import DeterministicRng
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster


def setup_alltoall(cluster, nodes=None):
    nodes = list(range(len(cluster.nics))) if nodes is None else nodes
    group = ProcessGroup(nodes)
    engines = [
        NicAlltoallEngine(cluster.nics[node], group, rank)
        for rank, node in enumerate(group.node_ids)
    ]
    return group, engines


def setup_allreduce(cluster, nodes=None):
    nodes = list(range(len(cluster.nics))) if nodes is None else nodes
    group = ProcessGroup(nodes)
    engines = [
        NicAllreduceEngine(cluster.nics[node], group, rank)
        for rank, node in enumerate(group.node_ids)
    ]
    return group, engines


class TestAlltoall:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
    def test_every_block_reaches_its_destination(self, n):
        cluster = MyrinetTestCluster(n=n)
        group, engines = setup_alltoall(cluster)
        results = {}

        def prog(node):
            rank = group.rank_of(node)
            blocks = {dst: f"{rank}->{dst}" for dst in range(n)}
            received = yield from nic_alltoall(cluster.ports[node], group, 0, blocks)
            results[rank] = received

        run_all(cluster, [prog(i) for i in range(n)])
        for dst in range(n):
            assert results[dst] == {src: f"{src}->{dst}" for src in range(n)}
        assert all(e.completed == 1 for e in engines)
        assert all(e.states == {} for e in engines)

    def test_log_rounds_not_linear(self):
        """Bruck: N * ceil(log2 N) messages, not N * (N-1)."""
        n = 8
        cluster = MyrinetTestCluster(n=n)
        group, _ = setup_alltoall(cluster)

        def prog(node):
            blocks = {dst: node * 10 + dst for dst in range(n)}
            yield from nic_alltoall(cluster.ports[node], group, 0, blocks)

        run_all(cluster, [prog(i) for i in range(n)])
        assert cluster.tracer.counters["wire.bcast"] == n * 3  # log2(8) rounds

    def test_missing_block_rejected(self):
        cluster = MyrinetTestCluster(n=4)
        group, _ = setup_alltoall(cluster)

        def prog():
            yield from nic_alltoall(cluster.ports[0], group, 0, {0: "a", 1: "b"})

        proc = cluster.sim.process(prog())
        proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
        cluster.sim.run()
        assert isinstance(proc.completion.value, ValueError)

    def test_consecutive_alltoalls(self):
        n = 4
        cluster = MyrinetTestCluster(n=n)
        group, engines = setup_alltoall(cluster)

        def prog(node):
            for seq in range(4):
                blocks = {dst: (node, dst, seq) for dst in range(n)}
                received = yield from nic_alltoall(
                    cluster.ports[node], group, seq, blocks
                )
                assert received == {src: (src, node, seq) for src in range(n)}

        run_all(cluster, [prog(i) for i in range(n)])
        assert all(e.completed == 4 for e in engines)

    def test_loss_recovered(self):
        faults = FaultInjector()
        faults.drop_nth_matching(lambda p: p.kind == PacketKind.BCAST, occurrence=3)
        cluster = MyrinetTestCluster(n=8, faults=faults)
        group, engines = setup_alltoall(cluster)

        def prog(node):
            blocks = {dst: node * 100 + dst for dst in range(8)}
            received = yield from nic_alltoall(cluster.ports[node], group, 0, blocks)
            assert received == {src: src * 100 + node for src in range(8)}

        run_all(cluster, [prog(i) for i in range(8)])
        resends = (
            cluster.tracer.counters.get("alltoall.nack_retransmit", 0)
            + cluster.tracer.counters.get("alltoall.nack_stale_resend", 0)
        )
        assert resends >= 1

    def test_random_loss(self):
        faults = FaultInjector(rng=DeterministicRng(8), drop_probability=0.03)
        cluster = MyrinetTestCluster(n=8, faults=faults)
        group, engines = setup_alltoall(cluster)

        def prog(node):
            for seq in range(5):
                blocks = {dst: (node, dst) for dst in range(8)}
                received = yield from nic_alltoall(
                    cluster.ports[node], group, seq, blocks
                )
                assert len(received) == 8

        run_all(cluster, [prog(i) for i in range(8)])
        assert all(e.completed == 5 for e in engines)


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_sum(self, n):
        cluster = MyrinetTestCluster(n=n)
        group, engines = setup_allreduce(cluster)
        results = []

        def prog(node):
            result = yield from nic_allreduce(
                cluster.ports[node], group, 0, value=node + 1, op="sum"
            )
            results.append(result)

        run_all(cluster, [prog(i) for i in range(n)])
        assert results == [n * (n + 1) // 2] * n

    @pytest.mark.parametrize(
        "op,expected", [("max", 7), ("min", 0), ("prod", 0), ("sum", 28)]
    )
    def test_operators(self, op, expected):
        cluster = MyrinetTestCluster(n=8)
        group, _ = setup_allreduce(cluster)
        results = []

        def prog(node):
            result = yield from nic_allreduce(
                cluster.ports[node], group, 0, value=node, op=op
            )
            results.append(result)

        run_all(cluster, [prog(i) for i in range(8)])
        assert results == [expected] * 8

    def test_unknown_op_fails_engine(self):
        cluster = MyrinetTestCluster(n=2)
        group, _ = setup_allreduce(cluster)

        def prog(node):
            yield from nic_allreduce(cluster.ports[node], group, 0, 1, op="xor")

        procs = [cluster.sim.process(prog(i)) for i in range(2)]
        with pytest.raises(ValueError, match="unknown reduction op"):
            cluster.sim.run()

    def test_op_mismatch_raises_typed_failure_on_every_rank(self):
        """Ranks disagreeing on the operator must not silently reduce
        with whichever op each rank picked: the NIC detects the
        mismatch at merge time and escalates a typed failure."""
        cluster = MyrinetTestCluster(n=2)
        group, engines = setup_allreduce(cluster)
        failures = []

        def prog(node, op):
            try:
                yield from nic_allreduce(cluster.ports[node], group, 0, 1, op=op)
            except CollectiveFailure as exc:
                failures.append(exc)

        run_all(cluster, [prog(0, "sum"), prog(1, "max")])
        assert len(failures) == 2
        assert {exc.node for exc in failures} == {0, 1}
        assert all("op mismatch" in exc.reason for exc in failures)
        assert all(exc.group_id == group.group_id for exc in failures)
        # Failure tears the sequence down like completion does: no
        # dangling state, and the failure counter fired on both NICs.
        assert all(e.states == {} for e in engines)
        assert cluster.tracer.counters["allreduce.failed"] == 2

    def test_op_mismatch_does_not_poison_next_sequence(self):
        """A failed sequence advances done_through; a subsequent
        agreeing collective on the same group must still complete."""
        cluster = MyrinetTestCluster(n=2)
        group, engines = setup_allreduce(cluster)
        results = []

        def prog(node, bad_op):
            try:
                yield from nic_allreduce(
                    cluster.ports[node], group, 0, 1, op=bad_op
                )
            except CollectiveFailure:
                pass
            result = yield from nic_allreduce(
                cluster.ports[node], group, 1, node + 1, op="sum"
            )
            results.append(result)

        run_all(cluster, [prog(0, "sum"), prog(1, "prod")])
        assert results == [3, 3]
        assert all(e.completed == 1 for e in engines)

    def test_matching_ops_unaffected_by_validation(self):
        """The happy path carries the op in the logical header; wire
        bytes (and thus latency) are identical to Allgather's."""
        cluster = MyrinetTestCluster(n=4)
        group, _ = setup_allreduce(cluster)
        done_at = []

        def prog(node):
            result = yield from nic_allreduce(
                cluster.ports[node], group, 0, value=node, op="max"
            )
            assert result == 3
            done_at.append(cluster.sim.now)

        run_all(cluster, [prog(i) for i in range(4)])
        assert cluster.tracer.counters.get("allreduce.failed", 0) == 0

    def test_non_power_of_two_no_double_count(self):
        """The wrap-around trap: N=5 dissemination partial-sums would
        double-count; rank-keyed gather-combine must not."""
        cluster = MyrinetTestCluster(n=5)
        group, _ = setup_allreduce(cluster)
        results = []

        def prog(node):
            result = yield from nic_allreduce(
                cluster.ports[node], group, 0, value=1, op="sum"
            )
            results.append(result)

        run_all(cluster, [prog(i) for i in range(5)])
        assert results == [5] * 5

    def test_loss_recovered(self):
        faults = FaultInjector(rng=DeterministicRng(2), drop_probability=0.04)
        cluster = MyrinetTestCluster(n=8, faults=faults)
        group, engines = setup_allreduce(cluster)

        def prog(node):
            for seq in range(5):
                result = yield from nic_allreduce(
                    cluster.ports[node], group, seq, value=node, op="sum"
                )
                assert result == 28

        run_all(cluster, [prog(i) for i in range(8)])
        assert all(e.completed == 5 for e in engines)
