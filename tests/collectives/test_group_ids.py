"""Regression tests for per-cluster group-id allocation.

Group ids used to come from one process-global ``itertools.count``, so
the ids a cluster build handed out depended on how many groups *any*
earlier test or sweep in the same interpreter had created — id-keyed
artifacts (traces, flow labels, audit rows) then differed between a
fresh process and a warm one.
"""

from repro.cluster import build_cluster
from repro.collectives import GroupIdAllocator, ProcessGroup
from repro.mpi import create_communicators


def _context_ids(comms):
    ctx = comms[0]._ctx
    return [g.group_id for g in ctx._groups()]


def test_allocator_counts_and_resets():
    alloc = GroupIdAllocator()
    assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]
    alloc.reset()
    assert alloc.allocate() == 1
    assert GroupIdAllocator(start=10).allocate() == 10


def test_back_to_back_myrinet_builds_hand_out_identical_ids():
    def ids():
        cluster = build_cluster("lanai_xp_xeon2400", 4)
        return _context_ids(create_communicators(cluster))

    assert ids() == ids()


def test_back_to_back_quadrics_builds_hand_out_identical_ids():
    def ids():
        cluster = build_cluster("elan3_piii700", 4)
        comms = create_communicators(cluster)
        return [comms[0]._group.group_id]

    assert ids() == ids()


def test_cluster_ids_unaffected_by_stray_group_construction():
    cluster_a = build_cluster("lanai_xp_xeon2400", 4)
    ids_a = _context_ids(create_communicators(cluster_a))
    # A bare group (no cluster context) draws from the fallback
    # allocator and must not shift any cluster's numbering.
    ProcessGroup([0, 1, 2, 3])
    cluster_b = build_cluster("lanai_xp_xeon2400", 4)
    ids_b = _context_ids(create_communicators(cluster_b))
    assert ids_a == ids_b


def test_two_jobs_on_one_cluster_get_distinct_ids():
    cluster = build_cluster("lanai_xp_xeon2400", 8)
    first = _context_ids(create_communicators(cluster, nodes=list(range(0, 5))))
    second = _context_ids(create_communicators(cluster, nodes=list(range(3, 8))))
    assert not set(first) & set(second)
