"""Fault-injection tests: receiver-driven NACK retransmission (§6.3)."""


from repro.collectives import (
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    nic_barrier,
)
from repro.network import FaultInjector, PacketKind
from repro.sim import DeterministicRng
from tests.collectives.conftest import install_engines, make_group, run_all
from tests.myrinet.conftest import MyrinetTestCluster


def lossy_cluster(n=8, drop_probability=0.0, seed=1):
    faults = FaultInjector(
        rng=DeterministicRng(seed, "faults") if drop_probability else None,
        drop_probability=drop_probability,
    )
    cluster = MyrinetTestCluster(n=n, faults=faults)
    cluster.faults = faults
    return cluster


def run_barriers(cluster, group, iterations=1, until=None):
    def prog(node):
        for seq in range(iterations):
            yield from nic_barrier(cluster.ports[node], group, seq)

    run_all(cluster, [prog(node) for node in group.node_ids], until=until)


class TestNackRecovery:
    def test_single_lost_barrier_message_recovered(self):
        cluster = lossy_cluster()
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER and p.dst == 3, occurrence=1
        )
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group)
        counters = cluster.tracer.counters
        assert counters["coll.nack_sent"] >= 1
        assert counters["coll.nack_retransmit"] >= 1
        assert counters["coll.barrier_complete"] == 8

    def test_lost_first_phase_message(self):
        cluster = lossy_cluster()
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER, occurrence=1
        )
        group = make_group(cluster, "pairwise-exchange")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8

    def test_multiple_losses_same_barrier(self):
        cluster = lossy_cluster()
        for occ in (1, 2, 3):
            cluster.faults.drop_nth_matching(
                lambda p: p.kind == PacketKind.BARRIER, occurrence=occ
            )
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8

    def test_lost_nack_itself_recovered_by_rearmed_timer(self):
        cluster = lossy_cluster()
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER, occurrence=1
        )
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.NACK, occurrence=1
        )
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8
        assert cluster.tracer.counters["coll.nack_sent"] >= 2

    def test_lost_retransmission_retried(self):
        cluster = lossy_cluster()
        # Drop the original AND the first retransmission.
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER and p.dst == 2, occurrence=1
        )
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER and p.dst == 2, occurrence=2
        )
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8

    def test_random_loss_many_iterations(self):
        """2% random loss: every barrier still completes."""
        cluster = lossy_cluster(drop_probability=0.02, seed=7)
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group, iterations=20)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8 * 20
        assert cluster.faults.dropped > 0

    def test_clean_run_sends_no_nacks(self):
        cluster = lossy_cluster()
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicCollectiveBarrierEngine)
        run_barriers(cluster, group, iterations=5)
        assert cluster.tracer.counters.get("coll.nack_sent", 0) == 0


class TestDirectSchemeReliability:
    def test_ack_timeout_recovers_direct_barrier(self):
        """The direct scheme leans on GM's sender-side retransmission."""
        cluster = lossy_cluster()
        cluster.faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BARRIER, occurrence=2
        )
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicDirectBarrierEngine)
        run_barriers(cluster, group)
        counters = cluster.tracer.counters
        assert counters["coll.barrier_complete"] == 8
        assert counters["gm.retransmit"] >= 1

    def test_random_loss_direct(self):
        cluster = lossy_cluster(drop_probability=0.02, seed=11)
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, NicDirectBarrierEngine)
        run_barriers(cluster, group, iterations=10)
        assert cluster.tracer.counters["coll.barrier_complete"] == 8 * 10
