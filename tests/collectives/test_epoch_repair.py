"""Epoch-based group repair: shrink semantics and the full recovery arc.

The acceptance campaign for the self-healing path: kill one rank
mid-campaign at N=16, let the NIC failure detector convict it, repair
the communicator onto the survivor epoch, and require a barrier AND an
allreduce to complete there with correct results — bit-identical across
tie-break permutations (SL101) and with a clean quiescence audit on the
post-repair epoch (SL102–SL107).
"""

from __future__ import annotations

import warnings

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.collectives import BarrierFailure, Revoked
from repro.collectives.failures import ScheduleVerificationError, classify_reason
from repro.collectives.group import ProcessGroup
from repro.mpi import create_communicators, repair_quadrics
from repro.network.faults import FaultInjector
from repro.sim import DeterministicRng, Simulator
from repro.tools.simlint import check_quiescent
from repro.tools.simlint.perturb import TieBreakSimulator

_POLL_US = 5.0


class TestShrink:
    def test_survivor_order_preserved(self):
        group = ProcessGroup([4, 9, 2, 7], algorithm="dissemination")
        shrunk = group.shrink([9])
        assert shrunk.node_ids == (4, 2, 7)
        assert [shrunk.rank_of(n) for n in (4, 2, 7)] == [0, 1, 2]

    def test_epoch_and_lineage(self):
        group = ProcessGroup([0, 1, 2, 3])
        shrunk = group.shrink([1])
        assert group.epoch == 0
        assert shrunk.epoch == 1
        assert shrunk.parent_group_id == group.group_id
        assert shrunk.group_id != group.group_id
        again = shrunk.shrink([2])
        assert again.epoch == 2
        assert again.parent_group_id == shrunk.group_id

    def test_membership_digest_distinguishes_epochs(self):
        group = ProcessGroup([0, 1, 2, 3])
        shrunk = group.shrink([3])
        same_nodes = ProcessGroup([0, 1, 2])
        assert group.membership_digest != shrunk.membership_digest
        # Same node set at a different epoch is a different digest too:
        # a revived {0,1,2} must not reuse the survivor schedule cache.
        assert shrunk.membership_digest != same_nodes.membership_digest

    def test_requested_algorithm_carries_over(self):
        group = ProcessGroup([0, 1, 2, 3], algorithm="pairwise-exchange")
        assert group.shrink([0]).requested_algorithm == "pairwise-exchange"
        auto = ProcessGroup([0, 1, 2, 3], algorithm="auto")
        assert auto.shrink([0]).requested_algorithm == "auto"

    def test_unknown_dead_node_rejected(self):
        group = ProcessGroup([0, 1, 2])
        with pytest.raises(ValueError, match="not in group"):
            group.shrink([7])

    def test_zero_survivors_rejected(self):
        group = ProcessGroup([0, 1])
        with pytest.raises(ValueError, match="zero survivors"):
            group.shrink([0, 1])

    def test_repair_verifies_recompiled_schedules(self):
        """repair() = shrink + SL201–SL208 over the survivor compile;
        the survivor schedule is keyed on the membership digest, not the
        pristine range(N) grid."""
        group = ProcessGroup(list(range(8)), algorithm="dissemination")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            shrunk = group.repair([5], collectives=("barrier", "allreduce"))
        assert shrunk.epoch == 1
        schedule = shrunk.collective_schedule("barrier")
        assert schedule.size == 7
        assert schedule.members == shrunk.node_ids

    def test_verification_error_is_typed(self):
        err = ScheduleVerificationError("3 findings", findings=["a", "b", "c"])
        assert err.findings == ["a", "b", "c"]


def _run_repair_campaign(network: str, sim=None):
    """One kill -> detect -> shrink -> resume campaign at N=16.

    Returns a comparable tuple — per-rank outcome strings, the
    detection/repair timestamps, the final sim time, and the quiescence
    findings — that must be bit-identical across tie-break permutations
    (SL101) and must show a clean audit (SL102–SL107).
    """
    n = 16
    victim = 5
    kill_at = 100.0
    if sim is None:
        sim = Simulator()
    sim.track_processes()
    faults = FaultInjector()
    profile = get_profile(
        "lanai_xp_xeon2400" if network == "myrinet" else "elan3_piii700"
    )
    cluster = build_cluster(profile, n, faults=faults, sim=sim)
    rng = DeterministicRng(23, f"epoch-repair/{network}")
    for node in range(n):
        cluster.nics[node].enable_failure_detector(
            range(n), rng=rng, period_us=50.0, timeout_us=150.0,
            horizon_us=3000.0)
    faults.kill_node(victim, at_us=kill_at)
    comm_box = {"comms": create_communicators(cluster)}
    state = {"phase": 0, "detected": 0.0, "repaired": 0.0}

    def controller():
        yield kill_at
        cluster.nics[victim].crashed = True
        survivors = [node for node in range(n) if node != victim]
        while not all(
            cluster.nics[s].membership.is_dead(victim) for s in survivors
        ):
            yield _POLL_US
        state["detected"] = sim.now
        if network == "myrinet":
            comm_box["comms"][0]._ctx.repair([victim])
        else:
            comm_box["comms"] = repair_quadrics(
                cluster, comm_box["comms"], [victim])
        state["phase"] = 1
        state["repaired"] = sim.now

    outcomes = {node: [] for node in range(n)}

    def program(node):
        comm = {c.node: c for c in comm_box["comms"]}[node]
        while state["phase"] == 0:
            try:
                yield from comm.barrier()
                outcomes[node].append("ok:barrier")
            except Revoked:
                outcomes[node].append("revoked")
            except BarrierFailure as failure:
                outcomes[node].append(f"fail:{classify_reason(failure.reason)}")
        if cluster.nics[node].crashed:
            outcomes[node].append("dead")
            return
        comm = {c.node: c for c in comm_box["comms"]}[node]
        yield from comm.barrier()
        outcomes[node].append("ok:barrier")
        if network == "myrinet":
            ctx = comm._ctx
            expected = sum(peer + 1 for peer in ctx.nodes)
            result = yield from comm.allreduce(comm.node + 1)
            outcomes[node].append(
                "ok:allreduce" if result == expected else f"wrong:{result}")
        else:
            request = yield from comm.ibarrier()
            while not (yield from request.test()):
                pass
            outcomes[node].append("ok:ibarrier")

    procs = [sim.process(program(node), name=f"rank@{node}")
             for node in range(n)]
    procs.append(sim.process(controller(), name="controller"))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        sim.run()
    for proc in procs:
        assert proc.completion.processed, f"hang: {proc.name}"
    report = check_quiescent(cluster, must_complete=[p.name for p in procs])
    return (
        {node: tuple(o) for node, o in outcomes.items()},
        state["detected"],
        state["repaired"],
        sim.now,
        tuple(f.render() for f in report.findings),
    )


@pytest.mark.parametrize("network", ["myrinet", "quadrics"])
class TestRepairCampaign:
    def test_kill_detect_shrink_resume(self, network):
        outcomes, detected, repaired, end, findings = _run_repair_campaign(
            network)
        n, victim, kill_at = 16, 5, 100.0
        assert detected > kill_at
        assert repaired >= detected
        second_op = "ok:allreduce" if network == "myrinet" else "ok:ibarrier"
        for node in range(n):
            if node == victim:
                assert outcomes[node][-1] == "dead"
                continue
            # Every survivor finishes the campaign on the survivor
            # epoch: a barrier then a data/non-blocking collective,
            # both correct.
            assert outcomes[node][-2:] == ("ok:barrier", second_op), (
                node, outcomes[node])
            # No survivor saw an untyped or wrong result anywhere.
            assert not any(o.startswith("wrong") for o in outcomes[node])
        # SL102-SL107: the post-repair epoch drains clean — no leaked
        # packets, timers, engine states, or undrained queues.
        assert findings == ()

    def test_tie_break_bit_identity(self, network):
        """SL101 over the full recovery arc: 20 seeded tie-break
        permutations of same-timestamp event order must not change one
        bit of the observable outcome."""
        baseline = _run_repair_campaign(network)
        for perm in range(20):
            replay = _run_repair_campaign(
                network,
                sim=TieBreakSimulator(
                    DeterministicRng(perm, f"epoch-repair/tiebreak/{network}")),
            )
            assert replay == baseline, f"permutation {perm} diverged"
