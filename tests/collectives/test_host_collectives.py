"""Tests for the host-based extension-collective baselines."""

import pytest

from repro.collectives import ProcessGroup
from repro.collectives.host_collectives import (
    host_allgather,
    host_alltoall,
    host_broadcast,
)
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_host_broadcast(n):
    cluster = MyrinetTestCluster(n=n)
    group = ProcessGroup(list(range(n)))
    got = {}

    def prog(node):
        value = yield from host_broadcast(
            cluster.ports[node], group, 0, 64,
            value="blob" if node == 0 else None,
        )
        got[node] = value

    run_all(cluster, [prog(i) for i in range(n)])
    assert got == {i: "blob" for i in range(n)}


def test_host_broadcast_consecutive():
    cluster = MyrinetTestCluster(n=4)
    group = ProcessGroup([0, 1, 2, 3])
    got = {i: [] for i in range(4)}

    def prog(node):
        for seq in range(3):
            value = yield from host_broadcast(
                cluster.ports[node], group, seq, 32,
                value=seq if node == 0 else None,
            )
            got[node].append(value)

    run_all(cluster, [prog(i) for i in range(4)])
    assert all(v == [0, 1, 2] for v in got.values())


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_host_allgather(n):
    cluster = MyrinetTestCluster(n=n)
    group = ProcessGroup(list(range(n)))
    got = {}

    def prog(node):
        known = yield from host_allgather(cluster.ports[node], group, 0, node * 3)
        got[node] = known

    run_all(cluster, [prog(i) for i in range(n)])
    expected = {r: r * 3 for r in range(n)}
    assert all(k == expected for k in got.values())


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_host_alltoall(n):
    cluster = MyrinetTestCluster(n=n)
    group = ProcessGroup(list(range(n)))
    got = {}

    def prog(node):
        blocks = {dst: (node, dst) for dst in range(n)}
        received = yield from host_alltoall(cluster.ports[node], group, 0, blocks)
        got[node] = received

    run_all(cluster, [prog(i) for i in range(n)])
    for dst in range(n):
        assert got[dst] == {src: (src, dst) for src in range(n)}


def test_host_alltoall_validates_blocks():
    cluster = MyrinetTestCluster(n=4)
    group = ProcessGroup([0, 1, 2, 3])

    def prog():
        yield from host_alltoall(cluster.ports[0], group, 0, {0: "x"})

    proc = cluster.sim.process(prog())
    proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
    cluster.sim.run()
    assert isinstance(proc.completion.value, ValueError)


def test_nic_collectives_beat_host_baselines():
    """The paper's offload argument extends to every §9 collective."""
    from repro.collectives import (
        NicAllgatherEngine,
        NicBroadcastEngine,
        nic_allgather,
        nic_broadcast_recv,
        nic_broadcast_root,
    )

    n = 8

    # Host broadcast.
    cluster = MyrinetTestCluster(n=n)
    group = ProcessGroup(list(range(n)))

    def host_bc(node):
        for seq in range(10):
            yield from host_broadcast(
                cluster.ports[node], group, seq, 64,
                value="v" if node == 0 else None,
            )

    run_all(cluster, [host_bc(i) for i in range(n)])
    host_bc_time = cluster.sim.now

    # NIC broadcast.
    cluster2 = MyrinetTestCluster(n=n)
    group2 = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicBroadcastEngine(cluster2.nics[rank], group2, rank)

    def nic_bc_root():
        for seq in range(10):
            yield from nic_broadcast_root(cluster2.ports[0], group2, seq, 64, "v")

    def nic_bc_leaf(node):
        for seq in range(10):
            yield from nic_broadcast_recv(cluster2.ports[node], group2, seq)

    run_all(cluster2, [nic_bc_root()] + [nic_bc_leaf(i) for i in range(1, n)])
    assert cluster2.sim.now < host_bc_time

    # Host allgather vs NIC allgather.
    cluster3 = MyrinetTestCluster(n=n)
    group3 = ProcessGroup(list(range(n)))

    def host_ag(node):
        for seq in range(10):
            yield from host_allgather(cluster3.ports[node], group3, seq, node)

    run_all(cluster3, [host_ag(i) for i in range(n)])

    cluster4 = MyrinetTestCluster(n=n)
    group4 = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicAllgatherEngine(cluster4.nics[rank], group4, rank)

    def nic_ag(node):
        for seq in range(10):
            yield from nic_allgather(cluster4.ports[node], group4, seq, node)

    run_all(cluster4, [nic_ag(i) for i in range(n)])
    assert cluster4.sim.now < cluster3.sim.now
