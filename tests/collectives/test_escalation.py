"""Retry-exhaustion escalation: typed failures, no hangs, no leaks.

A permanently dead link (or a crashed NIC) must surface a
:class:`BarrierFailure` with a typed reason once the (shrunk) retry
budget is spent — within a bounded sim time, with every rank's program
finishing, and with the quiescence audit finding zero leaked packets,
records, engine states or timers afterwards.
"""

from dataclasses import replace

from repro.collectives import (
    BarrierFailure,
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    nic_barrier,
)
from repro.network import FaultInjector
from repro.tools.simlint import check_quiescent
from tests.collectives.conftest import install_engines, make_group, run_all
from tests.myrinet.conftest import TEST_GM, MyrinetTestCluster

# Budgets shrunk so a dead peer exhausts them within a few hundred
# microseconds instead of the production-scale timeout horizon.
FAST_EXHAUST = replace(
    TEST_GM,
    ack_timeout_us=20.0,
    max_retries=2,
    nack_timeout_us=30.0,
    nack_max_rounds=3,
)


class _Profile:
    name = "test"


def escalation_cluster(faults, n=4, gm=FAST_EXHAUST):
    cluster = MyrinetTestCluster(n=n, gm=gm, faults=faults)
    cluster.faults = faults
    cluster.profile = _Profile()
    cluster.sim.track_processes()
    return cluster


def run_barriers_catching(cluster, group, iterations=1):
    """Per-rank programs that record one outcome per seq and never hang."""
    outcomes = {node: [] for node in group.node_ids}

    def prog(node):
        for seq in range(iterations):
            try:
                yield from nic_barrier(cluster.ports[node], group, seq)
            except BarrierFailure as failure:
                assert failure.seq == seq
                assert failure.node == node
                outcomes[node].append(failure.reason)
            else:
                outcomes[node].append("ok")

    run_all(cluster, [prog(node) for node in group.node_ids])
    return outcomes


DIRECT_REASONS = {"peer-declared-dead", "barrier-deadline-exceeded"}


def test_direct_dead_link_escalates_without_hang_or_leak():
    faults = FaultInjector()
    hole = faults.drop_all_matching(
        lambda p: p.src in (2, 3) and p.dst in (2, 3), label="dead:2<->3"
    )
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicDirectBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    reasons = {r for record in outcomes.values() for r in record if r != "ok"}
    assert reasons and reasons <= DIRECT_REASONS
    assert hole.dropped > 0
    # Bounded escalation: the whole run ends within a few deadline
    # horizons, not at some production-scale timeout.
    assert cluster.sim.now < 5 * FAST_EXHAUST.direct_barrier_deadline_us
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    for nic in cluster.nics:
        assert nic.send_records == {}
        assert nic.packet_pool.in_use == 0


def test_collective_dead_link_exhausts_nack_budget():
    faults = FaultInjector()
    faults.drop_all_matching(
        lambda p: p.src in (2, 3) and p.dst in (2, 3), label="dead:2<->3"
    )
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    reasons = {r for record in outcomes.values() for r in record if r != "ok"}
    assert reasons == {"nack-retry-budget-exhausted"}
    assert cluster.tracer.counters["coll.barrier_failed"] >= 1
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    for nic in cluster.nics:
        for engine in nic.engines.values():
            assert engine.states == {}


def test_crashed_nic_fails_in_flight_barrier_and_rejoins():
    # NIC 1 crashes mid-run and restarts: its in-flight barrier fails
    # with a typed reason on every rank, the volatile state is wiped,
    # and a barrier entered after the restart completes everywhere.
    faults = FaultInjector()
    crash_at, restart_delay = 5.0, 60.0
    faults.crash_window(1, crash_at, crash_at + restart_delay)
    # Extra NACK rounds so the survivors' backed-off budget spans the
    # restart skew: recovery, not a failure cascade, after the rejoin.
    cluster = escalation_cluster(
        faults, gm=replace(FAST_EXHAUST, nack_max_rounds=6)
    )
    cluster.nics[1].schedule_crash(crash_at, restart_delay)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group, iterations=4)

    flat = [r for record in outcomes.values() for r in record]
    assert any(r != "ok" for r in flat), "the crash window hit no barrier"
    allowed = {"ok", "nack-retry-budget-exhausted", "nic-restart"}
    assert set(flat) <= allowed
    assert "nic-restart" in outcomes[1]
    # The final barrier starts well after the restart: full recovery.
    assert [record[-1] for record in outcomes.values()] == ["ok"] * 4
    assert cluster.tracer.counters["gm.nic_crash"] == 1
    assert cluster.tracer.counters["gm.nic_restart"] == 1
    report = check_quiescent(cluster)
    assert report.ok, report.render()


def test_healed_blackhole_recovers_with_retransmissions():
    # A link flap long enough to force backed-off retries but shorter
    # than the budget: the barrier completes once the hole heals.
    faults = FaultInjector()
    hole = faults.flap_link(0, 1, 2.0, 45.0)
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    assert all(record == ["ok"] for record in outcomes.values())
    assert hole.dropped > 0
    assert cluster.tracer.counters["coll.nack_retransmit"] >= 1
    assert check_quiescent(cluster).ok


def test_heal_mid_nack_recovery_delivers_exactly_once():
    """Regression for Blackhole.heal() mid-NACK-recovery semantics:
    healing must only affect packets injected from the heal time on.
    Drops stay dropped, the post-heal NACK round's retransmission gets
    through, and the extra copies a healed-plus-duplicating link
    produces are suppressed by the receive engine (rx_duplicate), never
    re-applied — the allreduce sum is exact."""
    from repro.collectives import NicAllreduceEngine, nic_allreduce
    from repro.network.packet import PacketKind
    from repro.sim import DeterministicRng

    # Duplicate nearly every *delivered* packet so the healed link's
    # late retransmissions provably arrive more than once.
    faults = FaultInjector(rng=DeterministicRng(5), duplicate_probability=0.99)
    hole = faults.drop_all_matching(
        lambda p: p.src == 0 and p.dst == 1 and p.kind == PacketKind.BCAST,
        label="dead:0->1:data",
    )
    # The data engine's NACK rounds are bounded by max_retries; leave
    # enough budget that the heal (one to two rounds in) wins the race.
    cluster = escalation_cluster(
        faults, gm=replace(FAST_EXHAUST, nack_timeout_us=40.0, max_retries=8)
    )
    from repro.collectives import ProcessGroup

    group = ProcessGroup(list(range(4)))
    for rank, node in enumerate(group.node_ids):
        NicAllreduceEngine(cluster.nics[node], group, rank)
    results = {}

    def prog(node):
        result = yield from nic_allreduce(
            cluster.ports[node], group, 0, value=node + 1, op="sum"
        )
        results[node] = result

    def retransmissions():
        # The sender may have completed locally and archived the
        # message by the time the NACK lands — both branches are
        # NACK-driven retransmissions.
        counters = cluster.tracer.counters
        return (
            counters["allreduce.nack_retransmit"]
            + counters["allreduce.nack_stale_resend"]
        )

    def healer():
        # Heal strictly mid-recovery: after the original send AND at
        # least one NACK-driven retransmission have been swallowed.
        for _ in range(200):
            if hole.dropped >= 2 and retransmissions() >= 1:
                break
            yield 5.0
        hole.heal(cluster.sim.now)

    run_all(cluster, [prog(node) for node in range(4)] + [healer()])

    assert results == {node: 10 for node in range(4)}
    assert hole.healed and hole.healed_at is not None
    assert hole.dropped >= 2, "heal fired before any retransmit was dropped"
    assert retransmissions() >= 2
    assert cluster.tracer.counters["allreduce.rx_duplicate"] >= 1
    report = check_quiescent(cluster)
    assert report.ok, report.render()
