"""Retry-exhaustion escalation: typed failures, no hangs, no leaks.

A permanently dead link (or a crashed NIC) must surface a
:class:`BarrierFailure` with a typed reason once the (shrunk) retry
budget is spent — within a bounded sim time, with every rank's program
finishing, and with the quiescence audit finding zero leaked packets,
records, engine states or timers afterwards.
"""

from dataclasses import replace

from repro.collectives import (
    BarrierFailure,
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    nic_barrier,
)
from repro.network import FaultInjector
from repro.tools.simlint import check_quiescent
from tests.collectives.conftest import install_engines, make_group, run_all
from tests.myrinet.conftest import TEST_GM, MyrinetTestCluster

# Budgets shrunk so a dead peer exhausts them within a few hundred
# microseconds instead of the production-scale timeout horizon.
FAST_EXHAUST = replace(
    TEST_GM,
    ack_timeout_us=20.0,
    max_retries=2,
    nack_timeout_us=30.0,
    nack_max_rounds=3,
)


class _Profile:
    name = "test"


def escalation_cluster(faults, n=4, gm=FAST_EXHAUST):
    cluster = MyrinetTestCluster(n=n, gm=gm, faults=faults)
    cluster.faults = faults
    cluster.profile = _Profile()
    cluster.sim.track_processes()
    return cluster


def run_barriers_catching(cluster, group, iterations=1):
    """Per-rank programs that record one outcome per seq and never hang."""
    outcomes = {node: [] for node in group.node_ids}

    def prog(node):
        for seq in range(iterations):
            try:
                yield from nic_barrier(cluster.ports[node], group, seq)
            except BarrierFailure as failure:
                assert failure.seq == seq
                assert failure.node == node
                outcomes[node].append(failure.reason)
            else:
                outcomes[node].append("ok")

    run_all(cluster, [prog(node) for node in group.node_ids])
    return outcomes


DIRECT_REASONS = {"peer-declared-dead", "barrier-deadline-exceeded"}


def test_direct_dead_link_escalates_without_hang_or_leak():
    faults = FaultInjector()
    hole = faults.drop_all_matching(
        lambda p: p.src in (2, 3) and p.dst in (2, 3), label="dead:2<->3"
    )
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicDirectBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    reasons = {r for record in outcomes.values() for r in record if r != "ok"}
    assert reasons and reasons <= DIRECT_REASONS
    assert hole.dropped > 0
    # Bounded escalation: the whole run ends within a few deadline
    # horizons, not at some production-scale timeout.
    assert cluster.sim.now < 5 * FAST_EXHAUST.direct_barrier_deadline_us
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    for nic in cluster.nics:
        assert nic.send_records == {}
        assert nic.packet_pool.in_use == 0


def test_collective_dead_link_exhausts_nack_budget():
    faults = FaultInjector()
    faults.drop_all_matching(
        lambda p: p.src in (2, 3) and p.dst in (2, 3), label="dead:2<->3"
    )
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    reasons = {r for record in outcomes.values() for r in record if r != "ok"}
    assert reasons == {"nack-retry-budget-exhausted"}
    assert cluster.tracer.counters["coll.barrier_failed"] >= 1
    report = check_quiescent(cluster)
    assert report.ok, report.render()
    for nic in cluster.nics:
        for engine in nic.engines.values():
            assert engine.states == {}


def test_crashed_nic_fails_in_flight_barrier_and_rejoins():
    # NIC 1 crashes mid-run and restarts: its in-flight barrier fails
    # with a typed reason on every rank, the volatile state is wiped,
    # and a barrier entered after the restart completes everywhere.
    faults = FaultInjector()
    crash_at, restart_delay = 5.0, 60.0
    faults.crash_window(1, crash_at, crash_at + restart_delay)
    # Extra NACK rounds so the survivors' backed-off budget spans the
    # restart skew: recovery, not a failure cascade, after the rejoin.
    cluster = escalation_cluster(
        faults, gm=replace(FAST_EXHAUST, nack_max_rounds=6)
    )
    cluster.nics[1].schedule_crash(crash_at, restart_delay)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group, iterations=4)

    flat = [r for record in outcomes.values() for r in record]
    assert any(r != "ok" for r in flat), "the crash window hit no barrier"
    allowed = {"ok", "nack-retry-budget-exhausted", "nic-restart"}
    assert set(flat) <= allowed
    assert "nic-restart" in outcomes[1]
    # The final barrier starts well after the restart: full recovery.
    assert [record[-1] for record in outcomes.values()] == ["ok"] * 4
    assert cluster.tracer.counters["gm.nic_crash"] == 1
    assert cluster.tracer.counters["gm.nic_restart"] == 1
    report = check_quiescent(cluster)
    assert report.ok, report.render()


def test_healed_blackhole_recovers_with_retransmissions():
    # A link flap long enough to force backed-off retries but shorter
    # than the budget: the barrier completes once the hole heals.
    faults = FaultInjector()
    hole = faults.flap_link(0, 1, 2.0, 45.0)
    cluster = escalation_cluster(faults)
    group = make_group(cluster)
    install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine)

    outcomes = run_barriers_catching(cluster, group)

    assert all(record == ["ok"] for record in outcomes.values())
    assert hole.dropped > 0
    assert cluster.tracer.counters["coll.nack_retransmit"] >= 1
    assert check_quiescent(cluster).ok
