"""Fixtures for end-to-end barrier tests on the test clusters."""

import pytest

from tests.myrinet.conftest import MyrinetTestCluster
from tests.quadrics.conftest import QuadricsTestCluster

from repro.collectives import (
    NicCollectiveBarrierEngine,
    ProcessGroup,
)


def make_group(cluster, algorithm="dissemination", nodes=None):
    nodes = list(range(len(cluster.nics))) if nodes is None else nodes
    return ProcessGroup(nodes, algorithm=algorithm)


def install_engines(cluster, group, engine_cls=NicCollectiveBarrierEngine):
    engines = []
    for rank, node in enumerate(group.node_ids):
        engines.append(engine_cls(cluster.nics[node], group, rank))
    return engines


@pytest.fixture
def mcluster():
    return MyrinetTestCluster(n=8)


@pytest.fixture
def qcluster8():
    return QuadricsTestCluster(n=8)


def run_all(cluster, programs, until=None):
    procs = [cluster.sim.process(p) for p in programs]
    cluster.sim.run(until=until)
    for proc in procs:
        assert proc.completion.processed, f"{proc.name} never finished"
    return procs
