"""End-to-end tests for the NIC-based broadcast (§9 extension)."""

import pytest

from repro.collectives import (
    NicBroadcastEngine,
    ProcessGroup,
    nic_broadcast_recv,
    nic_broadcast_root,
)
from repro.collectives.broadcast import binomial_children, binomial_parent
from repro.network import FaultInjector, PacketKind
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster


class TestBinomialTree:
    def test_root_children(self):
        assert binomial_children(0, 8) == [1, 2, 4]
        assert binomial_children(0, 5) == [1, 2, 4]

    def test_interior_children(self):
        assert binomial_children(1, 8) == [3, 5]
        assert binomial_children(2, 8) == [6]

    def test_leaf_children(self):
        assert binomial_children(7, 8) == []

    def test_parent(self):
        assert binomial_parent(0, 8) is None
        assert binomial_parent(1, 8) == 0
        assert binomial_parent(3, 8) == 1
        assert binomial_parent(6, 8) == 2
        assert binomial_parent(7, 8) == 3

    @pytest.mark.parametrize("size", range(2, 33))
    def test_tree_is_consistent(self, size):
        for rank in range(1, size):
            parent = binomial_parent(rank, size)
            assert rank in binomial_children(parent, size)
        reached = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for child in binomial_children(node, size):
                assert child not in reached
                reached.add(child)
                frontier.append(child)
        assert reached == set(range(size))


def setup(cluster, n=8, nodes=None):
    nodes = list(range(n)) if nodes is None else nodes
    group = ProcessGroup(nodes)
    engines = [
        NicBroadcastEngine(cluster.nics[node], group, rank)
        for rank, node in enumerate(group.node_ids)
    ]
    return group, engines


class TestBroadcast:
    def test_payload_reaches_everyone(self, mcluster=None):
        cluster = MyrinetTestCluster(n=8)
        group, engines = setup(cluster)
        got = {}

        def root():
            done = yield from nic_broadcast_root(
                cluster.ports[0], group, 0, size_bytes=256, payload="blob"
            )
            got[0] = done.payload

        def leaf(node):
            done = yield from nic_broadcast_recv(cluster.ports[node], group, 0)
            got[node] = done.payload

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 8)])
        assert got == {i: "blob" for i in range(8)}
        assert all(e.broadcasts_completed == 1 for e in engines)
        assert all(e.states == {} for e in engines)

    def test_message_count_is_n_minus_one(self):
        cluster = MyrinetTestCluster(n=8)
        group, _ = setup(cluster)

        def root():
            yield from nic_broadcast_root(cluster.ports[0], group, 0, 64, "x")

        def leaf(node):
            yield from nic_broadcast_recv(cluster.ports[node], group, 0)

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 8)])
        assert cluster.tracer.counters["wire.bcast"] == 7
        assert cluster.tracer.counters.get("wire.ack", 0) == 0

    def test_consecutive_broadcasts(self):
        cluster = MyrinetTestCluster(n=4)
        group, engines = setup(cluster, n=4)
        got = {i: [] for i in range(4)}

        def root():
            for seq in range(5):
                done = yield from nic_broadcast_root(
                    cluster.ports[0], group, seq, 32, payload=seq * 100
                )
                got[0].append(done.payload)

        def leaf(node):
            for seq in range(5):
                done = yield from nic_broadcast_recv(cluster.ports[node], group, seq)
                got[node].append(done.payload)

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 4)])
        for node in range(4):
            assert got[node] == [0, 100, 200, 300, 400]

    def test_interior_nodes_forward_without_host(self):
        """Only the delivery DMA touches each non-root host."""
        cluster = MyrinetTestCluster(n=8)
        group, _ = setup(cluster)

        def root():
            yield from nic_broadcast_root(cluster.ports[0], group, 0, 128, "x")

        def leaf(node):
            yield from nic_broadcast_recv(cluster.ports[node], group, 0)

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 8)])
        # Node 1 is interior (forwards to 3 and 5): its PCI traffic is
        # one join PIO + one payload DMA + one event DMA — no per-child
        # crossings.
        assert cluster.pcis[1].dma_count == 2

    def test_lost_hop_recovered_by_nack(self):
        faults = FaultInjector()
        faults.drop_nth_matching(
            lambda p: p.kind == PacketKind.BCAST and p.dst == 2, occurrence=1
        )
        cluster = MyrinetTestCluster(n=8, faults=faults)
        group, _ = setup(cluster)
        got = {}

        def root():
            yield from nic_broadcast_root(cluster.ports[0], group, 0, 64, "safe")
            got[0] = True

        def leaf(node):
            done = yield from nic_broadcast_recv(cluster.ports[node], group, 0)
            got[node] = done.payload == "safe"

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 8)])
        assert all(got.values())
        resends = (
            cluster.tracer.counters.get("bcast.nack_retransmit", 0)
            + cluster.tracer.counters.get("bcast.nack_stale_resend", 0)
        )
        assert resends >= 1

    def test_random_loss_many_broadcasts(self):
        from repro.sim import DeterministicRng

        faults = FaultInjector(rng=DeterministicRng(3), drop_probability=0.05)
        cluster = MyrinetTestCluster(n=8, faults=faults)
        group, engines = setup(cluster)

        def root():
            for seq in range(10):
                yield from nic_broadcast_root(cluster.ports[0], group, seq, 64, seq)

        def leaf(node):
            for seq in range(10):
                done = yield from nic_broadcast_recv(cluster.ports[node], group, seq)
                assert done.payload == seq

        run_all(cluster, [root()] + [leaf(i) for i in range(1, 8)])
        assert all(e.broadcasts_completed == 10 for e in engines)

    def test_permuted_group(self):
        cluster = MyrinetTestCluster(n=8)
        nodes = [4, 1, 6, 0, 7, 3, 2, 5]
        group, _ = setup(cluster, nodes=nodes)
        got = {}

        def root():  # rank 0 lives on node 4
            yield from nic_broadcast_root(cluster.ports[4], group, 0, 32, "p")
            got[4] = True

        def leaf(node):
            done = yield from nic_broadcast_recv(cluster.ports[node], group, 0)
            got[node] = done.payload == "p"

        run_all(cluster, [root()] + [leaf(n) for n in nodes if n != 4])
        assert all(got.values()) and len(got) == 8

    def test_wrong_node_rejected(self):
        cluster = MyrinetTestCluster(n=4)
        group = ProcessGroup([0, 1, 2, 3])
        with pytest.raises(ValueError):
            NicBroadcastEngine(cluster.nics[0], group, rank=2)
