"""End-to-end tests: host-based, direct, and collective NIC barriers."""

import pytest

from repro.collectives import (
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    host_barrier,
    nic_barrier,
)
from tests.collectives.conftest import install_engines, make_group, run_all
from tests.myrinet.conftest import MyrinetTestCluster


# ----------------------------------------------------------------------
# Host-based barrier
# ----------------------------------------------------------------------
class TestHostBarrier:
    @pytest.mark.parametrize("algorithm", ["dissemination", "pairwise-exchange", "gather-broadcast"])
    def test_completes(self, mcluster, algorithm):
        group = make_group(mcluster, algorithm)
        done = {}

        def prog(node):
            yield from host_barrier(mcluster.ports[node], group, 0)
            done[node] = mcluster.sim.now

        run_all(mcluster, [prog(i) for i in range(8)])
        assert set(done) == set(range(8))

    def test_no_early_exit(self, mcluster):
        group = make_group(mcluster)
        entries, exits = {}, {}

        def prog(node, delay):
            yield delay
            entries[node] = mcluster.sim.now
            yield from host_barrier(mcluster.ports[node], group, 0)
            exits[node] = mcluster.sim.now

        run_all(mcluster, [prog(i, float(i * 3)) for i in range(8)])
        assert min(exits.values()) >= max(entries.values())

    def test_consecutive_barriers(self, mcluster):
        group = make_group(mcluster)
        counts = {i: 0 for i in range(8)}

        def prog(node):
            for seq in range(5):
                yield from host_barrier(mcluster.ports[node], group, seq)
                counts[node] += 1

        run_all(mcluster, [prog(i) for i in range(8)])
        assert all(c == 5 for c in counts.values())

    @pytest.mark.parametrize("n", [2, 3, 5, 6, 7, 8])
    def test_odd_group_sizes(self, n):
        cluster = MyrinetTestCluster(n=n)
        group = make_group(cluster, "pairwise-exchange")
        done = []

        def prog(node):
            yield from host_barrier(cluster.ports[node], group, 0)
            done.append(node)

        run_all(cluster, [prog(i) for i in range(n)])
        assert sorted(done) == list(range(n))


# ----------------------------------------------------------------------
# NIC-based barriers (both engines)
# ----------------------------------------------------------------------
ENGINES = [NicCollectiveBarrierEngine, NicDirectBarrierEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("algorithm", ["dissemination", "pairwise-exchange"])
class TestNicBarriers:
    def test_completes(self, mcluster, engine_cls, algorithm):
        group = make_group(mcluster, algorithm)
        install_engines(mcluster, group, engine_cls)
        done = {}

        def prog(node):
            ev = yield from nic_barrier(mcluster.ports[node], group, 0)
            done[node] = ev.seq

        run_all(mcluster, [prog(i) for i in range(8)])
        assert all(done[i] == 0 for i in range(8))

    def test_no_early_exit(self, mcluster, engine_cls, algorithm):
        group = make_group(mcluster, algorithm)
        install_engines(mcluster, group, engine_cls)
        entries, exits = {}, {}

        def prog(node, delay):
            yield delay
            entries[node] = mcluster.sim.now
            yield from nic_barrier(mcluster.ports[node], group, 0)
            exits[node] = mcluster.sim.now

        run_all(mcluster, [prog(i, float(i * 5)) for i in range(8)])
        assert min(exits.values()) >= max(entries.values())

    def test_many_consecutive_barriers(self, mcluster, engine_cls, algorithm):
        group = make_group(mcluster, algorithm)
        engines = install_engines(mcluster, group, engine_cls)

        def prog(node):
            for seq in range(10):
                yield from nic_barrier(mcluster.ports[node], group, seq)

        run_all(mcluster, [prog(i) for i in range(8)])
        assert all(e.barriers_completed == 10 for e in engines)
        # State must be pruned after completion (no leak).
        assert all(e.states == {} for e in engines)


class TestSchemeDifferences:
    """The measurable claims of §3/§6: fewer packets, fewer PCI crossings."""

    def _run(self, engine_cls, iterations=5):
        cluster = MyrinetTestCluster(n=8)
        group = make_group(cluster, "dissemination")
        install_engines(cluster, group, engine_cls)

        def prog(node):
            for seq in range(iterations):
                yield from nic_barrier(cluster.ports[node], group, seq)

        run_all(cluster, [prog(i) for i in range(8)])
        return cluster

    def test_collective_scheme_sends_no_acks(self):
        cluster = self._run(NicCollectiveBarrierEngine)
        assert cluster.tracer.counters.get("wire.ack", 0) == 0
        assert cluster.tracer.counters["wire.barrier"] == 8 * 3 * 5

    def test_direct_scheme_acks_every_message(self):
        """ACK-based reliability doubles the packet count (§6.3)."""
        cluster = self._run(NicDirectBarrierEngine)
        barriers = cluster.tracer.counters["wire.barrier"]
        acks = cluster.tracer.counters["wire.ack"]
        assert barriers == 8 * 3 * 5
        assert acks == barriers

    def test_collective_faster_than_direct(self):
        fast = self._run(NicCollectiveBarrierEngine)
        slow = self._run(NicDirectBarrierEngine)
        assert fast.sim.now < slow.sim.now

    def test_host_based_slowest(self):
        nic = self._run(NicCollectiveBarrierEngine)
        cluster = MyrinetTestCluster(n=8)
        group = make_group(cluster, "dissemination")

        def prog(node):
            for seq in range(5):
                yield from host_barrier(cluster.ports[node], group, seq)

        run_all(cluster, [prog(i) for i in range(8)])
        assert nic.sim.now < cluster.sim.now

    def test_nic_barrier_minimal_pci_traffic(self):
        """NIC-based: one PIO + one completion DMA per node per barrier."""
        cluster = self._run(NicCollectiveBarrierEngine)
        # 5 barriers: each node: 5 PIO doorbells (plus preposting setup).
        pio = cluster.pcis[0].pio_count
        dma = cluster.pcis[0].dma_count
        assert pio <= 5 + 1
        assert dma == 5  # one completion event per barrier


class TestMixedGroupMapping:
    def test_permuted_node_order(self, mcluster):
        """Rank order independent of node ids (random permutation runs)."""
        group = make_group(mcluster, nodes=[5, 2, 7, 0, 3, 6, 1, 4])
        install_engines(mcluster, group)
        done = []

        def prog(node):
            yield from nic_barrier(mcluster.ports[node], group, 0)
            done.append(node)

        run_all(mcluster, [prog(i) for i in range(8)])
        assert sorted(done) == list(range(8))

    def test_subgroup_of_cluster(self, mcluster):
        group = make_group(mcluster, nodes=[1, 3, 5])
        install_engines(mcluster, group)
        done = []

        def prog(node):
            yield from nic_barrier(mcluster.ports[node], group, 0)
            done.append(node)

        run_all(mcluster, [prog(i) for i in (1, 3, 5)])
        assert sorted(done) == [1, 3, 5]

    def test_engine_wrong_node_rejected(self, mcluster):
        group = make_group(mcluster)
        with pytest.raises(ValueError):
            NicCollectiveBarrierEngine(mcluster.nics[0], group, rank=3)
