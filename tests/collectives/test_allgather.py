"""End-to-end tests for the NIC-based Allgather (§9 extension)."""

import pytest

from repro.collectives import NicAllgatherEngine, ProcessGroup, nic_allgather
from repro.network import FaultInjector, PacketKind
from repro.sim import DeterministicRng
from tests.collectives.conftest import run_all
from tests.myrinet.conftest import MyrinetTestCluster


def setup(cluster, nodes=None):
    nodes = list(range(len(cluster.nics))) if nodes is None else nodes
    group = ProcessGroup(nodes)
    engines = [
        NicAllgatherEngine(cluster.nics[node], group, rank)
        for rank, node in enumerate(group.node_ids)
    ]
    return group, engines


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
def test_everyone_gets_all_values(n):
    cluster = MyrinetTestCluster(n=n)
    group, engines = setup(cluster)
    results = {}

    def prog(node):
        rank = group.rank_of(node)
        gathered = yield from nic_allgather(
            cluster.ports[node], group, 0, value=rank * 11
        )
        results[node] = gathered

    run_all(cluster, [prog(i) for i in range(n)])
    expected = {rank: rank * 11 for rank in range(n)}
    assert all(res == expected for res in results.values())
    assert all(e.completed == 1 for e in engines)
    assert all(e.states == {} for e in engines)


def test_message_sizes_grow_per_round():
    """Round m carries 2^m values: the wire bytes reflect the doubling."""
    cluster = MyrinetTestCluster(n=8)
    group, _ = setup(cluster)
    sizes = []
    original = cluster.fabric.transmit

    def spy(packet):
        if packet.kind == PacketKind.BCAST:
            sizes.append(packet.size_bytes)
        original(packet)

    cluster.fabric.transmit = spy

    def prog(node):
        yield from nic_allgather(cluster.ports[node], group, 0, value=node)

    run_all(cluster, [prog(i) for i in range(8)])
    header = cluster.nics[0].params.data_header_bytes
    payload_sizes = sorted(s - header for s in sizes)
    # 8 ranks x 3 rounds carrying 1, 2, 4 values (4 bytes each).
    assert payload_sizes == [4] * 8 + [8] * 8 + [16] * 8


def test_consecutive_allgathers():
    cluster = MyrinetTestCluster(n=4)
    group, engines = setup(cluster)
    results = {i: [] for i in range(4)}

    def prog(node):
        for seq in range(5):
            gathered = yield from nic_allgather(
                cluster.ports[node], group, seq, value=(node, seq)
            )
            results[node].append(gathered)

    run_all(cluster, [prog(i) for i in range(4)])
    for node in range(4):
        for seq in range(5):
            assert results[node][seq] == {r: (r, seq) for r in range(4)}


def test_loss_recovered_by_nack():
    faults = FaultInjector()
    faults.drop_nth_matching(lambda p: p.kind == PacketKind.BCAST, occurrence=2)
    cluster = MyrinetTestCluster(n=8, faults=faults)
    group, engines = setup(cluster)

    def prog(node):
        gathered = yield from nic_allgather(cluster.ports[node], group, 0, node)
        assert gathered == {r: r for r in range(8)}

    run_all(cluster, [prog(i) for i in range(8)])
    # Recovery path depends on whether the sender had already finished:
    # in-flight resend or retained-vector resend — either must fire.
    resends = (
        cluster.tracer.counters.get("allgather.nack_retransmit", 0)
        + cluster.tracer.counters.get("allgather.nack_stale_resend", 0)
    )
    assert resends >= 1
    assert all(e.completed == 1 for e in engines)


def test_random_loss_many_rounds():
    faults = FaultInjector(rng=DeterministicRng(5), drop_probability=0.03)
    cluster = MyrinetTestCluster(n=8, faults=faults)
    group, engines = setup(cluster)

    def prog(node):
        for seq in range(10):
            gathered = yield from nic_allgather(
                cluster.ports[node], group, seq, value=node + seq
            )
            assert gathered == {r: r + seq for r in range(8)}

    run_all(cluster, [prog(i) for i in range(8)])
    assert all(e.completed == 10 for e in engines)


def test_host_pays_only_entry_and_exit():
    cluster = MyrinetTestCluster(n=8)
    group, _ = setup(cluster)

    def prog(node):
        yield from nic_allgather(cluster.ports[node], group, 0, node)

    run_all(cluster, [prog(i) for i in range(8)])
    # Per node: 1 contribute DMA (host->nic) + 1 result DMA + 1 event DMA.
    assert cluster.pcis[0].dma_count == 3


def test_wrong_node_rejected():
    cluster = MyrinetTestCluster(n=4)
    group = ProcessGroup([0, 1, 2, 3])
    with pytest.raises(ValueError):
        NicAllgatherEngine(cluster.nics[1], group, rank=0)
