"""Unit + property tests for the analytical model."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    PAPER_MYRINET_XP,
    PAPER_QUADRICS_ELAN3,
    BarrierModel,
    fit_barrier_model,
)


class TestPaperNumbers:
    def test_myrinet_1024_headline(self):
        """§8.3: 38.94 µs over a 1024-node Myrinet cluster."""
        assert PAPER_MYRINET_XP.predict(1024) == pytest.approx(38.94, abs=0.01)

    def test_quadrics_1024_headline(self):
        """§8.3: 22.13 µs over a 1024-node Quadrics cluster."""
        assert PAPER_QUADRICS_ELAN3.predict(1024) == pytest.approx(22.13, abs=0.01)

    def test_myrinet_8_nodes_near_measured(self):
        """The model at N=8 lands near the measured 14.20 µs."""
        assert PAPER_MYRINET_XP.predict(8) == pytest.approx(14.20, abs=0.5)

    def test_quadrics_8_nodes_near_measured(self):
        """The model at N=8 lands near the measured 5.60 µs."""
        assert PAPER_QUADRICS_ELAN3.predict(8) == pytest.approx(5.60, abs=0.5)

    def test_string_form(self):
        s = str(PAPER_QUADRICS_ELAN3)
        assert "2.25" in s and "2.32" in s and "- 1.00" in s


class TestModelShape:
    def test_steps_follow_ceil_log2(self):
        m = BarrierModel(0.0, 1.0, 0.0)
        assert m.predict(2) == 0.0  # ceil(log2 2) - 1 = 0
        assert m.predict(3) == 1.0
        assert m.predict(4) == 1.0
        assert m.predict(5) == 2.0
        assert m.predict(1024) == 9.0

    def test_plateaus_between_powers_of_two(self):
        m = PAPER_MYRINET_XP
        assert m.predict(5) == m.predict(8)
        assert m.predict(9) == m.predict(16)
        assert m.predict(8) < m.predict(9)

    def test_n_below_two_rejected(self):
        with pytest.raises(ValueError):
            PAPER_MYRINET_XP.predict(1)

    def test_predict_many(self):
        m = PAPER_QUADRICS_ELAN3
        assert m.predict_many([2, 4, 8]) == [m.predict(2), m.predict(4), m.predict(8)]


class TestFitting:
    def test_recovers_exact_model(self):
        truth = BarrierModel(3.0, 2.5, 1.0)
        ns = [2, 4, 8, 16, 32, 64]
        fitted = fit_barrier_model(ns, truth.predict_many(ns), t_init=3.0)
        assert fitted.t_trig == pytest.approx(2.5, abs=1e-9)
        assert fitted.t_adj == pytest.approx(1.0, abs=1e-9)

    def test_without_t_init_folds_into_intercept(self):
        truth = BarrierModel(3.0, 2.5, 1.0)
        ns = [2, 4, 8, 16]
        fitted = fit_barrier_model(ns, truth.predict_many(ns))
        assert fitted.t_adj == 0.0
        assert fitted.intercept == pytest.approx(4.0, abs=1e-9)
        assert fitted.predict(1024) == pytest.approx(truth.predict(1024), abs=1e-9)

    def test_noisy_fit_close(self):
        truth = PAPER_MYRINET_XP
        ns = [2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32]
        noisy = [truth.predict(n) + 0.1 * ((n * 7919) % 5 - 2) for n in ns]
        fitted = fit_barrier_model(ns, noisy)
        assert fitted.t_trig == pytest.approx(truth.t_trig, abs=0.3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_barrier_model([2, 4], [1.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_barrier_model([2], [1.0])

    def test_degenerate_single_step_count(self):
        with pytest.raises(ValueError, match="distinct"):
            fit_barrier_model([5, 6, 7, 8], [3.0, 3.0, 3.0, 3.0])


@settings(max_examples=50, deadline=None)
@given(
    t_init=st.floats(min_value=0.1, max_value=10),
    t_trig=st.floats(min_value=0.1, max_value=10),
    t_adj=st.floats(min_value=-5, max_value=10),
)
def test_fit_roundtrip_property(t_init, t_trig, t_adj):
    truth = BarrierModel(t_init, t_trig, t_adj)
    ns = [2, 4, 8, 16, 32, 64, 128, 256]
    fitted = fit_barrier_model(ns, truth.predict_many(ns), t_init=t_init)
    assert fitted.t_trig == pytest.approx(t_trig, rel=1e-6, abs=1e-6)
    assert fitted.predict(1024) == pytest.approx(truth.predict(1024), rel=1e-6, abs=1e-5)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=2, max_value=4096))
def test_model_monotone_in_n(n):
    m = PAPER_MYRINET_XP
    assert m.predict(n + 1) >= m.predict(n)
