"""Cross-cutting determinism and conservation properties.

A reproducible simulator is the foundation of every number in
EXPERIMENTS.md: identical builds + identical seeds must give identical
traces, and no packet may be silently lost unless fault injection ate
it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    build_myrinet_cluster,
    build_quadrics_cluster,
    run_barrier_experiment,
)
from repro.network import FaultInjector
from repro.sim import DeterministicRng


@pytest.mark.parametrize("barrier", ["host", "nic-direct", "nic-collective"])
def test_myrinet_experiments_bit_identical(barrier):
    def run():
        cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=4)
        result = run_barrier_experiment(
            cluster, barrier, iterations=10, warmup=3, seed=11
        )
        return (result.mean_latency_us, result.total_us, tuple(sorted(result.counters.items())))

    assert run() == run()


@pytest.mark.parametrize("barrier", ["gsync", "hgsync", "nic-chained"])
def test_quadrics_experiments_bit_identical(barrier):
    def run():
        cluster = build_quadrics_cluster(nodes=4)
        result = run_barrier_experiment(
            cluster, barrier, iterations=10, warmup=3, seed=11
        )
        return (result.mean_latency_us, result.total_us)

    assert run() == run()


def test_lossy_experiments_bit_identical():
    def run():
        faults = FaultInjector(rng=DeterministicRng(9, "f"), drop_probability=0.02)
        cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=4, faults=faults)
        result = run_barrier_experiment(
            cluster, "nic-collective", iterations=15, warmup=3, seed=2
        )
        return (result.mean_latency_us, faults.dropped)

    assert run() == run()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_determinism_across_arbitrary_seeds(seed):
    def run():
        cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=3)
        result = run_barrier_experiment(
            cluster, "nic-collective", iterations=4, warmup=2, seed=seed
        )
        return result.mean_latency_us

    assert run() == run()


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    algo=st.sampled_from(["dissemination", "pairwise-exchange"]),
)
def test_packet_conservation_clean_wire(n, algo):
    """Without faults, every transmitted packet is delivered."""
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=n)
    run_barrier_experiment(cluster, "nic-collective", algo, iterations=5, warmup=2)
    sent = cluster.tracer.counters["wire.packets"]
    assert cluster.fabric.delivered_count == sent


def test_packet_conservation_under_loss():
    faults = FaultInjector(rng=DeterministicRng(4, "f"), drop_probability=0.05)
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=4, faults=faults)
    run_barrier_experiment(cluster, "nic-collective", iterations=15, warmup=3)
    sent = cluster.tracer.counters["wire.packets"]
    assert cluster.fabric.delivered_count == sent - faults.dropped


def _series_key(result):
    return [
        (s.label, tuple(s.n_values), tuple(s.latencies)) for s in result.series
    ]


@pytest.mark.parametrize("module_name", ["fig5", "fig7"])
def test_parallel_sweep_bit_identical_to_serial(module_name):
    """--jobs fans points out to worker processes; each point is an
    independent simulator with a fixed seed, so the fan-out must not
    change a single bit of any series."""
    import importlib

    module = importlib.import_module(f"repro.experiments.{module_name}")
    serial = module.run(quick=True, jobs=1)
    parallel = module.run(quick=True, jobs=4)
    assert _series_key(serial) == _series_key(parallel)
    assert serial.measured_anchors == parallel.measured_anchors


def test_parallel_map_preserves_order_and_serial_fallback():
    from repro.experiments.common import parallel_map

    items = list(range(12))
    assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
    assert parallel_map(_square, items, jobs=3) == [i * i for i in items]
    assert parallel_map(_square, [], jobs=3) == []


def _square(x):
    return x * x


def test_different_seeds_permute_differently():
    perms = set()
    for seed in range(6):
        cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=8)
        result = run_barrier_experiment(
            cluster, "nic-collective", iterations=2, warmup=1, seed=seed
        )
        perms.add(result.node_permutation)
    assert len(perms) > 1


def test_permutation_does_not_change_latency_much():
    """The paper: "We observed only negligible variations" across node
    permutations (single-crossbar topologies are symmetric)."""
    latencies = []
    for seed in range(5):
        cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=8)
        result = run_barrier_experiment(
            cluster, "nic-collective", iterations=20, warmup=5, seed=seed
        )
        latencies.append(result.mean_latency_us)
    assert max(latencies) - min(latencies) < 0.05 * max(latencies)


@pytest.mark.parametrize(
    "build,barrier",
    [
        (build_quadrics_cluster, "nic-chained"),
        (build_myrinet_cluster, "nic-collective"),
        (build_myrinet_cluster, "host"),
    ],
)
def test_tracing_is_passive(build, barrier):
    """Span instrumentation must be pure observation: enabling the
    tracer cannot move a single event (bit-identical latencies)."""
    from repro.sim import Tracer

    def run(enabled):
        cluster = build(nodes=8, tracer=Tracer(enabled=enabled))
        result = run_barrier_experiment(cluster, barrier, iterations=10, warmup=3)
        return (
            result.mean_latency_us,
            result.total_us,
            result.timed_start_us,
            result.iteration_ends_us,
            tuple(sorted(result.counters.items())),
        )

    assert run(True) == run(False)
