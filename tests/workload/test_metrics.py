"""Tests for tail-latency metrics: percentiles, fairness, summaries."""

import pytest

from repro.workload import (
    JobMetrics,
    format_job_table,
    jain_fairness,
    percentile,
    summarize_job,
)
from repro.workload.metrics import attach_baseline


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 50) == 30.0
    assert percentile(values, 99) == 50.0
    assert percentile(values, 100) == 50.0
    # Order of the input must not matter.
    assert percentile(list(reversed(values)), 50) == 30.0


def test_percentile_small_samples_degenerate_to_max():
    assert percentile([5.0, 7.0], 99) == 7.0
    assert percentile([5.0], 99.9) == 5.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError, match="no values"):
        percentile([], 50)
    with pytest.raises(ValueError, match="out of range"):
        percentile([1.0], 101)


def test_jain_fairness_bounds():
    assert jain_fairness([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)
    # One job absorbs triple the contention of the other -> 0.8.
    assert jain_fairness([3.0, 1.0]) == pytest.approx(0.8)
    assert jain_fairness([]) == 1.0
    # Zero slowdowns (jobs without baselines) are ignored, not divided by.
    assert jain_fairness([0.0, 2.0, 2.0]) == pytest.approx(1.0)


def test_summarize_job_rolls_up_tails():
    lat = [10.0, 11.0, 12.0, 30.0]
    m = summarize_job("j", 8, 5.0, lat, end_us=120.0)
    assert m.iterations == 4
    assert m.mean_us == pytest.approx(15.75)
    assert m.p50_us == 11.0
    assert m.p99_us == 30.0
    assert m.max_us == 30.0
    assert m.end_us == 120.0
    assert m.slowdown is None  # no baseline attached yet


def test_summarize_job_rejects_empty():
    with pytest.raises(ValueError, match="no timed iterations"):
        summarize_job("j", 8, 0.0, [], end_us=0.0)


def test_attach_baseline_computes_slowdown():
    contended = summarize_job("j", 8, 0.0, [20.0, 22.0], end_us=50.0)
    silent = summarize_job("j", 8, 0.0, [10.0, 11.0], end_us=25.0)
    attach_baseline(contended, silent)
    assert contended.silent_mean_us == pytest.approx(10.5)
    assert contended.slowdown == pytest.approx(21.0 / 10.5)
    assert contended.p99_ratio == pytest.approx(22.0 / 11.0)


def test_job_metrics_json_round_trip():
    m = summarize_job("j", 8, 1.0, [10.0, 12.0], end_us=30.0)
    assert JobMetrics(**m.to_json()) == m


def test_format_job_table_is_stable_text():
    m = summarize_job("job0", 8, 0.0, [10.0, 12.0], end_us=30.0)
    table = format_job_table([m], fairness=0.5)
    assert table == format_job_table([m], fairness=0.5)
    assert "job0" in table and "fairness" in table
    # Missing baseline renders as '-', not a crash.
    assert " - " in table or "-  " in table or "- " in table
