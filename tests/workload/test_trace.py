"""Tests for the job-trace format and synthetic generators."""

import pytest

from repro.workload import (
    TRACE_PATTERNS,
    JobSpec,
    generate_trace,
    parse_trace,
    render_trace,
    validate_trace,
)


def spec(**overrides):
    base = dict(
        name="j",
        arrival_us=0.0,
        nodes=(0, 1, 2, 3),
        mix=(("barrier", 1),),
        payload_bytes=64,
        iterations=5,
        warmup=1,
    )
    base.update(overrides)
    return JobSpec(**base)


def test_jobspec_validation():
    with pytest.raises(ValueError, match="empty node set"):
        spec(nodes=())
    with pytest.raises(ValueError, match="duplicate nodes"):
        spec(nodes=(0, 1, 1))
    with pytest.raises(ValueError, match="two nodes"):
        spec(nodes=(0,))
    with pytest.raises(ValueError, match="negative arrival"):
        spec(arrival_us=-1.0)
    with pytest.raises(ValueError, match="one iteration"):
        spec(iterations=0)
    with pytest.raises(ValueError, match="empty collective mix"):
        spec(mix=())
    with pytest.raises(ValueError, match="weight"):
        spec(mix=(("barrier", 0),))


def test_total_iterations_includes_warmup():
    assert spec(iterations=5, warmup=2).total_iterations == 7


def test_render_parse_round_trip():
    jobs = [
        spec(name="a", mix=(("barrier", 3), ("bcast", 1))),
        spec(name="b", arrival_us=12.5, nodes=(2, 3, 4, 5)),
    ]
    assert parse_trace(render_trace(jobs)) == jobs


def test_parse_skips_blank_lines_and_comments():
    text = render_trace([spec(name="a")])
    decorated = "# a comment\n\n" + text + "\n# trailing\n"
    assert parse_trace(decorated) == [spec(name="a")]


def test_parse_rejects_bad_json_and_duplicates():
    with pytest.raises(ValueError, match="invalid JSON"):
        parse_trace("{not json}\n")
    dup = render_trace([spec(name="a")]) * 2
    with pytest.raises(ValueError, match="duplicate job names"):
        parse_trace(dup)
    with pytest.raises(ValueError, match="no jobs"):
        parse_trace("# only comments\n")


def test_from_json_applies_defaults():
    job = JobSpec.from_json({"name": "x", "nodes": [0, 1]})
    assert job.arrival_us == 0.0
    assert job.mix == (("barrier", 1),)
    assert job.iterations == 20
    assert job.warmup == 2


def test_generate_trace_is_deterministic():
    for pattern in TRACE_PATTERNS:
        first = generate_trace(pattern, 4, 32, seed=7, iterations=6)
        again = generate_trace(pattern, 4, 32, seed=7, iterations=6)
        assert first == again
        # A different seed moves at least one arrival.
        other = generate_trace(pattern, 4, 32, seed=8, iterations=6)
        assert first != other


def test_generate_trace_allocations_overlap():
    for pattern in TRACE_PATTERNS:
        jobs = generate_trace(pattern, 4, 32, seed=0)
        allocated = [set(j.nodes) for j in jobs]
        assert any(
            a & b
            for i, a in enumerate(allocated)
            for b in allocated[i + 1:]
        ), f"{pattern}: no two jobs share a node"


def test_generate_trace_skewed_has_one_large_job():
    jobs = generate_trace("skewed", 4, 64, seed=0)
    sizes = sorted(len(j.nodes) for j in jobs)
    assert sizes[-1] == 48 and sizes[0] == 16
    assert jobs[0].arrival_us == 0.0


def test_generate_trace_rejects_bad_args():
    with pytest.raises(ValueError, match="unknown pattern"):
        generate_trace("zipf", 2, 16)
    with pytest.raises(ValueError, match="at least one job"):
        generate_trace("uniform", 0, 16)
    with pytest.raises(ValueError, match="four nodes"):
        generate_trace("uniform", 2, 2)


def test_validate_trace_scopes_collectives_by_network():
    jobs = [spec(mix=(("alltoall", 1),))]
    validate_trace(jobs, "myrinet", 16)  # fine
    with pytest.raises(ValueError, match="unsupported on quadrics"):
        validate_trace(jobs, "quadrics", 16)


def test_validate_trace_rejects_out_of_range_nodes():
    with pytest.raises(ValueError, match="outside cluster"):
        validate_trace([spec(nodes=(0, 1, 2, 99))], "myrinet", 16)
