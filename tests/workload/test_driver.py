"""Workload driver tests: overlapping allocations on a shared fabric,
tie-break determinism, warm-cache bit-identity, and chaos composition."""

import pytest

from repro.tools.runcache import RunCache
from repro.workload import (
    CrossTrafficSpec,
    JobSpec,
    KillSpec,
    run_workload,
    run_workload_cached,
    verify_workload_determinism,
)

#: Two jobs sharing nodes 6..9 of a 16-node machine, mixed collectives.
OVERLAP_JOBS = [
    JobSpec(
        name="a",
        arrival_us=0.0,
        nodes=tuple(range(0, 10)),
        mix=(("barrier", 3), ("bcast", 1)),
        payload_bytes=64,
        iterations=6,
        warmup=1,
    ),
    JobSpec(
        name="b",
        arrival_us=7.0,
        nodes=tuple(range(6, 16)),
        mix=(("barrier", 3), ("bcast", 1)),
        payload_bytes=64,
        iterations=6,
        warmup=1,
    ),
]

XT = CrossTrafficSpec(rate_per_ms=100.0, size_bytes=256)


@pytest.mark.parametrize("network", ["myrinet", "quadrics"])
def test_overlapping_jobs_complete_clean(network):
    result = run_workload(network, 16, OVERLAP_JOBS, seed=1, xtraffic=XT)
    assert [j["status"] for j in result["jobs"]] == ["completed", "completed"]
    assert [j["iterations"] for j in result["jobs"]] == [6, 6]
    assert result["violations"] == []
    assert result["quiescence"] == []
    assert result["group_audit"], "expected per-group audit entries"
    assert all(
        check["actual_packets"] == check["expected_packets"]
        for check in result["group_audit"]
    )
    stats = result["xtraffic"]
    assert stats["injected"] == stats["delivered"] == stats["scheduled"] > 0
    # Every job carries a silent baseline and a slowdown.
    assert all(j["slowdown"] is not None for j in result["jobs"])


@pytest.mark.parametrize("network", ["myrinet", "quadrics"])
def test_overlapping_jobs_bit_identical_across_20_permutations(network):
    findings = verify_workload_determinism(
        network, 16, OVERLAP_JOBS, seed=1, xtraffic=XT, rounds=20
    )
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.parametrize("network", ["myrinet", "quadrics"])
def test_warm_cache_rerun_is_bit_identical(network, tmp_path):
    cache = RunCache(tmp_path)
    cold = run_workload_cached(
        network, 16, OVERLAP_JOBS, seed=1, xtraffic=XT, cache=cache
    )
    warm = run_workload_cached(
        network, 16, OVERLAP_JOBS, seed=1, xtraffic=XT, cache=cache
    )
    assert cache.hits == 1 and cache.misses == 1
    assert warm == cold


def test_contention_shows_up_in_the_tail():
    # The shared-node run must be measurably slower than silent.
    result = run_workload("myrinet", 16, OVERLAP_JOBS, seed=1, xtraffic=XT)
    stretched = [
        j for j in result["jobs"] if j["p99_us"] > j["silent_mean_us"]
    ]
    assert stretched, "no job's contended p99 exceeded its silent mean"
    assert 0.0 < result["fairness"] <= 1.0


@pytest.mark.parametrize("network", ["myrinet", "quadrics"])
def test_node_kill_repairs_victim_and_spares_bystander(network):
    # Node 2 belongs to the victim only; the jobs still share nodes 6..9.
    victim = JobSpec(
        name="victim",
        arrival_us=0.0,
        nodes=tuple(range(0, 10)),
        mix=(("barrier", 1),),
        iterations=40,
        warmup=1,
    )
    bystander = JobSpec(
        name="bystander",
        arrival_us=3.0,
        nodes=tuple(range(6, 16)),
        mix=(("barrier", 1),),
        iterations=40,
        warmup=1,
    )
    kill = KillSpec(node=2, at_us=60.0)
    result = run_workload(
        network, 16, [victim, bystander], seed=2, kill=kill, baseline=False
    )
    status = {j["name"]: j["status"] for j in result["jobs"]}
    assert status["victim"] == "repaired"
    assert status["bystander"] == "completed"
    done = {j["name"]: j["iterations"] for j in result["jobs"]}
    assert done["bystander"] == 40
    assert 0 < done["victim"] < 40
    assert result["violations"] == []
    assert result["quiescence"] == []
    assert result["kill"] == kill.to_json()
