"""Tests for the cross-traffic injector and its pre-drawn schedule."""

import pytest

from repro.cluster import build_cluster
from repro.sim import DeterministicRng
from repro.workload import CrossTrafficInjector, CrossTrafficSpec, build_schedule


def test_spec_validation():
    with pytest.raises(ValueError, match="negative cross-traffic rate"):
        CrossTrafficSpec(rate_per_ms=-1.0)
    with pytest.raises(ValueError, match="at least one byte"):
        CrossTrafficSpec(rate_per_ms=1.0, size_bytes=0)
    with pytest.raises(ValueError, match="negative horizon"):
        CrossTrafficSpec(rate_per_ms=1.0, horizon_us=-5.0)


def test_build_schedule_deterministic():
    spec = CrossTrafficSpec(rate_per_ms=100.0, size_bytes=256)
    first = build_schedule(spec, 16, 500.0, DeterministicRng(3, "xt"))
    again = build_schedule(spec, 16, 500.0, DeterministicRng(3, "xt"))
    assert first == again
    assert first != build_schedule(spec, 16, 500.0, DeterministicRng(4, "xt"))


def test_build_schedule_respects_horizon_and_pairs():
    spec = CrossTrafficSpec(rate_per_ms=200.0, size_bytes=64)
    schedule = build_schedule(spec, 8, 300.0, DeterministicRng(0, "xt"))
    assert schedule, "expected some arrivals at 200/ms over 300us"
    for t, src, dst in schedule:
        assert 0.0 < t < 300.0
        assert 0 <= src < 8 and 0 <= dst < 8
        assert src != dst


def test_build_schedule_degenerate_cases_are_empty():
    rng = DeterministicRng(0, "xt")
    assert build_schedule(CrossTrafficSpec(0.0), 8, 100.0, rng) == ()
    assert build_schedule(CrossTrafficSpec(10.0), 8, 0.0, rng) == ()
    assert build_schedule(CrossTrafficSpec(10.0), 1, 100.0, rng) == ()


@pytest.mark.parametrize("profile", ["lanai_xp_xeon2400", "elan3_piii700"])
def test_injector_delivers_all_packets_off_the_hot_path(profile):
    cluster = build_cluster(profile, 4)
    spec = CrossTrafficSpec(rate_per_ms=500.0, size_bytes=128)
    schedule = build_schedule(spec, 4, 200.0, DeterministicRng(1, "xt"))
    injector = CrossTrafficInjector(cluster, schedule, spec.size_bytes)
    proc = injector.launch()
    cluster.sim.run()
    stats = injector.stats()
    assert proc.completion.processed
    assert stats["scheduled"] == len(schedule)
    assert stats["injected"] == stats["delivered"] == len(schedule)
    # Sunk at the port: no NIC ever saw an xtraffic packet, but the
    # fabric accounted the flow.
    flows = cluster.fabric.flow_counters()
    assert flows["flow:xtraffic"]["packets"] == len(schedule)
