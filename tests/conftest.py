"""Repo-wide test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path, monkeypatch):
    """Point the run cache at a per-test directory.

    CLI entry points cache by default; without this, tests would write
    (and worse, *read*) a shared ``.repro-cache/`` in the working
    directory, coupling test outcomes to whatever ran before.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "run-cache"))
