"""Smoke tests: every experiment harness runs and hits its anchors.

These run the quick variants (few iterations, few points) — enough to
verify the harness wiring and the *shape* assertions; the benchmarks
run the full-fidelity versions.
"""

import pytest

from repro.experiments import ablation, extensions, fig6, fig7, skew
from repro.experiments.common import (
    ExperimentResult,
    Series,
    ascii_plot,
    latency_table,
)


class TestCommon:
    def test_series_at(self):
        s = Series("x", [2, 4, 8], [1.0, 2.0, 3.0])
        assert s.at(4) == 2.0
        with pytest.raises(KeyError, match=r"series 'x' has no point at N=16"):
            s.at(16)

    def test_series_at_names_available_points(self):
        s = Series("NIC-DS", [2, 4], [1.0, 2.0])
        with pytest.raises(KeyError, match=r"available: \[2, 4\]"):
            s.at(8)

    def test_latency_table_includes_all_points(self):
        s1 = Series("a", [2, 4], [1.0, 2.0])
        s2 = Series("b", [4, 8], [3.0, 4.0])
        table = latency_table([s1, s2])
        assert "--" in table  # missing cells rendered
        assert "1.00" in table and "4.00" in table

    def test_ascii_plot_renders(self):
        s = Series("a", [2, 4, 8], [1.0, 2.0, 3.0])
        plot = ascii_plot([s], title="demo")
        assert "demo" in plot
        assert "o a" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot([]) == "(no data)"

    def test_anchor_table_ratio(self):
        result = ExperimentResult(
            "x", "t", [], paper_anchors={"k": 2.0}, measured_anchors={"k": 1.0}
        )
        assert "0.50" in result.anchor_table()

    def test_anchor_table_missing_measurement(self):
        result = ExperimentResult("x", "t", [], paper_anchors={"k": 2.0})
        assert "--" in result.anchor_table()


@pytest.mark.slow
class TestQuickRuns:
    def test_fig6_quick(self):
        result = fig6.run(quick=True, iterations=15)
        assert result.exp_id == "fig6"
        nic = next(s for s in result.series if s.label == "NIC-DS")
        host = next(s for s in result.series if s.label == "Host-DS")
        assert host.at(8) > 2.0 * nic.at(8)

    def test_fig7_quick(self):
        result = fig7.run(quick=True, iterations=15)
        nic = next(s for s in result.series if s.label == "NIC-Barrier-DS")
        tree = next(s for s in result.series if s.label == "Elan-Barrier")
        assert tree.at(8) > 2.0 * nic.at(8)
        # NIC barrier beats the HW barrier at 2 nodes (paper §8.2).
        hw = next(s for s in result.series if s.label == "Elan-HW-Barrier")
        assert nic.at(2) < hw.at(2)

    def test_ablation_quick(self):
        result = ablation.run(quick=True, iterations=15)
        assert result.measured_anchors[
            "direct wire packets per barrier / collective"
        ] == pytest.approx(2.0)

    def test_skew_quick(self):
        result = skew.run(quick=True, iterations=8)
        hw_cost = next(s for s in result.series if s.label == "hgsync-cost")
        nic_cost = next(s for s in result.series if s.label == "NIC-chained-cost")
        # Under heavy skew the hardware barrier's overhead exceeds the
        # NIC barrier's.
        assert hw_cost.latencies[-1] > nic_cost.latencies[-1]

    def test_extensions_quick(self):
        result = extensions.run(quick=True, iterations=10)
        bcast = next(s for s in result.series if s.label == "bcast-64B")
        assert bcast.latencies == sorted(bcast.latencies)
        alltoall = next(s for s in result.series if s.label == "alltoall-4B")
        assert alltoall.latencies == sorted(alltoall.latencies)

    def test_sensitivity_quick(self):
        from repro.experiments import sensitivity

        result = sensitivity.run(quick=True, iterations=10)
        host = next(
            s for s in result.series if s.label == "host-vs-poll-interval"
        )
        nic = next(s for s in result.series if s.label == "nic-vs-poll-interval")
        host_growth = host.latencies[-1] - host.latencies[0]
        nic_growth = nic.latencies[-1] - nic.latencies[0]
        # Host-based pays the polling lag per step; NIC-based once.
        assert host_growth > 1.5 * nic_growth
        loss = next(s for s in result.series if "loss" in s.label)
        assert loss.latencies[-1] > loss.latencies[0]
