"""Edge cases in the Myrinet control program."""

import pytest

from repro.network import Packet, PacketKind


def run(cluster, *programs):
    procs = [cluster.sim.process(p) for p in programs]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed


def test_stale_ack_counted(cluster):
    """An ACK for an unknown record must be ignored, not crash."""
    nic1 = cluster.nics[1]
    stray = Packet(
        src=0, dst=1, kind=PacketKind.ACK, size_bytes=8, payload=None, seq=999
    )
    cluster.fabric.transmit(stray)
    cluster.sim.run()
    assert cluster.tracer.counters["gm.ack_stale"] == 1


def test_unknown_packet_kind_counted(cluster):
    stray = Packet(src=0, dst=1, kind=PacketKind.EVENT, size_bytes=8)
    cluster.fabric.transmit(stray)
    cluster.sim.run()
    assert cluster.tracer.counters["gm.rx_unknown_kind"] == 1


def test_peer_declared_dead_after_retry_budget():
    """A message into the void stops retransmitting eventually."""
    from repro.network import FaultInjector
    from tests.myrinet.conftest import TEST_GM, MyrinetTestCluster
    import dataclasses

    gm = dataclasses.replace(TEST_GM, max_retries=3, ack_timeout_us=50.0)
    faults = FaultInjector()
    # Eat every data packet to node 1, including retransmissions.
    faults.drop_all_matching(lambda p: p.kind == PacketKind.DATA and p.dst == 1)
    cluster = MyrinetTestCluster(n=2, gm=gm, faults=faults)

    def sender():
        yield from cluster.ports[0].send(1, 32, payload="doomed")

    proc = cluster.sim.process(sender())
    cluster.sim.run()  # must terminate (no infinite retransmission)
    assert proc.completion.processed
    assert cluster.tracer.counters["gm.peer_dead"] == 1
    assert cluster.tracer.counters["gm.retransmit"] == 3
    assert cluster.nics[0].send_records == {}


def test_engine_command_for_unregistered_group_fails(cluster):
    cluster.nics[0].post_engine_command((42, "start", 0))
    with pytest.raises(KeyError, match="no engine for group 42"):
        cluster.sim.run()


def test_duplicate_engine_registration_rejected(cluster):
    from repro.collectives import NicCollectiveBarrierEngine, ProcessGroup

    group = ProcessGroup([0, 1])
    NicCollectiveBarrierEngine(cluster.nics[0], group, 0)
    with pytest.raises(ValueError, match="already has an engine"):
        NicCollectiveBarrierEngine(cluster.nics[0], group, 0)


def test_unknown_engine_command_fails(cluster):
    from repro.collectives import NicCollectiveBarrierEngine, ProcessGroup

    group = ProcessGroup([0, 1])
    NicCollectiveBarrierEngine(cluster.nics[0], group, 0)
    cluster.nics[0].post_engine_command((group.group_id, "reticulate", 0))
    with pytest.raises(ValueError, match="unknown engine command"):
        cluster.sim.run()


def test_nic_cpu_serializes_rx_and_send(cluster):
    """NIC busy time is the sum of all task costs (single processor)."""

    def sender():
        for i in range(3):
            yield from cluster.ports[0].send(1, 32, payload=i)

    def receiver():
        for _ in range(3):
            yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    p = cluster.nics[0].params
    send_path = (
        p.t_sdma_event + p.t_token_schedule + p.t_packet_alloc + p.t_fill
        + p.t_send_record + p.t_inject
    )
    # Sender NIC per message: the send path, plus receiving the ACK
    # (header parse + record clear) and passing the token back.
    ack_path = p.t_rx_header + p.t_ack_process + p.t_token_complete
    expected = 3 * (send_path + ack_path)
    assert cluster.nics[0].busy_us == pytest.approx(expected)
