"""Shared fixtures: a minimal Myrinet test cluster."""

import pytest

from repro.host import HostCpu, HostParams
from repro.myrinet import GmParams, GmPort, LanaiNic
from repro.network import Fabric, FaultInjector, WireParams
from repro.pci import PciBus, PciParams
from repro.sim import Simulator, Tracer
from repro.topology import ClosTopology

TEST_GM = GmParams(
    t_sdma_event=1.0,
    t_token_schedule=0.5,
    t_packet_alloc=0.5,
    t_fill=0.5,
    t_inject=0.5,
    t_send_record=0.5,
    t_rx_header=1.0,
    t_rdma_setup=0.5,
    t_recv_event=0.5,
    t_ack_gen=0.5,
    t_ack_process=0.5,
    t_token_complete=0.5,
    t_retransmit=0.5,
    t_coll_start=1.0,
    t_coll_trigger=1.0,
    t_coll_complete=1.0,
    t_nack_gen=0.5,
    t_nack_process=0.5,
    ack_timeout_us=200.0,
    nack_timeout_us=500.0,
    send_packet_count=4,
    recv_token_count=8,
)

TEST_WIRE = WireParams(
    inject_us=0.1,
    switch_latency_us=0.3,
    propagation_us=0.05,
    bandwidth_bytes_per_us=250.0,
)

TEST_PCI = PciParams(pio_write_us=0.5, dma_setup_us=0.5, bandwidth_bytes_per_us=400.0)

TEST_HOST = HostParams(
    send_overhead_us=0.5,
    recv_overhead_us=0.5,
    poll_us=0.3,
    poll_interval_us=0.5,
    barrier_call_us=0.3,
)


class MyrinetTestCluster:
    """A handful of nodes on one crossbar, for unit tests."""

    def __init__(self, n=4, gm=TEST_GM, faults=None, tracer=None, sim=None):
        # An injected simulator lets the simlint perturbation harness
        # (compare_runs) rebuild the cluster on its tie-break variants.
        self.sim = sim if sim is not None else Simulator()
        self.tracer = tracer or Tracer()
        self.fabric = Fabric(
            self.sim, ClosTopology(n), TEST_WIRE, tracer=self.tracer, faults=faults
        )
        self.pcis = [
            PciBus(self.sim, TEST_PCI, name=f"pci{i}", tracer=self.tracer)
            for i in range(n)
        ]
        self.cpus = [HostCpu(self.sim, TEST_HOST, node_id=i) for i in range(n)]
        self.nics = [
            LanaiNic(self.sim, i, gm, self.fabric, self.pcis[i], tracer=self.tracer)
            for i in range(n)
        ]
        self.ports = [
            GmPort(self.sim, i, self.nics[i], self.cpus[i], self.pcis[i])
            for i in range(n)
        ]


@pytest.fixture
def cluster():
    return MyrinetTestCluster()


@pytest.fixture
def lossy_cluster():
    faults = FaultInjector()
    c = MyrinetTestCluster(faults=faults)
    c.faults = faults
    return c
