"""Integration tests of the GM point-to-point protocol."""


from repro.network import PacketKind


def run(cluster, *programs):
    procs = [cluster.sim.process(p) for p in programs]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"
    return procs


def test_simple_send_recv(cluster):
    received = []

    def sender():
        yield from cluster.ports[0].send(1, 64, payload="hello")

    def receiver():
        ev = yield from cluster.ports[1].recv_from(0)
        received.append(ev)

    run(cluster, sender(), receiver())
    assert received[0].payload == "hello"
    assert received[0].src == 0
    assert received[0].size == 64


def test_messages_delivered_in_order(cluster):
    got = []

    def sender():
        for i in range(5):
            yield from cluster.ports[0].send(1, 32, payload=i)

    def receiver():
        for _ in range(5):
            ev = yield from cluster.ports[1].recv_from(0)
            got.append(ev.payload)

    run(cluster, sender(), receiver())
    assert got == [0, 1, 2, 3, 4]


def test_send_with_completion(cluster):
    def sender():
        token = yield from cluster.ports[0].send(1, 64, payload="x", wait_completion=True)
        assert token.completion.processed

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())


def test_every_data_packet_acked(cluster):
    def sender():
        yield from cluster.ports[0].send(1, 64, payload="x")

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    counters = cluster.tracer.counters
    assert counters["wire.data"] == 1
    assert counters["wire.ack"] == 1


def test_send_records_cleared_after_ack(cluster):
    def sender():
        yield from cluster.ports[0].send(1, 64, payload="x", wait_completion=True)

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    assert cluster.nics[0].send_records == {}


def test_large_message_packetized(cluster):
    """A message above the MTU becomes several wire packets."""

    def sender():
        yield from cluster.ports[0].send(1, 10000, payload="big")  # mtu=4096

    def receiver():
        # Each packet produces a receive event in this model.
        for _ in range(3):
            yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    assert cluster.tracer.counters["wire.data"] == 3
    assert cluster.tracer.counters["wire.ack"] == 3


def test_retransmission_recovers_dropped_data(lossy_cluster):
    c = lossy_cluster
    c.faults.drop_nth_matching(lambda p: p.kind == PacketKind.DATA, occurrence=1)
    received = []

    def sender():
        yield from c.ports[0].send(1, 64, payload="precious")

    def receiver():
        ev = yield from c.ports[1].recv_from(0)
        received.append(ev.payload)

    run(c, sender(), receiver())
    assert received == ["precious"]
    assert c.tracer.counters["gm.retransmit"] >= 1


def test_lost_ack_triggers_duplicate_and_reack(lossy_cluster):
    c = lossy_cluster
    c.faults.drop_nth_matching(lambda p: p.kind == PacketKind.ACK, occurrence=1)

    def sender():
        yield from c.ports[0].send(1, 64, payload="x", wait_completion=True)

    def receiver():
        yield from c.ports[1].recv_from(0)

    run(c, sender(), receiver())
    assert c.tracer.counters["gm.retransmit"] >= 1
    assert c.tracer.counters["gm.rx_duplicate"] >= 1
    # Sender's record must be cleared by the re-ACK.
    assert c.nics[0].send_records == {}


def test_round_robin_across_destinations(cluster):
    """Tokens to different destinations interleave (round-robin)."""
    arrivals = {}

    def sender():
        # Queue several sends to two destinations back-to-back.
        for i in range(3):
            yield from cluster.ports[0].send(1, 32, payload=("to1", i))
            yield from cluster.ports[0].send(2, 32, payload=("to2", i))

    def receiver(node):
        for i in range(3):
            ev = yield from cluster.ports[node].recv_from(0)
            arrivals.setdefault(node, []).append(ev.payload[1])

    run(cluster, sender(), receiver(1), receiver(2))
    assert arrivals[1] == [0, 1, 2]
    assert arrivals[2] == [0, 1, 2]


def test_recv_token_exhaustion_recovers(cluster):
    """Packets beyond the posted buffers are dropped, then retransmitted."""
    nic1 = cluster.nics[1]
    nic1.recv_tokens_available = 1  # squeeze the pool

    def sender():
        yield from cluster.ports[0].send(1, 32, payload="a")
        yield from cluster.ports[0].send(1, 32, payload="b")

    got = []

    def receiver():
        for _ in range(2):
            ev = yield from cluster.ports[1].recv_from(0)
            got.append(ev.payload)

    run(cluster, sender(), receiver())
    assert got == ["a", "b"]
    assert cluster.tracer.counters["gm.rx_no_token"] >= 1


def test_pci_crossings_counted(cluster):
    def sender():
        yield from cluster.ports[0].send(1, 64, payload="x")

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    # Sender: doorbell PIO + data DMA host->nic.
    assert cluster.pcis[0].pio_count >= 1
    assert cluster.pcis[0].tracer.counters.get("pci0.dma.host_to_nic", 0) == 1
    # Receiver: payload DMA + receive event DMA, then a repost PIO.
    assert cluster.pcis[1].tracer.counters.get("pci1.dma.nic_to_host", 0) == 2


def test_nic_cpu_busy_time_accumulates(cluster):
    def sender():
        yield from cluster.ports[0].send(1, 64, payload="x")

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    assert cluster.nics[0].busy_us > 0
    assert cluster.nics[1].busy_us > 0
