"""Unit tests for host-side GM API details."""


from repro.myrinet import GmRecvEvent


def run(cluster, *programs):
    procs = [cluster.sim.process(p) for p in programs]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"


def test_recv_buffers_preposted_at_port_creation(cluster):
    assert cluster.nics[0].recv_tokens_available == cluster.nics[0].params.recv_token_count


def test_out_of_order_matching_buffers_events(cluster):
    """recv_matching must hold unrelated events for later consumers."""
    order = []

    def sender():
        yield from cluster.ports[0].send(1, 32, payload=("tag", "b"))
        yield from cluster.ports[0].send(1, 32, payload=("tag", "a"))

    def receiver():
        first = yield from cluster.ports[1].recv_matching(
            lambda ev: isinstance(ev, GmRecvEvent) and ev.payload == ("tag", "a")
        )
        second = yield from cluster.ports[1].recv_matching(
            lambda ev: isinstance(ev, GmRecvEvent) and ev.payload == ("tag", "b")
        )
        order.append((first.payload[1], second.payload[1]))

    run(cluster, sender(), receiver())
    assert order == [("a", "b")]


def test_pending_buffer_served_before_polling(cluster):
    """A buffered event is consumed without touching the NIC queue."""
    got = []

    def sender():
        yield from cluster.ports[0].send(1, 32, payload="x")
        yield from cluster.ports[0].send(1, 32, payload="y")

    def receiver():
        # Pull 'y' first, forcing 'x' into the pending buffer.
        yield from cluster.ports[1].recv_matching(
            lambda ev: isinstance(ev, GmRecvEvent) and ev.payload == "y"
        )
        before = len(cluster.nics[1].recv_event_queue)
        ev = yield from cluster.ports[1].recv_matching(
            lambda ev: isinstance(ev, GmRecvEvent) and ev.payload == "x"
        )
        got.append((ev.payload, before, len(cluster.nics[1].recv_event_queue)))

    run(cluster, sender(), receiver())
    payload, before, after = got[0]
    assert payload == "x"
    assert before == after == 0


def test_receive_buffer_reposted_after_consume(cluster):
    tokens_at_start = cluster.nics[1].recv_tokens_available

    def sender():
        yield from cluster.ports[0].send(1, 32, payload="z")

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    # Consumed one, reposted one: back to the starting level.
    assert cluster.nics[1].recv_tokens_available == tokens_at_start


def test_send_returns_token(cluster):
    tokens = []

    def sender():
        token = yield from cluster.ports[0].send(1, 16, payload="p")
        tokens.append(token)

    def receiver():
        yield from cluster.ports[1].recv_from(0)

    run(cluster, sender(), receiver())
    assert tokens[0].dst == 1
    assert tokens[0].size_bytes == 16


def test_two_senders_to_one_receiver(cluster):
    got = []

    def sender(node, tag):
        yield from cluster.ports[node].send(2, 32, payload=tag)

    def receiver():
        a = yield from cluster.ports[2].recv_from(0)
        b = yield from cluster.ports[2].recv_from(1)
        got.append((a.payload, b.payload))

    run(cluster, sender(0, "from0"), sender(1, "from1"), receiver())
    assert got == [("from0", "from1")]
