"""Unit tests for Resource, Store and PriorityStore."""

import pytest

from repro.sim import ArbitratedResource, PriorityStore, Resource, Simulator, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_within_capacity_is_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_serialization_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        spans = {}

        def worker(name, hold):
            yield res.request()
            start = sim.now
            yield hold
            res.release()
            spans[name] = (start, sim.now)

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 3.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert spans["a"] == (0.0, 5.0)
        assert spans["b"] == (5.0, 8.0)
        assert spans["c"] == (8.0, 9.0)

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_release_hands_over_to_waiter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        waiting = res.request()
        assert not waiting.triggered
        assert res.queue_length == 1
        res.release()
        assert waiting.triggered
        assert res.in_use == 1
        sim.run()

    def test_cancel_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        pending = res.request()
        assert res.cancel_request(pending) is True
        assert res.cancel_request(pending) is False
        res.release()
        assert res.in_use == 0
        sim.run()


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"
        sim.run()

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer():
            out.append((yield store.get()))
            out.append(sim.now)

        sim.process(consumer())
        sim.schedule(4.0, store.put, "late-item")
        sim.run()
        assert out == ["late-item", 4.0]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        out = []

        def consumer():
            for _ in range(5):
                out.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer(name):
            item = yield store.get()
            out.append((name, item))

        sim.process(consumer("g1"))
        sim.process(consumer("g2"))
        sim.schedule(1.0, store.put, "a")
        sim.schedule(2.0, store.put, "b")
        sim.run()
        assert out == [("g1", "a"), ("g2", "b")]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        p1 = store.put("a")
        p2 = store.put("b")
        assert p1.triggered and not p2.triggered
        got = store.get()
        assert got.value == "a"
        assert p2.triggered  # admitted when slot freed
        assert store.items == ("b",)
        sim.run()

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put("z")
        assert store.try_get() == "z"
        assert store.try_get() is None
        sim.run()

    def test_try_get_with_waiting_getters_raises(self):
        sim = Simulator()
        store = Store(sim)
        store.get()  # now a getter is queued
        with pytest.raises(RuntimeError):
            store.try_get()

    def test_cancel_get(self):
        sim = Simulator()
        store = Store(sim)
        ev = store.get()
        assert store.cancel_get(ev) is True
        store.put("x")
        assert store.items == ("x",)
        sim.run()

    def test_len_and_items(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)
        sim.run()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestPriorityStore:
    def test_lowest_priority_first(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        ps.put_item("low-urgency", priority=10)
        ps.put_item("urgent", priority=1)
        ps.put_item("medium", priority=5)
        out = []

        def consumer():
            for _ in range(3):
                out.append((yield ps.get()))

        sim.process(consumer())
        sim.run()
        assert out == ["urgent", "medium", "low-urgency"]

    def test_equal_priority_is_fifo(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        for i in range(4):
            ps.put_item(i, priority=0)
        out = []

        def consumer():
            for _ in range(4):
                out.append((yield ps.get()))

        sim.process(consumer())
        sim.run()
        assert out == [0, 1, 2, 3]

    def test_blocking_get_wakes_on_priority_put(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        out = []

        def consumer():
            out.append((yield ps.get()))

        sim.process(consumer())
        sim.schedule(1.0, ps.put_item, "item", 3)
        sim.run()
        assert out == ["item"]

    def test_items_sorted_view(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        ps.put_item("c", 3)
        ps.put_item("a", 1)
        ps.put_item("b", 2)
        assert ps.items == ("a", "b", "c")
        sim.run()


class TestArbitratedResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ArbitratedResource(sim, capacity=0)

    def test_grant_is_deferred_never_synchronous(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        req = res.request(key="a")
        assert not req.triggered  # decided one delta phase later
        sim.run()
        assert req.triggered
        assert res.in_use == 1

    def test_request_outside_process_needs_explicit_key(self):
        sim = Simulator()
        res = ArbitratedResource(sim, name="cpu")
        with pytest.raises(RuntimeError):
            res.request()

    def test_key_defaults_to_active_process_name(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        order = []

        def worker():
            yield res.request()
            order.append(sim.now)
            res.release()

        sim.process(worker(), name="w")
        sim.run()
        assert order == [0.0]

    def test_same_instant_contention_grants_in_key_order(self):
        # Three processes request at t=0; start order is c, a, b but the
        # arbitration key (the process name) decides who runs first.
        sim = Simulator()
        res = ArbitratedResource(sim, capacity=1)
        order = []

        def worker(name):
            yield res.request()
            order.append(name)
            yield 1.0
            res.release()

        for name in ("c", "a", "b"):
            sim.process(worker(name), name=name)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_key_fn_overrides_name_order(self):
        # key_fn inverts the lexicographic order: highest name wins.
        sim = Simulator()
        res = ArbitratedResource(
            sim, key_fn=lambda name: tuple(-ord(ch) for ch in name)
        )
        order = []

        def worker(name):
            yield res.request()
            order.append(name)
            yield 1.0
            res.release()

        for name in ("a", "b", "c"):
            sim.process(worker(name), name=name)
        sim.run()
        assert order == ["c", "b", "a"]

    def test_priority_waiter_overtakes_earlier_lower_priority(self):
        # This is a priority arbiter, not a FIFO: whenever a unit frees
        # up, the best *currently pending* key wins — even if a worse
        # key has been waiting longer (hardware polling-order
        # semantics, exactly how the LANai services its loops).
        sim = Simulator()
        res = ArbitratedResource(sim, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield 5.0
            res.release()

        def waiter(name, arrive):
            yield arrive
            yield res.request()
            order.append(name)
            res.release()

        sim.process(holder(), name="h")
        sim.process(waiter("z-first", 1.0), name="z")
        sim.process(waiter("a-second", 2.0), name="a")
        sim.run()
        assert order == ["a-second", "z-first"]

    def test_release_hands_over_in_key_order(self):
        sim = Simulator()
        res = ArbitratedResource(sim, capacity=2)
        order = []

        def worker(name, hold):
            yield res.request()
            order.append((sim.now, name))
            yield hold
            res.release()

        for name, hold in (("d", 5.0), ("c", 3.0), ("b", 1.0), ("a", 2.0)):
            sim.process(worker(name, hold), name=name)
        sim.run()
        # a and b win the initial arbitration; c takes b's unit at t=1,
        # d takes a's at t=2.
        assert order == [(0.0, "a"), (0.0, "b"), (1.0, "c"), (2.0, "d")]

    def test_cancel_request(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        holder = res.request(key="a")
        waiter = res.request(key="b")
        sim.run()
        assert holder.triggered and not waiter.triggered
        assert res.queue_length == 1
        assert res.cancel_request(waiter) is True
        assert res.cancel_request(waiter) is False
        res.release()
        sim.run()
        assert not waiter.triggered
        assert res.in_use == 0

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_cancelled_would_be_winner_is_skipped(self):
        """Lazy O(1) cancellation: the entry stays in the heap but the
        decision pass reaps it and grants the next key instead."""
        sim = Simulator()
        res = ArbitratedResource(sim)
        a = res.request(key="a")
        b = res.request(key="b")
        c = res.request(key="c")
        assert res.cancel_request(a) is True
        sim.run()
        assert not a.triggered
        assert b.triggered
        assert not c.triggered
        assert res.queue_length == 1

    def test_queue_length_counts_only_live_waiters(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        res.request(key="a")
        waiters = [res.request(key=f"w{i}") for i in range(4)]
        sim.run()
        assert res.queue_length == 4
        for w in waiters[1:3]:
            assert res.cancel_request(w) is True
        # Cancellation is in place (no heap scan), but the public count
        # is exact immediately.
        assert res.queue_length == 2

    def test_cancel_non_head_waiter_never_granted_on_release(self):
        sim = Simulator()
        res = ArbitratedResource(sim)
        holder = res.request(key="a")
        b = res.request(key="b")
        c = res.request(key="c")
        sim.run()
        assert holder.triggered
        assert res.cancel_request(b) is True
        res.release()
        sim.run()
        assert not b.triggered
        assert c.triggered
        assert res.queue_length == 0
