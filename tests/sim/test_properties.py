"""Property-based tests of the simulation kernel's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PriorityStore, Resource, Simulator, Store


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=80))
def test_callbacks_run_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert all(t == d for t, d in fired)


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=40
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_cancelled_callbacks_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, lambda i=i: fired.append(i))
        for i, delay in enumerate(delays)
    ]
    expected = set()
    for i, handle in enumerate(handles):
        if i < len(cancel_mask) and cancel_mask[i]:
            handle.cancel()
        else:
            expected.add(i)
    sim.run()
    assert set(fired) == expected


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_is_fifo(items):
    sim = Simulator()
    store = Store(sim)
    out = []

    def producer():
        for item in items:
            store.put(item)
            yield 1.0

    def consumer():
        for _ in items:
            out.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert out == items


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(min_value=-100, max_value=100), st.integers()),
        min_size=1,
        max_size=50,
    )
)
def test_priority_store_is_stable_heap(pairs):
    sim = Simulator()
    store = PriorityStore(sim)
    for priority, item in pairs:
        store.put_item((priority, item), priority=priority)
    out = []

    def consumer():
        for _ in pairs:
            out.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    priorities = [p for p, _ in out]
    assert priorities == sorted(priorities)
    # Stability: equal priorities keep insertion order.
    for priority in set(priorities):
        mine = [item for p, item in out if p == priority]
        inserted = [item for p, item in pairs if p == priority]
        assert mine == inserted


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=25),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = [0]

    def worker(hold):
        yield resource.request()
        peak[0] = max(peak[0], resource.in_use)
        assert resource.in_use <= capacity
        yield hold
        resource.release()

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert resource.in_use == 0
    assert peak[0] <= capacity
    assert peak[0] == min(capacity, len(holds))


@settings(max_examples=30, deadline=None)
@given(
    n_procs=st.integers(min_value=1, max_value=20),
    steps=st.integers(min_value=1, max_value=10),
)
def test_process_completion_accounting(n_procs, steps):
    sim = Simulator()

    def prog(i):
        for _ in range(steps):
            yield 1.0
        return i

    procs = [sim.process(prog(i)) for i in range(n_procs)]
    sim.run()
    assert all(p.completion.processed for p in procs)
    assert [p.completion.value for p in procs] == list(range(n_procs))
    assert sim.now == float(steps)
