"""Unit tests for events and condition combinators."""

import pytest

from repro.sim import AllOf, AnyOf, EventAlreadyTriggered, SimEvent, Simulator, Timeout


def test_event_lifecycle():
    sim = Simulator()
    ev = SimEvent(sim)
    assert not ev.triggered and not ev.processed
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    sim.run()
    assert ev.processed
    assert ev.ok is True
    assert ev.value == 42


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = SimEvent(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_double_succeed_raises():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_then_succeed_raises():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.fail(ValueError("boom"))
    ev.defuse()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()
    sim.run()


def test_fail_requires_exception():
    sim = Simulator()
    ev = SimEvent(sim)
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callbacks_run_in_order():
    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    ev.add_callback(lambda e: seen.append(1))
    ev.add_callback(lambda e: seen.append(2))
    ev.succeed()
    sim.run()
    assert seen == [1, 2]


def test_callback_after_processed_still_fires():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_remove_callback():
    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    cb = lambda e: seen.append(1)
    ev.add_callback(cb)
    assert ev.remove_callback(cb) is True
    assert ev.remove_callback(cb) is False
    ev.succeed()
    sim.run()
    assert seen == []


def test_unhandled_failure_raises_from_run():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    sim.run()


def test_timeout_fires_at_delay():
    sim = Simulator()
    t = Timeout(sim, 7.5, value="done")
    seen = []
    t.add_callback(lambda e: seen.append((sim.now, e.value)))
    sim.run()
    assert seen == [(7.5, "done")]


def test_timeout_negative_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -1.0)


def test_timeout_cannot_be_retriggered():
    sim = Simulator()
    t = Timeout(sim, 1.0)
    with pytest.raises(EventAlreadyTriggered):
        t.succeed()
    sim.run()


class TestAllOf:
    def test_waits_for_all(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(3)]
        combo = AllOf(sim, evs)
        seen = []
        combo.add_callback(lambda e: seen.append(e.value))
        evs[1].succeed("b")
        sim.run()
        assert seen == []
        evs[0].succeed("a")
        evs[2].succeed("c")
        sim.run()
        assert seen == [["a", "b", "c"]]

    def test_values_keep_child_order(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(3)]
        combo = AllOf(sim, evs)
        out = []
        combo.add_callback(lambda e: out.append(e.value))
        evs[2].succeed(2)
        evs[0].succeed(0)
        evs[1].succeed(1)
        sim.run()
        assert out == [[0, 1, 2]]

    def test_empty_succeeds_immediately(self):
        sim = Simulator()
        combo = AllOf(sim, [])
        sim.run()
        assert combo.processed and combo.ok

    def test_fails_fast_on_child_failure(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AllOf(sim, evs)
        failures = []
        combo.add_callback(lambda e: failures.append(e.value) if not e.ok else None)
        evs[0].fail(ValueError("child died"))
        sim.run()
        assert len(failures) == 1
        # The never-triggered sibling must not block anything.
        assert not evs[1].triggered

    def test_late_failure_after_trigger_is_defused(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AllOf(sim, evs)
        combo.add_callback(lambda e: None)
        evs[0].fail(ValueError("first"))
        sim.run()
        evs[1].fail(ValueError("second"))
        sim.run()  # must not raise: combo already failed, second defused


class TestAnyOf:
    def test_first_success_wins(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(3)]
        combo = AnyOf(sim, evs)
        out = []
        combo.add_callback(lambda e: out.append(e.value))
        evs[2].succeed("winner")
        sim.run()
        winner_event, winner_value = out[0]
        assert winner_event is evs[2]
        assert winner_value == "winner"

    def test_later_success_ignored(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AnyOf(sim, evs)
        combo.add_callback(lambda e: None)
        evs[0].succeed("first")
        sim.run()
        evs[1].succeed("second")
        sim.run()
        assert combo.value[0] is evs[0]

    def test_all_failures_fails(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AnyOf(sim, evs)
        out = []
        combo.add_callback(lambda e: out.append(e.ok))
        evs[0].fail(ValueError("a"))
        evs[1].fail(ValueError("b"))
        sim.run()
        assert out == [False]

    def test_single_failure_does_not_fail_combo(self):
        sim = Simulator()
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AnyOf(sim, evs)
        out = []
        combo.add_callback(lambda e: out.append(e.ok))
        evs[0].fail(ValueError("a"))
        sim.run()
        assert out == []
        evs[1].succeed("ok")
        sim.run()
        assert out == [True]
