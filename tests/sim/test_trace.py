"""Unit tests for tracing and statistics."""

import pytest

from repro.sim.trace import StatAccumulator, Tracer, TraceTruncated


class TestTracer:
    def test_disabled_tracer_drops_records_keeps_counters(self):
        tr = Tracer(enabled=False)
        tr.record(1.0, "wire", "nic0", "send")
        tr.count("packets")
        assert tr.records == []
        assert tr.counters["packets"] == 1

    def test_enabled_records(self):
        tr = Tracer(enabled=True)
        tr.record(2.5, "wire", "nic0", "send", size=8)
        assert len(tr.records) == 1
        rec = tr.records[0]
        assert rec.time == 2.5
        assert rec.category == "wire"
        assert rec.fields == (("size", 8),)

    def test_category_filter(self):
        tr = Tracer(enabled=True, categories={"wire"})
        tr.record(1.0, "wire", "a", "x")
        tr.record(1.0, "pci", "a", "y")
        assert len(tr.records) == 1
        assert tr.by_category("wire")[0].message == "x"
        assert tr.by_category("pci") == []

    def test_max_records_cap(self):
        tr = Tracer(enabled=True, max_records=3)
        for i in range(10):
            tr.record(float(i), "c", "s", "m")
        assert len(tr.records) == 3

    def test_count_increments(self):
        tr = Tracer()
        tr.count("acks")
        tr.count("acks", 4)
        assert tr.counters["acks"] == 5

    def test_snapshot_and_delta(self):
        tr = Tracer()
        tr.count("packets", 10)
        before = tr.snapshot()
        tr.count("packets", 7)
        tr.count("nacks", 2)
        assert tr.delta(before) == {"packets": 7, "nacks": 2}

    def test_delta_ignores_unchanged(self):
        tr = Tracer()
        tr.count("steady", 5)
        before = tr.snapshot()
        assert tr.delta(before) == {}

    def test_clear(self):
        tr = Tracer(enabled=True)
        tr.record(0.0, "c", "s", "m")
        tr.count("x")
        tr.clear()
        assert tr.records == [] and not tr.counters

    def test_record_str_contains_fields(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "wire", "nic3", "inject", dest=5)
        text = str(tr.records[0])
        assert "wire" in text and "nic3" in text and "dest=5" in text


class TestStatAccumulator:
    def test_empty_mean_raises(self):
        acc = StatAccumulator()
        with pytest.raises(ZeroDivisionError):
            _ = acc.mean

    def test_mean_min_max(self):
        acc = StatAccumulator()
        for v in [2.0, 4.0, 6.0]:
            acc.add(v)
        assert acc.mean == pytest.approx(4.0)
        assert acc.min_value == 2.0
        assert acc.max_value == 6.0
        assert acc.count == 3

    def test_merge(self):
        a, b = StatAccumulator(), StatAccumulator()
        a.add(1.0)
        a.add(3.0)
        b.add(10.0)
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(14.0 / 3.0)
        assert a.max_value == 10.0
        assert a.min_value == 1.0


class TestSpans:
    def test_begin_end_round_trip(self):
        tr = Tracer(enabled=True)
        span = tr.begin_span(1.0, "elan0.dma", "rdma_issue", dst=3)
        assert tr.open_span_count == 1
        assert not span.closed
        tr.end_span(span, 2.5)
        assert span.closed
        assert span.duration == pytest.approx(1.5)
        assert tr.open_span_count == 0
        assert tr.closed_spans() == [span]
        assert tr.lanes() == ["elan0.dma"]

    def test_disabled_tracer_spans_are_free(self):
        tr = Tracer(enabled=False)
        span = tr.begin_span(1.0, "lane", "work")
        assert span is None
        tr.end_span(span, 2.0)  # tolerates None
        assert tr.add_span(0.0, 1.0, "lane", "work") is None
        assert tr.spans == []

    def test_double_end_rejected(self):
        tr = Tracer(enabled=True)
        span = tr.begin_span(0.0, "lane", "work")
        tr.end_span(span, 1.0)
        with pytest.raises(ValueError, match="already ended"):
            tr.end_span(span, 2.0)

    def test_clear_resets_span_state(self):
        tr = Tracer(enabled=True)
        tr.begin_span(0.0, "lane", "work")
        tr.add_span(0.0, 1.0, "lane", "work")
        tr.clear()
        assert tr.spans == []
        assert tr.open_span_count == 0
        assert not tr.truncated


class TestTruncation:
    """Regression: hitting max_records used to drop silently; now the
    drop is counted and `truncated` lets exporters refuse lossy data."""

    def test_record_overflow_is_counted(self):
        tr = Tracer(enabled=True, max_records=2)
        for t in range(4):
            tr.record(float(t), "wire", "nic0", "send")
        assert len(tr.records) == 2
        assert tr.dropped_records == 2
        assert tr.truncated

    def test_span_overflow_is_counted(self):
        tr = Tracer(enabled=True, max_records=1)
        tr.add_span(0.0, 1.0, "lane", "a")
        assert tr.add_span(1.0, 2.0, "lane", "b") is None
        assert tr.begin_span(2.0, "lane", "c") is None
        assert tr.dropped_spans == 2
        assert tr.truncated

    def test_untruncated_by_default(self):
        tr = Tracer(enabled=True)
        tr.record(0.0, "wire", "nic0", "send")
        tr.add_span(0.0, 1.0, "lane", "a")
        assert not tr.truncated

    def test_exporter_refuses_truncated_trace(self):
        from repro.tools import chrome_trace

        tr = Tracer(enabled=True, max_records=1)
        tr.add_span(0.0, 1.0, "lane", "a")
        tr.add_span(1.0, 2.0, "lane", "b")
        with pytest.raises(TraceTruncated):
            chrome_trace(tr)
        forced = chrome_trace(tr, force=True)
        assert forced["metadata"]["warnings"]


class TestStatAccumulatorEmpty:
    """Regression: an empty accumulator's +/-inf sentinels used to leak
    through merge() and into JSON-bound dicts."""

    def test_merge_empty_into_empty(self):
        a, b = StatAccumulator(), StatAccumulator()
        a.merge(b)
        assert a.count == 0
        assert a.min_value == float("inf")
        assert a.max_value == float("-inf")

    def test_merge_empty_into_populated_keeps_extrema(self):
        a, b = StatAccumulator(), StatAccumulator()
        a.add(2.0)
        a.merge(b)
        assert a.min_value == 2.0
        assert a.max_value == 2.0

    def test_as_dict_empty_is_json_safe(self):
        import json

        d = StatAccumulator().as_dict()
        assert d == {"count": 0, "total": 0.0, "mean": None, "min": None, "max": None}
        json.dumps(d)  # must not need allow_nan

    def test_as_dict_populated(self):
        acc = StatAccumulator()
        acc.add(1.0)
        acc.add(3.0)
        assert acc.as_dict() == {
            "count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0,
        }
