"""Unit tests for tracing and statistics."""

import pytest

from repro.sim.trace import StatAccumulator, Tracer


class TestTracer:
    def test_disabled_tracer_drops_records_keeps_counters(self):
        tr = Tracer(enabled=False)
        tr.record(1.0, "wire", "nic0", "send")
        tr.count("packets")
        assert tr.records == []
        assert tr.counters["packets"] == 1

    def test_enabled_records(self):
        tr = Tracer(enabled=True)
        tr.record(2.5, "wire", "nic0", "send", size=8)
        assert len(tr.records) == 1
        rec = tr.records[0]
        assert rec.time == 2.5
        assert rec.category == "wire"
        assert rec.fields == (("size", 8),)

    def test_category_filter(self):
        tr = Tracer(enabled=True, categories={"wire"})
        tr.record(1.0, "wire", "a", "x")
        tr.record(1.0, "pci", "a", "y")
        assert len(tr.records) == 1
        assert tr.by_category("wire")[0].message == "x"
        assert tr.by_category("pci") == []

    def test_max_records_cap(self):
        tr = Tracer(enabled=True, max_records=3)
        for i in range(10):
            tr.record(float(i), "c", "s", "m")
        assert len(tr.records) == 3

    def test_count_increments(self):
        tr = Tracer()
        tr.count("acks")
        tr.count("acks", 4)
        assert tr.counters["acks"] == 5

    def test_snapshot_and_delta(self):
        tr = Tracer()
        tr.count("packets", 10)
        before = tr.snapshot()
        tr.count("packets", 7)
        tr.count("nacks", 2)
        assert tr.delta(before) == {"packets": 7, "nacks": 2}

    def test_delta_ignores_unchanged(self):
        tr = Tracer()
        tr.count("steady", 5)
        before = tr.snapshot()
        assert tr.delta(before) == {}

    def test_clear(self):
        tr = Tracer(enabled=True)
        tr.record(0.0, "c", "s", "m")
        tr.count("x")
        tr.clear()
        assert tr.records == [] and not tr.counters

    def test_record_str_contains_fields(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "wire", "nic3", "inject", dest=5)
        text = str(tr.records[0])
        assert "wire" in text and "nic3" in text and "dest=5" in text


class TestStatAccumulator:
    def test_empty_mean_raises(self):
        acc = StatAccumulator()
        with pytest.raises(ZeroDivisionError):
            _ = acc.mean

    def test_mean_min_max(self):
        acc = StatAccumulator()
        for v in [2.0, 4.0, 6.0]:
            acc.add(v)
        assert acc.mean == pytest.approx(4.0)
        assert acc.min_value == 2.0
        assert acc.max_value == 6.0
        assert acc.count == 3

    def test_merge(self):
        a, b = StatAccumulator(), StatAccumulator()
        a.add(1.0)
        a.add(3.0)
        b.add(10.0)
        a.merge(b)
        assert a.count == 3
        assert a.mean == pytest.approx(14.0 / 3.0)
        assert a.max_value == 10.0
        assert a.min_value == 1.0
