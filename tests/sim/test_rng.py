"""Unit tests for deterministic RNG streams."""

import pytest

from repro.sim import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(seed=42)
    b = DeterministicRng(seed=42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(seed=1)
    b = DeterministicRng(seed=2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_substream_independent_of_draw_order():
    root1 = DeterministicRng(seed=7)
    root1.random()  # consume from the root stream
    s1 = root1.substream("faults")

    root2 = DeterministicRng(seed=7)
    s2 = root2.substream("faults")  # derived before any draws
    assert [s1.random() for _ in range(5)] == [s2.random() for _ in range(5)]


def test_substreams_with_different_names_differ():
    root = DeterministicRng(seed=7)
    a, b = root.substream("a"), root.substream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_permutation_is_valid():
    rng = DeterministicRng(seed=3)
    perm = rng.permutation(16)
    assert sorted(perm) == list(range(16))


def test_permutation_deterministic():
    assert DeterministicRng(seed=5).permutation(8) == DeterministicRng(seed=5).permutation(8)


def test_uniform_bounds():
    rng = DeterministicRng(seed=1)
    for _ in range(100):
        v = rng.uniform(2.0, 3.0)
        assert 2.0 <= v <= 3.0


def test_bernoulli_validation():
    rng = DeterministicRng(seed=1)
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)


def test_bernoulli_extremes():
    rng = DeterministicRng(seed=1)
    assert not any(rng.bernoulli(0.0) for _ in range(50))
    assert all(rng.bernoulli(1.0) for _ in range(50))


def test_exponential_zero_mean():
    rng = DeterministicRng(seed=1)
    assert rng.exponential(0.0) == 0.0


def test_exponential_positive():
    rng = DeterministicRng(seed=1)
    assert all(rng.exponential(5.0) >= 0.0 for _ in range(100))


def test_randint_inclusive():
    rng = DeterministicRng(seed=9)
    draws = {rng.randint(0, 2) for _ in range(200)}
    assert draws == {0, 1, 2}


def test_choice():
    rng = DeterministicRng(seed=9)
    seq = ["a", "b", "c"]
    assert all(rng.choice(seq) in seq for _ in range(20))
