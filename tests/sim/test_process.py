"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, SimEvent, Simulator, Timeout


def test_process_runs_and_returns():
    sim = Simulator()

    def prog():
        yield 5.0
        return "done"

    proc = sim.process(prog())
    sim.run()
    assert proc.completion.processed
    assert proc.completion.value == "done"
    assert sim.now == 5.0


def test_yield_number_sleeps():
    sim = Simulator()
    stamps = []

    def prog():
        stamps.append(sim.now)
        yield 1.5
        stamps.append(sim.now)
        yield 2.5
        stamps.append(sim.now)

    sim.process(prog())
    sim.run()
    assert stamps == [0.0, 1.5, 4.0]


def test_yield_event_receives_value():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def prog():
        got.append((yield ev))

    sim.process(prog())
    sim.schedule(3.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_yield_already_processed_event():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed("early")
    got = []

    def prog():
        yield 10.0  # let the event be processed long before we wait on it
        got.append((yield ev))

    sim.process(prog())
    sim.run()
    assert got == ["early"]


def test_yield_failed_event_throws_into_process():
    sim = Simulator()
    ev = SimEvent(sim)
    caught = []

    def prog():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    sim.process(prog())
    sim.schedule(1.0, ev.fail, ValueError("wire fault"))
    sim.run()
    assert caught == ["wire fault"]


def test_join_process():
    sim = Simulator()
    order = []

    def child():
        yield 5.0
        order.append("child")
        return 99

    def parent():
        result = yield sim.process(child())
        order.append(("parent", result, sim.now))

    sim.process(parent())
    sim.run()
    assert order == ["child", ("parent", 99, 5.0)]


def test_process_crash_raises_if_unjoined():
    sim = Simulator()

    def prog():
        yield 1.0
        raise RuntimeError("bug in NIC firmware")

    sim.process(prog())
    with pytest.raises(RuntimeError, match="bug in NIC firmware"):
        sim.run()


def test_process_crash_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def bad():
        yield 1.0
        raise RuntimeError("inner")

    def joiner():
        try:
            yield sim.process(bad())
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(joiner())
    sim.run()
    assert caught == ["inner"]


def test_yield_bad_type_fails_process():
    sim = Simulator()

    def prog():
        yield "not an event"

    proc = sim.process(prog())
    proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
    sim.run()
    assert proc.completion.ok is False
    assert isinstance(proc.completion.value, TypeError)


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_interrupt_waiting_process():
    sim = Simulator()
    seen = []

    def prog():
        try:
            yield Timeout(sim, 100.0)
        except Interrupt as intr:
            seen.append((sim.now, intr.cause))

    proc = sim.process(prog())
    sim.schedule(10.0, proc.interrupt, "timeout-cancelled")
    sim.run()
    assert seen == [(10.0, "timeout-cancelled")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def prog():
        yield 1.0

    proc = sim.process(prog())
    sim.run()
    assert not proc.alive
    proc.interrupt("late")  # must not raise
    sim.run()


def test_interrupted_process_can_rewait():
    sim = Simulator()
    seen = []

    def prog():
        t = Timeout(sim, 50.0, value="fired")
        try:
            yield t
        except Interrupt:
            seen.append("interrupted")
        seen.append((yield t))  # the original timeout still fires

    proc = sim.process(prog())
    sim.schedule(5.0, proc.interrupt)
    sim.run()
    assert seen == ["interrupted", "fired"]
    assert sim.now == 50.0


def test_alive_property():
    sim = Simulator()

    def prog():
        yield 3.0

    proc = sim.process(prog())
    assert proc.alive
    sim.run()
    assert not proc.alive


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def prog(name, delay):
        for _ in range(3):
            yield delay
            order.append((sim.now, name))

    sim.process(prog("a", 1.0))
    sim.process(prog("b", 1.0))
    sim.run()
    # Same-time resumptions keep spawn order.
    assert order == [
        (1.0, "a"), (1.0, "b"),
        (2.0, "a"), (2.0, "b"),
        (3.0, "a"), (3.0, "b"),
    ]


def test_process_return_value_none_by_default():
    sim = Simulator()

    def prog():
        yield 1.0

    proc = sim.process(prog())
    sim.run()
    assert proc.completion.value is None


def test_negative_sleep_catchable_inside_process():
    # Regression: the ValueError for a negative sleep used to be raised
    # in Process._step itself, escaping into the simulator's run loop
    # instead of reaching the offending generator.
    sim = Simulator()
    caught = []

    def prog():
        try:
            yield -1.0
        except ValueError as err:
            caught.append(str(err))
        yield 2.0

    proc = sim.process(prog())
    sim.run()
    assert caught and "negative" in caught[0]
    assert proc.completion.ok is True
    assert sim.now == 2.0


def test_negative_sleep_fails_process_not_run_loop():
    sim = Simulator()

    def prog():
        yield -0.5

    proc = sim.process(prog())
    proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
    sim.run()
    assert proc.completion.ok is False
    assert isinstance(proc.completion.value, ValueError)


def test_negative_timeout_subclass_also_routed():
    # The numeric-subclass slow path must apply the same guard.
    class Weird(float):
        pass

    sim = Simulator()
    caught = []

    def prog():
        try:
            yield Weird(-3.0)
        except ValueError:
            caught.append(sim.now)

    sim.process(prog())
    sim.run()
    assert caught == [0.0]
