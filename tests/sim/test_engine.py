"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_schedule_order_by_time():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "mid")
    sim.run()
    assert seen == ["early", "mid", "late"]


def test_same_time_events_fifo():
    sim = Simulator()
    seen = []
    for i in range(20):
        sim.schedule(3.0, seen.append, i)
    sim.run()
    assert seen == list(range(20))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_excludes_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "in")
    sim.schedule(50.0, seen.append, "out")
    sim.run(until=10.0)
    assert seen == ["in"]
    assert sim.now == 10.0
    sim.run()
    assert seen == ["in", "out"]


def test_run_until_boundary_inclusive():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "edge")
    sim.run(until=10.0)
    assert seen == ["edge"]


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append((sim.now, n))
        if n > 0:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 3)
    sim.run()
    assert seen == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


def test_run_until_event_stops_early():
    from repro.sim import SimEvent

    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    sim.schedule(1.0, ev.succeed)
    sim.schedule(5.0, seen.append, "later")
    sim.run(until_event=ev)
    assert ev.processed
    assert seen == []


def test_run_until_and_until_event_time_bound_wins():
    """When the time bound hits first, ``now`` still lands on ``until``
    and the event stays pending for a later run."""
    from repro.sim import SimEvent

    sim = Simulator()
    ev = SimEvent(sim)
    sim.schedule(50.0, ev.succeed)
    sim.run(until=10.0, until_event=ev)
    assert not ev.processed
    assert sim.now == 10.0
    sim.run(until_event=ev)
    assert ev.processed
    assert sim.now == 50.0


def test_run_until_and_until_event_event_bound_wins():
    from repro.sim import SimEvent

    sim = Simulator()
    ev = SimEvent(sim)
    seen = []
    sim.schedule(2.0, ev.succeed)
    sim.schedule(8.0, seen.append, "later")
    sim.run(until=10.0, until_event=ev)
    assert ev.processed
    assert sim.now == 2.0
    assert seen == []


def test_run_until_with_event_idle_heap_advances_clock():
    """Time bound + event on an empty heap: clock still advances."""
    from repro.sim import SimEvent

    sim = Simulator()
    ev = SimEvent(sim)
    sim.run(until=25.0, until_event=ev)
    assert not ev.processed
    assert sim.now == 25.0


def test_detached_and_handle_entries_share_fifo_order():
    """Both heap-entry shapes tie-break on the global sequence number:
    same-time entries run in scheduling order regardless of shape."""
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "handle-a")
    sim.schedule_detached(1.0, seen.append, "detached-b")
    sim.schedule(1.0, seen.append, "handle-c")
    sim.schedule_detached(1.0, seen.append, "detached-d")
    sim.run()
    assert seen == ["handle-a", "detached-b", "handle-c", "detached-d"]


def test_detached_entries_counted_and_uncancellable():
    sim = Simulator()
    seen = []
    before = sim.events_scheduled
    assert sim.schedule_detached(1.0, seen.append, "x") is None
    assert sim.events_scheduled == before + 1
    with pytest.raises(ValueError):
        sim.schedule_detached(-1.0, seen.append, "never")
    sim.run()
    assert seen == ["x"]


def test_detached_fifo_survives_compaction():
    """Heap compaction (after many cancels) preserves the FIFO
    tie-break between surviving same-time entries of both shapes."""
    sim = Simulator()
    seen = []
    handles = [sim.schedule(5.0, seen.append, f"cancelled{i}") for i in range(2048)]
    sim.schedule(5.0, seen.append, "keep-1")
    sim.schedule_detached(5.0, seen.append, "keep-2")
    sim.schedule(5.0, seen.append, "keep-3")
    for handle in handles:
        handle.cancel()
    sim.schedule(5.0, seen.append, "keep-4")  # triggers compaction
    assert sim._pending < 100, "compaction did not fire"
    sim.schedule_detached(5.0, seen.append, "keep-5")
    sim.run()
    assert seen == ["keep-1", "keep-2", "keep-3", "keep-4", "keep-5"]


def test_clock_monotonic_across_many_events():
    sim = Simulator()
    stamps = []
    import random

    rng = random.Random(7)
    for _ in range(500):
        sim.schedule(rng.uniform(0, 100), lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == 500


class TestQuiescenceFastForward:
    """The calendar queue drops all-cancelled buckets wholesale: the
    clock jumps over quiescent intervals without materializing their
    timestamps, while armed (live) timers spanning the gap still fire
    at their exact times."""

    def test_all_cancelled_buckets_are_skipped(self):
        sim = Simulator()
        seen = []
        timers = [sim.schedule(float(t), seen.append, t) for t in range(10, 5000, 10)]
        sim.schedule(9000.0, seen.append, "end")
        for timer in timers:
            timer.cancel()
        observed = []
        while sim.step():
            observed.append(sim.now)
        # The clock never lands on any cancelled-timer timestamp.
        assert observed == [9000.0]
        assert seen == ["end"]
        assert sim._cancelled == 0
        assert sim._pending == 0

    def test_armed_timer_spanning_gap_still_fires(self):
        """A live timer in the middle of a field of cancelled ones must
        fire at its exact time — fast-forward may only skip buckets with
        nothing live in them."""
        sim = Simulator()
        seen = []
        cancelled = [
            sim.schedule(float(t), seen.append, ("dead", t))
            for t in range(100, 1000, 100)
        ]
        sim.schedule(550.0, seen.append, ("live-detached", 550.0))
        survivor = sim.schedule(500.0, lambda: seen.append(("live", sim.now)))
        sim.schedule(2000.0, lambda: seen.append(("tail", sim.now)))
        for timer in cancelled:
            timer.cancel()
        sim.run()
        assert seen == [
            ("live", 500.0),
            ("live-detached", 550.0),
            ("tail", 2000.0),
        ]
        assert survivor.executed

    def test_mixed_bucket_reaps_cancelled_but_runs_live(self):
        """Cancelled and live entries at the same timestamp: the live
        ones run (in FIFO order), the cancelled ones are reaped in the
        same activation pass."""
        sim = Simulator()
        seen = []
        a = sim.schedule(5.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        c = sim.schedule(5.0, seen.append, "c")
        sim.schedule(5.0, seen.append, "d")
        a.cancel()
        c.cancel()
        sim.run()
        assert seen == ["b", "d"]
        assert sim._cancelled == 0

    def test_run_until_fast_forwards_over_cancelled_tail(self):
        """peek() must reap an all-cancelled future bucket rather than
        report its time, so run(until=...) neither stalls nor executes
        anything dead."""
        sim = Simulator()
        timer = sim.schedule(50.0, lambda: None)
        timer.cancel()
        assert sim.peek() == float("inf")
        sim.run(until=100.0)
        assert sim.now == 100.0
        assert sim._pending == 0

    def test_cancel_during_drain_of_same_bucket(self):
        """An entry cancelled by an earlier same-time callback must not
        run even though its bucket was already activated."""
        sim = Simulator()
        seen = []
        handles = {}

        def killer():
            seen.append("killer")
            handles["victim"].cancel()

        sim.schedule(3.0, killer)
        handles["victim"] = sim.schedule(3.0, seen.append, "victim")
        sim.schedule(3.0, seen.append, "after")
        sim.run()
        assert seen == ["killer", "after"]


class TestLateCancel:
    """Regression: cancelling a handle whose call already ran used to
    increment the compaction counter, desynchronizing it from the heap
    (a later compaction pass would then run on wrong accounting)."""

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator()
        seen = []
        call = sim.schedule(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]
        assert call.executed
        call.cancel()
        call.cancel()
        assert not call.cancelled
        assert sim._cancelled == 0

    def test_cancel_before_execution_still_counts_once(self):
        sim = Simulator()
        call = sim.schedule(1.0, lambda: None)
        call.cancel()
        call.cancel()
        assert call.cancelled
        assert sim._cancelled == 1

    def test_counter_matches_buried_entries(self):
        # Run a mixed workload, then late-cancel everything that already
        # fired: the counter must only reflect entries still in the heap.
        sim = Simulator()
        fired = [sim.schedule(float(i), lambda: None) for i in range(10)]
        sim.run()
        pending = [sim.schedule(100.0 + i, lambda: None) for i in range(5)]
        for call in fired:
            call.cancel()
        assert sim._cancelled == 0
        for call in pending[:2]:
            call.cancel()
        assert sim._cancelled == 2
        sim.run()
        assert all(c.executed for c in pending[2:])
