"""Unit tests for the PCI bus model."""

import pytest

from repro.pci import DmaDirection, PciBus, PciParams
from repro.sim import Simulator

PCI_66 = PciParams(pio_write_us=0.5, dma_setup_us=0.8, bandwidth_bytes_per_us=400.0)


def test_params_validation():
    with pytest.raises(ValueError):
        PciParams(0.5, 0.8, 0.0)
    with pytest.raises(ValueError):
        PciParams(-0.5, 0.8, 100.0)


def test_dma_time_formula():
    assert PCI_66.dma_time(400) == pytest.approx(0.8 + 1.0)


def test_pio_write_costs_fixed_time():
    sim = Simulator()
    bus = PciBus(sim, PCI_66)
    stamps = []

    def prog():
        yield from bus.pio_write()
        stamps.append(sim.now)

    sim.process(prog())
    sim.run()
    assert stamps == [pytest.approx(0.5)]
    assert bus.pio_count == 1


def test_dma_costs_setup_plus_transfer():
    sim = Simulator()
    bus = PciBus(sim, PCI_66)
    stamps = []

    def prog():
        yield from bus.dma(800, DmaDirection.NIC_TO_HOST)
        stamps.append(sim.now)

    sim.process(prog())
    sim.run()
    assert stamps == [pytest.approx(0.8 + 2.0)]
    assert bus.dma_count == 1
    assert bus.bytes_transferred == 800


def test_negative_dma_rejected():
    sim = Simulator()
    bus = PciBus(sim, PCI_66)

    def prog():
        yield from bus.dma(-1, DmaDirection.HOST_TO_NIC)

    proc = sim.process(prog())
    proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
    sim.run()
    assert isinstance(proc.completion.value, ValueError)


def test_bus_arbitration_serializes_masters():
    """Two DMA masters on one bus can't transfer concurrently."""
    sim = Simulator()
    bus = PciBus(sim, PCI_66)
    done = {}

    def master(name):
        yield from bus.dma(400, DmaDirection.HOST_TO_NIC)  # 1.8us each
        done[name] = sim.now

    sim.process(master("a"))
    sim.process(master("b"))
    sim.run()
    assert done["a"] == pytest.approx(1.8)
    assert done["b"] == pytest.approx(3.6)


def test_direction_counters():
    sim = Simulator()
    bus = PciBus(sim, PCI_66)

    def prog():
        yield from bus.dma(8, DmaDirection.HOST_TO_NIC)
        yield from bus.dma(8, DmaDirection.NIC_TO_HOST)
        yield from bus.dma(8, DmaDirection.NIC_TO_HOST)

    sim.process(prog())
    sim.run()
    assert bus.tracer.counters["pci.dma.host_to_nic"] == 1
    assert bus.tracer.counters["pci.dma.nic_to_host"] == 2
    assert bus.transactions == 3
