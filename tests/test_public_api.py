"""The README's import surface must exist and work."""

import pytest

import repro


def test_version():
    assert repro.__version__


def test_lazy_reexports():
    assert repro.build_myrinet_cluster is not None
    assert repro.build_quadrics_cluster is not None
    assert repro.run_barrier_experiment is not None
    assert repro.HardwareProfile is not None
    assert repro.PROFILES
    assert repro.BarrierModel is not None
    assert repro.fit_barrier_model is not None


def test_unknown_attribute():
    with pytest.raises(AttributeError):
        repro.flux_capacitor


def test_readme_quickstart_snippet():
    """The exact code from the README front page."""
    from repro import build_myrinet_cluster, run_barrier_experiment

    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=8)
    result = run_barrier_experiment(
        cluster,
        barrier="nic-collective",
        algorithm="dissemination",
        iterations=30,
        warmup=5,
    )
    assert 12.0 < result.mean_latency_us < 17.0  # ~14.2us per Fig. 6


def test_subpackages_importable():
    import repro.collectives
    import repro.experiments
    import repro.host
    import repro.model
    import repro.mpi
    import repro.myrinet
    import repro.network
    import repro.pci
    import repro.quadrics
    import repro.sim
    import repro.tools
    import repro.topology
