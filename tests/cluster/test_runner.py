"""Unit + integration tests for the experiment runner."""

import pytest

from repro.cluster import (
    build_myrinet_cluster,
    build_quadrics_cluster,
    run_barrier_experiment,
)


def myrinet(n=4):
    return build_myrinet_cluster("lanai_xp_xeon2400", nodes=n)


def quadrics(n=4):
    return build_quadrics_cluster("elan3_piii700", nodes=n)


class TestValidation:
    def test_barrier_kind_checked_per_network(self):
        with pytest.raises(ValueError, match="invalid for this cluster"):
            run_barrier_experiment(myrinet(), "gsync")
        with pytest.raises(ValueError, match="invalid for this cluster"):
            run_barrier_experiment(quadrics(), "host")

    def test_not_a_cluster(self):
        with pytest.raises(TypeError):
            run_barrier_experiment(object(), "host")

    def test_warmup_and_iterations_positive(self):
        with pytest.raises(ValueError):
            run_barrier_experiment(myrinet(), "host", warmup=0)
        with pytest.raises(ValueError):
            run_barrier_experiment(myrinet(), "host", iterations=0)

    def test_nodes_subset_range(self):
        with pytest.raises(ValueError):
            run_barrier_experiment(myrinet(4), "host", nodes=5)
        with pytest.raises(ValueError):
            run_barrier_experiment(myrinet(4), "host", nodes=1)


class TestMeasurement:
    def test_result_fields(self):
        result = run_barrier_experiment(
            myrinet(), "nic-collective", iterations=10, warmup=3
        )
        assert result.profile == "lanai_xp_xeon2400"
        assert result.barrier == "nic-collective"
        assert result.nodes == 4
        assert result.iterations == 10
        assert result.mean_latency_us > 0
        assert result.min_iteration_us <= result.mean_latency_us
        assert result.max_iteration_us >= result.mean_latency_us
        assert result.total_us == pytest.approx(result.mean_latency_us * 10)

    def test_permutation_recorded(self):
        result = run_barrier_experiment(
            myrinet(), "nic-collective", iterations=5, warmup=2, seed=3
        )
        assert sorted(result.node_permutation) == [0, 1, 2, 3]

    def test_permute_nodes_false_uses_identity(self):
        result = run_barrier_experiment(
            myrinet(), "nic-collective", iterations=5, warmup=2,
            permute_nodes=False,
        )
        assert result.node_permutation == (0, 1, 2, 3)

    def test_nodes_subset(self):
        result = run_barrier_experiment(
            myrinet(8), "nic-collective", iterations=5, warmup=2, nodes=4
        )
        assert result.nodes == 4
        assert len(result.node_permutation) == 4

    def test_deterministic_given_seed(self):
        a = run_barrier_experiment(myrinet(), "host", iterations=8, warmup=2, seed=5)
        b = run_barrier_experiment(myrinet(), "host", iterations=8, warmup=2, seed=5)
        assert a.mean_latency_us == b.mean_latency_us
        assert a.node_permutation == b.node_permutation

    def test_counters_cover_timed_window_only(self):
        result = run_barrier_experiment(
            myrinet(), "nic-collective", iterations=10, warmup=5
        )
        # 4 nodes x 2 messages (dissemination, N=4) x 10 timed iterations
        assert result.counters["wire.barrier"] == 4 * 2 * 10

    def test_str(self):
        result = run_barrier_experiment(myrinet(), "host", iterations=3, warmup=1)
        text = str(result)
        assert "host" in text and "N=4" in text


class TestAllKindsRun:
    @pytest.mark.parametrize("barrier", ["host", "nic-direct", "nic-collective"])
    def test_myrinet_kinds(self, barrier):
        result = run_barrier_experiment(myrinet(), barrier, iterations=5, warmup=2)
        assert result.mean_latency_us > 0

    @pytest.mark.parametrize("barrier", ["gsync", "hgsync", "nic-chained"])
    def test_quadrics_kinds(self, barrier):
        result = run_barrier_experiment(quadrics(), barrier, iterations=5, warmup=2)
        assert result.mean_latency_us > 0

    @pytest.mark.parametrize("algorithm", ["dissemination", "pairwise-exchange",
                                           "gather-broadcast"])
    def test_algorithms_host(self, algorithm):
        result = run_barrier_experiment(
            myrinet(), "host", algorithm, iterations=4, warmup=2
        )
        assert result.mean_latency_us > 0


class TestSchemeOrdering:
    def test_collective_fastest_host_slowest(self):
        results = {
            kind: run_barrier_experiment(
                myrinet(8), kind, iterations=20, warmup=5
            ).mean_latency_us
            for kind in ("nic-collective", "nic-direct", "host")
        }
        assert results["nic-collective"] < results["nic-direct"] < results["host"]

    def test_quadrics_nic_beats_tree(self):
        nic = run_barrier_experiment(
            quadrics(8), "nic-chained", iterations=20, warmup=5
        ).mean_latency_us
        tree = run_barrier_experiment(
            quadrics(8), "gsync", iterations=20, warmup=5
        ).mean_latency_us
        assert nic < tree
