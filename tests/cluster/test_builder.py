"""Unit tests for cluster assembly."""

import pytest

from repro.cluster import (
    MyrinetCluster,
    QuadricsCluster,
    build_cluster,
    build_myrinet_cluster,
    build_quadrics_cluster,
    get_profile,
)
from repro.network import FaultInjector


def test_build_myrinet_by_name():
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=4)
    assert isinstance(cluster, MyrinetCluster)
    assert cluster.n == 4
    assert len(cluster.nics) == 4
    assert len(cluster.ports) == 4
    assert len(cluster.pcis) == 4


def test_build_quadrics_by_name():
    cluster = build_quadrics_cluster("elan3_piii700", nodes=8)
    assert isinstance(cluster, QuadricsCluster)
    assert len(cluster.nics) == 8


def test_build_by_profile_object():
    profile = get_profile("lanai91_piii700")
    cluster = build_myrinet_cluster(profile, nodes=2)
    assert cluster.profile is profile


def test_build_cluster_dispatches_on_network():
    assert isinstance(build_cluster("lanai_xp_xeon2400", 2), MyrinetCluster)
    assert isinstance(build_cluster("elan3_piii700", 2), QuadricsCluster)


def test_wrong_network_rejected():
    with pytest.raises(ValueError, match="not a Myrinet"):
        build_myrinet_cluster("elan3_piii700", nodes=2)
    with pytest.raises(ValueError, match="not a Quadrics"):
        build_quadrics_cluster("lanai_xp_xeon2400", nodes=2)


def test_node_count_limits():
    with pytest.raises(ValueError):
        build_myrinet_cluster("lanai_xp_xeon2400", nodes=0)
    with pytest.raises(ValueError, match="at most"):
        build_myrinet_cluster("lanai_xp_xeon2400", nodes=4097)


def test_myrinet_three_level_clos_capacity():
    """The three-level folded Clos of Xbar16s reaches 512 hosts."""
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=65)
    assert cluster.topology.levels == 3
    cluster512 = build_myrinet_cluster("lanai_xp_xeon2400", nodes=512)
    assert cluster512.n == 512


def test_myrinet_four_level_clos_capacity():
    """The scale sweeps extend the Clos one more level: 4096 hosts."""
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=513)
    assert cluster.topology.levels == 4


def test_quadrics_accepts_fault_injection():
    """Chaos campaigns inject timing faults (delay, slowdown) on QsNet
    too; the injector threads through to the fabric like on Myrinet."""
    faults = FaultInjector()
    cluster = QuadricsCluster(get_profile("elan3_piii700"), 4, faults=faults)
    assert cluster.faults is faults
    assert cluster.fabric.faults is faults
    built = build_quadrics_cluster("elan3_piii700", nodes=4, faults=faults)
    assert built.faults is faults


def test_myrinet_accepts_fault_injection():
    faults = FaultInjector()
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=2, faults=faults)
    assert cluster.faults is faults


def test_myrinet_topology_is_clos():
    from repro.topology import ClosTopology

    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=32)
    assert isinstance(cluster.topology, ClosTopology)
    assert cluster.topology.levels == 2


def test_quadrics_topology_is_fat_tree():
    from repro.topology import QuaternaryFatTree

    cluster = build_quadrics_cluster(nodes=16)
    assert isinstance(cluster.topology, QuaternaryFatTree)


def test_hardware_barrier_factory():
    cluster = build_quadrics_cluster(nodes=4)
    hw = cluster.hardware_barrier()
    assert hw.ranks == (0, 1, 2, 3)
    hw_sub = cluster.hardware_barrier([1, 3])
    assert hw_sub.ranks == (1, 3)


def test_shared_simulator_and_tracer():
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=3)
    assert all(nic.sim is cluster.sim for nic in cluster.nics)
    assert all(nic.tracer is cluster.tracer for nic in cluster.nics)
