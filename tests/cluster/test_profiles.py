"""Unit tests for hardware profiles."""

import pytest

from repro.cluster import PROFILES, HardwareProfile, get_profile
from repro.host import HostParams
from repro.myrinet import GmParams
from repro.network import WireParams
from repro.pci import PciParams


def test_three_paper_systems_present():
    assert set(PROFILES) == {
        "lanai_xp_xeon2400",
        "lanai91_piii700",
        "elan3_piii700",
    }


def test_get_profile():
    assert get_profile("elan3_piii700").network == "quadrics"
    with pytest.raises(ValueError, match="unknown profile"):
        get_profile("infiniband")


def test_get_profile_accepts_name_variants():
    """Case, extra underscores, and dashes all resolve to the same
    profile object (exact registry keys stay the fast path)."""
    canonical = get_profile("lanai91_piii700")
    for alias in (
        "LANAI91_PIII700",
        "lanai_91_piii_700",
        "LANAI-91-PIII-700",
        "Lanai91-PIII700",
    ):
        assert get_profile(alias) is canonical
    assert get_profile("ELAN3-PIII-700") is get_profile("elan3_piii700")
    with pytest.raises(ValueError, match="unknown profile"):
        get_profile("lanai91piii700x")


def test_network_kinds():
    assert get_profile("lanai_xp_xeon2400").network == "myrinet"
    assert get_profile("lanai91_piii700").network == "myrinet"


def test_myrinet_profiles_have_gm_params():
    for name in ("lanai_xp_xeon2400", "lanai91_piii700"):
        assert get_profile(name).gm is not None
        assert get_profile(name).elan is None


def test_quadrics_profile_has_elan_params():
    profile = get_profile("elan3_piii700")
    assert profile.elan is not None
    assert profile.gm is None


def test_profile_validation():
    wire = WireParams(0.1, 0.3, 0.05, 250.0)
    pci = PciParams(0.5, 0.5, 400.0)
    host = HostParams(1, 1, 0.5, 0.5, 0.5)
    with pytest.raises(ValueError, match="unknown network"):
        HardwareProfile("x", "infiniband", "", 8, wire, pci, host)
    with pytest.raises(ValueError, match="GmParams"):
        HardwareProfile("x", "myrinet", "", 8, wire, pci, host)
    with pytest.raises(ValueError, match="ElanParams"):
        HardwareProfile("x", "quadrics", "", 8, wire, pci, host)


def test_slower_nic_has_higher_task_costs():
    """LANai 9.1 (133 MHz) must cost more per task than LANai-XP (225 MHz)."""
    xp = get_profile("lanai_xp_xeon2400").gm
    old = get_profile("lanai91_piii700").gm
    for field in ("t_rx_header", "t_coll_trigger", "t_inject", "t_sdma_event"):
        assert getattr(old, field) > getattr(xp, field), field


def test_faster_bus_on_xeon_cluster():
    xp = get_profile("lanai_xp_xeon2400").pci
    p3 = get_profile("lanai91_piii700").pci
    assert xp.pio_write_us < p3.pio_write_us
    assert xp.bandwidth_bytes_per_us > p3.bandwidth_bytes_per_us


def test_faster_host_on_xeon_cluster():
    xp = get_profile("lanai_xp_xeon2400").host
    p3 = get_profile("lanai91_piii700").host
    assert xp.send_overhead_us < p3.send_overhead_us
    assert xp.recv_overhead_us < p3.recv_overhead_us


def test_barrier_packet_is_padded_static_ack():
    gm = get_profile("lanai_xp_xeon2400").gm
    assert gm.barrier_packet_bytes == gm.ack_bytes + gm.barrier_payload_bytes
