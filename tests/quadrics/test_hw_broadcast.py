"""Tests for the QsNet hardware data broadcast (elan_hw_broadcast)."""


from repro.quadrics import elan_hw_broadcast


def run(qc, *programs):
    procs = [qc.sim.process(p) for p in programs]
    qc.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"


def test_payload_reaches_every_rank(qcluster):
    qc = qcluster
    ranks = list(range(8))
    got = {}

    def prog(node):
        value = yield from elan_hw_broadcast(
            qc.ports[node], ranks, 0, size_bytes=256,
            value="cfg" if node == 0 else None,
        )
        got[node] = value

    run(qc, *(prog(i) for i in ranks))
    assert got == {i: "cfg" for i in ranks}


def test_single_wire_broadcast(qcluster):
    qc = qcluster
    ranks = list(range(8))

    def prog(node):
        yield from elan_hw_broadcast(
            qc.ports[node], ranks, 0, 64, value="x" if node == 0 else None
        )

    run(qc, *(prog(i) for i in ranks))
    # One hardware broadcast packet serves all 8 receivers.
    assert qc.tracer.counters["wire.bcast"] == 1


def test_receivers_dma_payload_to_host(qcluster):
    qc = qcluster
    ranks = list(range(4))

    def prog(node):
        yield from elan_hw_broadcast(
            qc.ports[node], ranks, 0, 512, value="d" if node == 0 else None
        )

    run(qc, *(prog(i) for i in ranks))
    # A non-root node: payload DMA + host-event DMA.
    assert qc.pcis[2].tracer.counters.get("pci2.dma.nic_to_host", 0) == 2


def test_consecutive_broadcasts(qcluster):
    qc = qcluster
    ranks = list(range(4))
    got = {i: [] for i in ranks}

    def prog(node):
        for seq in range(5):
            value = yield from elan_hw_broadcast(
                qc.ports[node], ranks, seq, 32,
                value=seq * 10 if node == 0 else None,
            )
            got[node].append(value)

    run(qc, *(prog(i) for i in ranks))
    assert all(v == [0, 10, 20, 30, 40] for v in got.values())


def test_delivery_simultaneous_across_receivers(qcluster):
    """The fat tree replicates in the switches: all receivers get the

    payload at the same instant (before their own host processing)."""
    qc = qcluster
    ranks = list(range(8))
    exits = {}

    def prog(node):
        yield from elan_hw_broadcast(
            qc.ports[node], ranks, 0, 8, value=1 if node == 0 else None
        )
        exits[node] = qc.sim.now

    run(qc, *(prog(i) for i in ranks))
    non_root = [exits[i] for i in ranks[1:]]
    # PCI DMA / polling differences only: well under a microsecond.
    assert max(non_root) - min(non_root) < 1.0


def test_quadrics_comm_bcast():
    from repro.cluster import build_quadrics_cluster
    from repro.mpi import create_communicators

    cluster = build_quadrics_cluster(nodes=8)
    comms = create_communicators(cluster)
    got = {}

    def program(comm):
        yield from comm.barrier()
        value = yield from comm.bcast(
            value={"go": True} if comm.rank == 0 else None, size_bytes=64
        )
        got[comm.rank] = value
        yield from comm.barrier()

    procs = [cluster.sim.process(program(c)) for c in comms]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed
    assert all(got[r] == {"go": True} for r in range(8))
