"""Integration tests for the Elan3 NIC: RDMA, chaining, tports."""


from repro.quadrics import RdmaDescriptor


def run(qc, *programs):
    procs = [qc.sim.process(p) for p in programs]
    qc.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"


def test_zero_byte_rdma_fires_remote_event(qcluster):
    qc = qcluster

    def prog():
        yield from qc.ports[0].trigger_rdma(RdmaDescriptor(dst=1, remote_event="hit"))

    run(qc, prog())
    assert qc.nics[1].event("hit").count == 1
    assert qc.tracer.counters["elan.rdma_issued"] == 1
    assert qc.tracer.counters["elan.event_fired"] == 1


def test_rdma_with_data_crosses_both_pci_buses(qcluster):
    qc = qcluster

    def prog():
        yield from qc.ports[0].trigger_rdma(
            RdmaDescriptor(dst=1, remote_event="data_done", size_bytes=256)
        )

    run(qc, prog())
    assert qc.pcis[0].tracer.counters.get("pci0.dma.host_to_nic", 0) == 1
    assert qc.pcis[1].tracer.counters.get("pci1.dma.nic_to_host", 0) >= 1


def test_chained_rdma_descriptor(qcluster):
    """Arrival at node 1 triggers a pre-armed RDMA to node 2 (§7)."""
    qc = qcluster
    qc.nics[1].chain("incoming", 1, RdmaDescriptor(dst=2, remote_event="final"))

    def prog():
        yield from qc.ports[0].trigger_rdma(
            RdmaDescriptor(dst=1, remote_event="incoming")
        )

    run(qc, prog())
    assert qc.nics[2].event("final").count == 1


def test_chain_of_three_hops_accumulates_latency(qcluster):
    qc = qcluster
    qc.nics[1].chain("s1", 1, RdmaDescriptor(dst=2, remote_event="s2"))
    qc.nics[2].chain("s2", 1, RdmaDescriptor(dst=3, remote_event="s3"))
    arrival_time = []
    qc.nics[3].event("s3").arm(1, lambda: arrival_time.append(qc.sim.now))

    single_hop_time = []
    qc.nics[1].event("single").arm(1, lambda: single_hop_time.append(qc.sim.now))

    def prog():
        yield from qc.ports[0].trigger_rdma(RdmaDescriptor(dst=1, remote_event="single"))
        start = qc.sim.now
        yield from qc.ports[0].trigger_rdma(RdmaDescriptor(dst=1, remote_event="s1"))
        return start

    run(qc, prog())
    assert len(arrival_time) == 1
    # Three wire hops + two chained triggers must cost clearly more than one hop.
    assert arrival_time[0] > single_hop_time[0]


def test_local_event_set_after_injection(qcluster):
    qc = qcluster

    def prog():
        yield from qc.ports[0].trigger_rdma(
            RdmaDescriptor(dst=1, remote_event="r", local_event="sent")
        )

    run(qc, prog())
    assert qc.nics[0].event("sent").count == 1


def test_arm_host_notify_delivers_to_host(qcluster):
    qc = qcluster
    qc.nics[1].arm_host_notify("done", 1, value=("barrier", 7))
    got = []

    def sender():
        yield from qc.ports[0].trigger_rdma(RdmaDescriptor(dst=1, remote_event="done"))

    def waiter():
        ev = yield from qc.ports[1].wait_host_event(lambda e: e == ("barrier", 7))
        got.append((ev, qc.sim.now))

    run(qc, sender(), waiter())
    assert got and got[0][0] == ("barrier", 7)


def test_set_local_event(qcluster):
    qc = qcluster

    def prog():
        yield from qc.ports[0].set_local_event("mine")

    run(qc, prog())
    assert qc.nics[0].event("mine").count == 1


def test_tport_send_recv(qcluster):
    qc = qcluster
    got = []

    def sender():
        yield from qc.ports[0].tport_send(1, tag=("hello", 0), payload="world")

    def receiver():
        msg = yield from qc.ports[1].tport_recv_tag(("hello", 0))
        got.append(msg)

    run(qc, sender(), receiver())
    assert got[0].payload == "world"
    assert got[0].src == 0


def test_tport_out_of_order_buffering(qcluster):
    qc = qcluster
    order = []

    def sender():
        yield from qc.ports[0].tport_send(1, tag="b", payload=2)
        yield from qc.ports[0].tport_send(1, tag="a", payload=1)

    def receiver():
        first = yield from qc.ports[1].tport_recv_tag("a")
        second = yield from qc.ports[1].tport_recv_tag("b")
        order.append((first.payload, second.payload))

    run(qc, sender(), receiver())
    assert order == [(1, 2)]


def test_rdma_packets_counted_on_wire(qcluster):
    qc = qcluster

    def prog():
        yield from qc.ports[0].trigger_rdma(RdmaDescriptor(dst=1, remote_event="x"))

    run(qc, prog())
    assert qc.tracer.counters["wire.rdma"] == 1
