"""Shared fixtures: a minimal Quadrics/Elan3 test cluster."""

import pytest

from repro.host import HostCpu, HostParams
from repro.network import Fabric, WireParams
from repro.pci import PciBus, PciParams
from repro.quadrics import Elan3Nic, ElanParams, ElanPort, HardwareBarrier
from repro.sim import Simulator, Tracer
from repro.topology import QuaternaryFatTree

TEST_ELAN = ElanParams(
    t_event_fire=0.5,
    t_rdma_issue=0.5,
    t_pio_command=0.2,
    t_host_event=0.3,
    t_thread_step=0.8,
    t_tport_match=0.8,
    t_hw_flag_check=0.2,
    hw_retry_backoff_us=5.0,
)

TEST_WIRE = WireParams(
    inject_us=0.05,
    switch_latency_us=0.1,
    propagation_us=0.02,
    bandwidth_bytes_per_us=400.0,
)

TEST_PCI = PciParams(pio_write_us=0.3, dma_setup_us=0.3, bandwidth_bytes_per_us=500.0)

TEST_HOST = HostParams(
    send_overhead_us=0.4,
    recv_overhead_us=0.3,
    poll_us=0.2,
    poll_interval_us=0.4,
    barrier_call_us=0.2,
)


class QuadricsTestCluster:
    def __init__(self, n=8, elan=TEST_ELAN, faults=None, sim=None):
        self.sim = sim if sim is not None else Simulator()
        self.tracer = Tracer()
        self.topology = QuaternaryFatTree(n)
        self.fabric = Fabric(
            self.sim, self.topology, TEST_WIRE, tracer=self.tracer, faults=faults
        )
        self.pcis = [
            PciBus(self.sim, TEST_PCI, name=f"pci{i}", tracer=self.tracer)
            for i in range(n)
        ]
        self.cpus = [HostCpu(self.sim, TEST_HOST, node_id=i) for i in range(n)]
        self.nics = [
            Elan3Nic(self.sim, i, elan, self.fabric, self.pcis[i], tracer=self.tracer)
            for i in range(n)
        ]
        self.ports = [
            ElanPort(self.sim, i, self.nics[i], self.cpus[i], self.pcis[i])
            for i in range(n)
        ]
        self.elan = elan

    def hardware_barrier(self, ranks=None):
        return HardwareBarrier(
            self.sim,
            self.topology,
            TEST_WIRE,
            ranks if ranks is not None else range(len(self.nics)),
            t_flag_check_us=TEST_ELAN.t_hw_flag_check,
            retry_backoff_us=TEST_ELAN.hw_retry_backoff_us,
        )


@pytest.fixture
def qcluster():
    return QuadricsTestCluster()
