"""Elite HW-barrier probe-budget exhaustion: fallback and escalation.

When a straggler outlives ``max_rounds`` probe rounds, the controller
publishes a failure word instead of the release.  ``elan_hgsync`` then
either runs the software tree for that seq (``fallback=True``, counting
``elan.hw_fallback``) or surfaces a typed
:class:`~repro.collectives.BarrierFailure` (``fallback=False``) — it
never hangs either way.
"""

import pytest

from repro.collectives import BarrierFailure
from repro.quadrics import HardwareBarrier, elan_hgsync
from repro.tools.simlint import check_quiescent
from tests.quadrics.conftest import TEST_ELAN, TEST_WIRE, QuadricsTestCluster


class _Profile:
    name = "test"


def tiny_budget_barrier(qc, ranks, max_rounds=2):
    return HardwareBarrier(
        qc.sim,
        qc.topology,
        TEST_WIRE,
        ranks,
        t_flag_check_us=TEST_ELAN.t_hw_flag_check,
        retry_backoff_us=TEST_ELAN.hw_retry_backoff_us,
        tracer=qc.tracer,
        max_rounds=max_rounds,
    )


def straggler_prog(qc, hw, rank, ranks, seq, outcomes, fallback=True, late=100.0):
    yield late * (1 if rank == ranks[-1] else 0)
    try:
        yield from elan_hgsync(qc.ports[rank], hw, ranks, seq, fallback=fallback)
    except BarrierFailure as failure:
        outcomes[rank] = failure
    else:
        outcomes[rank] = "ok"


def run(qc, *programs):
    procs = [qc.sim.process(p) for p in programs]
    qc.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"
    return procs


def test_budget_exhaustion_falls_back_to_software_tree():
    qc = QuadricsTestCluster(n=4)
    ranks = list(range(4))
    hw = tiny_budget_barrier(qc, ranks)
    outcomes = {}

    run(qc, *(straggler_prog(qc, hw, r, ranks, 0, outcomes) for r in ranks))

    assert all(outcomes[r] == "ok" for r in ranks)
    assert hw.failures == 1
    assert qc.tracer.counters["elite.hw_give_up"] == 1
    # Every rank ran the tree fallback after the failure word.
    assert qc.tracer.counters["elan.hw_fallback"] == len(ranks)


def test_budget_exhaustion_without_fallback_escalates():
    qc = QuadricsTestCluster(n=4)
    qc.profile = _Profile()
    qc.sim.track_processes()
    ranks = list(range(4))
    hw = tiny_budget_barrier(qc, ranks)
    outcomes = {}

    run(
        qc,
        *(
            straggler_prog(qc, hw, r, ranks, 0, outcomes, fallback=False)
            for r in ranks
        ),
    )

    for rank in ranks:
        failure = outcomes[rank]
        assert isinstance(failure, BarrierFailure)
        assert failure.reason == "hw-barrier-retry-budget-exhausted"
        assert failure.seq == 0
    # Bounded: the run ends shortly after the last probe round, far
    # inside the straggler's own arrival skew plus a few backoffs.
    assert qc.sim.now < 100.0 + 10 * TEST_ELAN.hw_retry_backoff_us
    report = check_quiescent(qc)
    assert report.ok, report.render()


def test_consecutive_failed_seqs_each_fall_back_once():
    # fallback_ordinal: the tree fallback numbers its barriers by
    # failure ordinal, so two exhausted seqs chain two tree barriers
    # with correctly advancing event thresholds.
    qc = QuadricsTestCluster(n=4)
    ranks = list(range(4))
    hw = tiny_budget_barrier(qc, ranks)
    outcomes0, outcomes1 = {}, {}

    def prog(rank):
        yield from straggler_prog(qc, hw, rank, ranks, 0, outcomes0)
        yield from straggler_prog(qc, hw, rank, ranks, 1, outcomes1)

    run(qc, *(prog(r) for r in ranks))

    assert all(outcomes0[r] == "ok" for r in ranks)
    assert all(outcomes1[r] == "ok" for r in ranks)
    assert hw.failures == 2
    assert hw.fallback_ordinal(0) == 0
    assert hw.fallback_ordinal(1) == 1
    assert qc.tracer.counters["elan.hw_fallback"] == 2 * len(ranks)


def test_generous_budget_never_falls_back():
    qc = QuadricsTestCluster(n=4)
    ranks = list(range(4))
    hw = tiny_budget_barrier(qc, ranks, max_rounds=10000)
    outcomes = {}

    run(qc, *(straggler_prog(qc, hw, r, ranks, 0, outcomes) for r in ranks))

    assert all(outcomes[r] == "ok" for r in ranks)
    assert hw.failures == 0
    assert hw.retries > 0  # the straggler did force re-probes
    assert "elan.hw_fallback" not in qc.tracer.counters


def test_max_rounds_validation():
    qc = QuadricsTestCluster(n=2)
    with pytest.raises(ValueError):
        tiny_budget_barrier(qc, [0, 1], max_rounds=0)
