"""Integration tests for elan_gsync / elan_hgsync."""

import pytest

from repro.quadrics import elan_gsync, elan_hgsync


def run(qc, *programs):
    procs = [qc.sim.process(p) for p in programs]
    qc.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc} never finished"


def gsync_prog(qc, rank, ranks, seq=0, record=None):
    yield from elan_gsync(qc.ports[rank], ranks, seq)
    if record is not None:
        record[rank] = qc.sim.now


def test_gsync_completes_all_ranks(qcluster):
    qc = qcluster
    ranks = list(range(8))
    done = {}
    run(qc, *(gsync_prog(qc, r, ranks, record=done) for r in ranks))
    assert set(done) == set(ranks)


def test_gsync_no_rank_exits_before_last_enters(qcluster):
    """Barrier semantics: exit time >= every entry time."""
    qc = qcluster
    ranks = list(range(8))
    done = {}
    entries = {}

    def prog(rank, delay):
        yield delay
        entries[rank] = qc.sim.now
        yield from elan_gsync(qc.ports[rank], ranks, 0)
        done[rank] = qc.sim.now

    run(qc, *(prog(r, float(r)) for r in ranks))
    last_entry = max(entries.values())
    assert all(t >= last_entry for t in done.values())


def test_gsync_consecutive_iterations(qcluster):
    qc = qcluster
    ranks = list(range(4))
    done = {r: [] for r in ranks}

    def prog(rank):
        for seq in range(3):
            yield from elan_gsync(qc.ports[rank], ranks, seq)
            done[rank].append(qc.sim.now)

    run(qc, *(prog(r) for r in ranks))
    for rank in ranks:
        assert len(done[rank]) == 3
        assert done[rank] == sorted(done[rank])


def test_hgsync_with_hardware_completes(qcluster):
    qc = qcluster
    ranks = list(range(8))
    hw = qc.hardware_barrier(ranks)
    done = {}

    def prog(rank):
        yield from elan_hgsync(qc.ports[rank], hw, ranks, 0, hw_enabled=True)
        done[rank] = qc.sim.now

    run(qc, *(prog(r) for r in ranks))
    assert set(done) == set(ranks)
    assert hw.retries == 0  # synchronized entry: first probe passes


def test_hgsync_faster_than_gsync_when_synchronized(qcluster):
    """At 8 nodes the hardware barrier beats the host-driven tree."""
    qc = qcluster
    ranks = list(range(8))
    hw = qc.hardware_barrier(ranks)
    hg_span, gs_span = {}, {}

    def prog(rank):
        start = qc.sim.now
        yield from elan_hgsync(qc.ports[rank], hw, ranks, 0)
        hg_span[rank] = qc.sim.now - start
        mid = qc.sim.now
        # gsync's seq counts *gsync* invocations on this event set,
        # starting at 0 (cumulative event-word thresholds).
        yield from elan_gsync(qc.ports[rank], ranks, 0)
        gs_span[rank] = qc.sim.now - mid

    run(qc, *(prog(r) for r in ranks))
    assert max(hg_span.values()) < max(gs_span.values())


def test_hgsync_stragglers_force_retries(qcluster):
    qc = qcluster
    ranks = list(range(4))
    hw = qc.hardware_barrier(ranks)

    def prog(rank):
        # Rank 3 arrives very late: probes must retry.
        yield 100.0 * (1 if rank == 3 else 0)
        yield from elan_hgsync(qc.ports[rank], hw, ranks, 0)

    run(qc, *(prog(r) for r in ranks))
    assert hw.retries > 0


def test_hgsync_disabled_falls_back_to_tree(qcluster):
    qc = qcluster
    ranks = list(range(4))
    done = {}

    def prog(rank):
        yield from elan_hgsync(qc.ports[rank], None, ranks, 0, hw_enabled=False)
        done[rank] = qc.sim.now

    run(qc, *(prog(r) for r in ranks))
    assert set(done) == set(ranks)


def test_hardware_barrier_validation(qcluster):
    qc = qcluster
    with pytest.raises(ValueError):
        qc.hardware_barrier([])
    hw = qc.hardware_barrier([0, 1])
    with pytest.raises(ValueError):
        hw.enter(5, 0)
