"""Unit tests for Elan event words."""

import pytest

from repro.quadrics import ElanEvent


def test_initial_count_zero():
    assert ElanEvent().count == 0


def test_set_event_increments():
    ev = ElanEvent()
    ev.set_event()
    ev.set_event(3)
    assert ev.count == 4


def test_set_event_validation():
    with pytest.raises(ValueError):
        ElanEvent().set_event(0)


def test_arm_threshold_validation():
    with pytest.raises(ValueError):
        ElanEvent().arm(0, lambda: None)


def test_action_fires_at_threshold():
    ev = ElanEvent()
    fired = []
    ev.arm(2, lambda: fired.append("go"))
    ev.set_event()
    assert fired == []
    ev.set_event()
    assert fired == ["go"]


def test_action_fires_immediately_if_count_already_reached():
    """Early set-events accumulate — the property that makes

    back-to-back barriers safe (§7 semantics)."""
    ev = ElanEvent()
    ev.set_event(5)
    fired = []
    ev.arm(3, lambda: fired.append("late-armer"))
    assert fired == ["late-armer"]


def test_action_fires_once():
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: fired.append(1))
    ev.set_event()
    ev.set_event()
    assert fired == [1]


def test_multiple_actions_different_thresholds():
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: fired.append("a"))
    ev.arm(3, lambda: fired.append("b"))
    ev.set_event()
    assert fired == ["a"]
    ev.set_event(2)
    assert fired == ["a", "b"]


def test_armed_count():
    ev = ElanEvent()
    ev.arm(5, lambda: None)
    ev.arm(6, lambda: None)
    assert ev.armed_count == 2
    ev.set_event(5)
    assert ev.armed_count == 1


def test_cumulative_thresholds_model_consecutive_barriers():
    """Barrier k arms threshold k+1 on the same event word."""
    ev = ElanEvent()
    completions = []
    for k in range(3):
        ev.arm(k + 1, lambda k=k: completions.append(k))
    for _ in range(3):
        ev.set_event()
    assert completions == [0, 1, 2]


def test_waiters_armed_out_of_order_fire_in_threshold_order():
    """The armed set is a threshold min-heap, not an arm-order list.

    Regression guard for the prearmed-chain scan: with one waiter per
    future iteration parked on the head event, a set-event must only
    compare against the *lowest* armed threshold, and a jump that
    crosses several thresholds fires them lowest-first.
    """
    ev = ElanEvent()
    fired = []
    ev.arm(5, lambda: fired.append("c"))
    ev.arm(1, lambda: fired.append("a"))
    ev.arm(3, lambda: fired.append("b"))
    ev.set_event()
    assert fired == ["a"]
    ev.set_event(4)  # crosses 3 and 5 in one increment
    assert fired == ["a", "b", "c"]


def test_equal_thresholds_fire_in_arm_order():
    ev = ElanEvent()
    fired = []
    ev.arm(2, lambda: fired.append("first"))
    ev.arm(2, lambda: fired.append("second"))
    ev.set_event(2)
    assert fired == ["first", "second"]


def test_action_may_rearm_the_same_event():
    """A chained action arming an already-reached threshold fires inline
    (the chained barrier's back-to-back iteration handoff)."""
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: ev.arm(1, lambda: fired.append("rearmed")))
    ev.set_event()
    assert fired == ["rearmed"]


def test_action_may_set_the_same_event():
    """A set-event from inside an action wakes later thresholds."""
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: ev.set_event())
    ev.arm(2, lambda: fired.append("chained"))
    ev.set_event()
    assert fired == ["chained"]
    assert ev.count == 2
    assert ev.armed_count == 0
