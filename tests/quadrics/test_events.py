"""Unit tests for Elan event words."""

import pytest

from repro.quadrics import ElanEvent


def test_initial_count_zero():
    assert ElanEvent().count == 0


def test_set_event_increments():
    ev = ElanEvent()
    ev.set_event()
    ev.set_event(3)
    assert ev.count == 4


def test_set_event_validation():
    with pytest.raises(ValueError):
        ElanEvent().set_event(0)


def test_arm_threshold_validation():
    with pytest.raises(ValueError):
        ElanEvent().arm(0, lambda: None)


def test_action_fires_at_threshold():
    ev = ElanEvent()
    fired = []
    ev.arm(2, lambda: fired.append("go"))
    ev.set_event()
    assert fired == []
    ev.set_event()
    assert fired == ["go"]


def test_action_fires_immediately_if_count_already_reached():
    """Early set-events accumulate — the property that makes

    back-to-back barriers safe (§7 semantics)."""
    ev = ElanEvent()
    ev.set_event(5)
    fired = []
    ev.arm(3, lambda: fired.append("late-armer"))
    assert fired == ["late-armer"]


def test_action_fires_once():
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: fired.append(1))
    ev.set_event()
    ev.set_event()
    assert fired == [1]


def test_multiple_actions_different_thresholds():
    ev = ElanEvent()
    fired = []
    ev.arm(1, lambda: fired.append("a"))
    ev.arm(3, lambda: fired.append("b"))
    ev.set_event()
    assert fired == ["a"]
    ev.set_event(2)
    assert fired == ["a", "b"]


def test_armed_count():
    ev = ElanEvent()
    ev.arm(5, lambda: None)
    ev.arm(6, lambda: None)
    assert ev.armed_count == 2
    ev.set_event(5)
    assert ev.armed_count == 1


def test_cumulative_thresholds_model_consecutive_barriers():
    """Barrier k arms threshold k+1 on the same event word."""
    ev = ElanEvent()
    completions = []
    for k in range(3):
        ev.arm(k + 1, lambda k=k: completions.append(k))
    for _ in range(3):
        ev.set_event()
    assert completions == [0, 1, 2]
