"""Unit tests for the host CPU model."""

import pytest

from repro.host import HostCpu, HostParams
from repro.sim import Simulator

PARAMS = HostParams(
    send_overhead_us=0.8,
    recv_overhead_us=0.5,
    poll_us=0.2,
    poll_interval_us=0.1,
    barrier_call_us=0.3,
)


def test_params_validation():
    with pytest.raises(ValueError):
        HostParams(-1, 0, 0, 0, 0)


def test_compute_advances_time():
    sim = Simulator()
    cpu = HostCpu(sim, PARAMS, node_id=0)
    stamps = []

    def prog():
        yield from cpu.compute(2.5)
        stamps.append(sim.now)

    sim.process(prog())
    sim.run()
    assert stamps == [pytest.approx(2.5)]
    assert cpu.busy_us == pytest.approx(2.5)


def test_negative_compute_rejected():
    sim = Simulator()
    cpu = HostCpu(sim, PARAMS, node_id=0)

    def prog():
        yield from cpu.compute(-1.0)

    proc = sim.process(prog())
    proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
    sim.run()
    assert isinstance(proc.completion.value, ValueError)


def test_cpu_serializes_threads():
    sim = Simulator()
    cpu = HostCpu(sim, PARAMS, node_id=0)
    done = {}

    def thread(name):
        yield from cpu.compute(1.0)
        done[name] = sim.now

    sim.process(thread("t1"))
    sim.process(thread("t2"))
    sim.run()
    assert done["t1"] == pytest.approx(1.0)
    assert done["t2"] == pytest.approx(2.0)


def test_default_name():
    sim = Simulator()
    assert HostCpu(sim, PARAMS, node_id=3).name == "host3"
