"""Unit tests for the wormhole fabric."""

import pytest

from repro.network import Fabric, FaultInjector, Packet, PacketKind, WireParams
from repro.sim import Simulator
from repro.topology import ClosTopology, QuaternaryFatTree

PARAMS = WireParams(
    inject_us=0.1,
    switch_latency_us=0.3,
    propagation_us=0.05,
    bandwidth_bytes_per_us=250.0,
)


def make_fabric(n=4, topo_cls=ClosTopology, faults=None, params=PARAMS):
    sim = Simulator()
    fabric = Fabric(sim, topo_cls(n), params, faults=faults)
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        fabric.attach(i, lambda p, i=i: inboxes[i].append(p))
    return sim, fabric, inboxes


def test_wire_params_validation():
    with pytest.raises(ValueError):
        WireParams(0.1, 0.3, 0.05, 0.0)
    with pytest.raises(ValueError):
        WireParams(-0.1, 0.3, 0.05, 100.0)


def test_delivery_latency_single_crossbar():
    sim, fabric, inboxes = make_fabric()
    pkt = Packet(0, 1, PacketKind.BARRIER, size_bytes=25)
    fabric.transmit(pkt)
    sim.run()
    # inject 0.1 + 1 switch * 0.3 + 2 links * 0.05 + 25/250
    assert pkt.latency == pytest.approx(0.1 + 0.3 + 0.1 + 0.1)
    assert inboxes[1] == [pkt]


def test_delivery_records_timestamps():
    sim, fabric, _ = make_fabric()
    pkt = Packet(0, 2, PacketKind.DATA, 100)
    sim.schedule(5.0, fabric.transmit, pkt)
    sim.run()
    assert pkt.sent_at == 5.0
    assert pkt.delivered_at > 5.0


def test_unattached_port_rejected():
    sim = Simulator()
    fabric = Fabric(sim, ClosTopology(4), PARAMS)
    with pytest.raises(ValueError):
        fabric.transmit(Packet(0, 1, PacketKind.DATA, 8))


def test_double_attach_rejected():
    sim, fabric, _ = make_fabric()
    with pytest.raises(ValueError):
        fabric.attach(0, lambda p: None)


def test_link_contention_serializes():
    """Two packets on the same directional link queue up."""
    sim, fabric, inboxes = make_fabric()
    big = Packet(0, 1, PacketKind.DATA, size_bytes=2500)  # 10us serialization
    small = Packet(0, 1, PacketKind.DATA, size_bytes=25)
    fabric.transmit(big)
    fabric.transmit(small)
    sim.run()
    # The small packet can't claim the nic0->xbar0 link until big drains.
    assert small.delivered_at > big.delivered_at


def test_disjoint_paths_do_not_interact():
    sim, fabric, inboxes = make_fabric()
    a = Packet(0, 1, PacketKind.DATA, 2500)
    b = Packet(2, 3, PacketKind.DATA, 2500)
    fabric.transmit(a)
    fabric.transmit(b)
    sim.run()
    assert a.delivered_at == pytest.approx(b.delivered_at)


def test_dropped_packet_never_arrives():
    fi = FaultInjector()
    fi.drop_nth_matching(lambda p: True)
    sim, fabric, inboxes = make_fabric(faults=fi)
    fabric.transmit(Packet(0, 1, PacketKind.BARRIER, 8))
    sim.run()
    assert inboxes[1] == []
    assert fi.dropped == 1


def test_counters():
    sim, fabric, _ = make_fabric()
    tracer = fabric.tracer
    fabric.transmit(Packet(0, 1, PacketKind.BARRIER, 8))
    fabric.transmit(Packet(1, 2, PacketKind.ACK, 8))
    sim.run()
    assert tracer.counters["wire.packets"] == 2
    assert tracer.counters["wire.barrier"] == 1
    assert tracer.counters["wire.ack"] == 1
    assert fabric.delivered_count == 2


def test_fat_tree_farther_nodes_take_longer():
    sim, fabric, _ = make_fabric(n=16, topo_cls=QuaternaryFatTree)
    near = Packet(0, 1, PacketKind.RDMA, 8)   # same leaf: 1 switch
    far = Packet(0, 15, PacketKind.RDMA, 8)   # via root: 3 switches
    fabric.transmit(near)
    fabric.transmit(far)
    sim.run()
    assert far.latency > near.latency


def test_hardware_broadcast_reaches_all_simultaneously():
    sim, fabric, inboxes = make_fabric(n=16, topo_cls=QuaternaryFatTree)
    pkt = Packet(0, 0, PacketKind.BCAST, 8)
    fabric.broadcast(pkt, targets=range(16))
    sim.run()
    assert all(len(inboxes[i]) == 1 for i in range(16))
    assert pkt.delivered_at is not None


def test_hardware_broadcast_rejected_on_clos():
    sim, fabric, _ = make_fabric(n=4, topo_cls=ClosTopology)
    with pytest.raises(TypeError):
        fabric.broadcast(Packet(0, 0, PacketKind.BCAST, 8), targets=range(4))


def test_broadcast_requires_attached_targets():
    sim = Simulator()
    fabric = Fabric(sim, QuaternaryFatTree(4), PARAMS)
    fabric.attach(0, lambda p: None)
    with pytest.raises(ValueError):
        fabric.broadcast(Packet(0, 0, PacketKind.BCAST, 8), targets=[0, 1])


def test_same_instant_contention_is_transmit_order_independent():
    # Two NICs inject to the same destination at the same microsecond;
    # they contend for the destination's last link.  The arbiter grants
    # in canonical packet order, so per-packet latencies must not depend
    # on which transmit() call the scheduler happened to pop first.
    def run(order):
        sim, fabric, _ = make_fabric(4)
        pkts = {src: Packet(src, 2, PacketKind.BARRIER, 25) for src in (0, 1)}
        for src in order:
            sim.schedule(1.0, fabric.transmit, pkts[src])
        sim.run()
        return {src: p.latency for src, p in pkts.items()}

    forward = run((0, 1))
    assert forward == run((1, 0))
    # They genuinely contended: one of them queued behind the other.
    assert forward[0] != forward[1]


def test_arbitration_adds_no_simulated_time_when_uncontended():
    sim, fabric, _ = make_fabric(4)
    lone = Packet(0, 1, PacketKind.BARRIER, 25)
    fabric.transmit(lone)
    sim.run()
    assert lone.latency == pytest.approx(0.1 + 0.3 + 0.1 + 0.1)


def test_same_phase_link_decisions_share_one_kernel_event():
    """The arbitration domain pools every same-(instant, phase) link
    decision under a single scheduled call — the event-count win that
    makes 16k-node sweeps affordable — without changing grant results."""
    from repro.network.fabric import ArbitrationDomain, LinkArbiter

    sim = Simulator()
    domain = ArbitrationDomain(sim)
    a = LinkArbiter(sim, domain, 1, "a")
    b = LinkArbiter(sim, domain, 1, "b")
    granted = []
    base = sim.events_scheduled
    a.request(("k",), granted.append, "a")
    b.request(("k",), granted.append, "b")
    # Two same-phase requests on two links arm exactly one decision event.
    assert sim.events_scheduled == base + 1
    sim.run()
    assert granted == ["a", "b"]


def test_pooled_pass_still_grants_in_canonical_order_per_link():
    from repro.network.fabric import ArbitrationDomain, LinkArbiter

    sim = Simulator()
    domain = ArbitrationDomain(sim)
    link = LinkArbiter(sim, domain, 1, "l")
    granted = []
    link.request(("z",), granted.append, "z")
    link.request(("a",), granted.append, "a")
    sim.run()
    assert granted == ["a"]  # canonical key wins; "z" waits for release
    link.release()
    sim.run()
    assert granted == ["a", "z"]


def test_observe_tx_multiple_observers_all_see_every_tx():
    # Regression: observe_tx used to hold one callback per port, so a
    # second subscriber silently replaced the first.  Both the tracer
    # hook and the cross-traffic accounting must coexist.
    sim, fabric, _ = make_fabric()
    first, second = [], []
    fabric.observe_tx(0, lambda dst, now: first.append(dst))
    fabric.observe_tx(0, lambda dst, now: second.append(dst))
    fabric.transmit(Packet(0, 1, PacketKind.DATA, 8, seq=1))
    fabric.transmit(Packet(0, 2, PacketKind.DATA, 8, seq=2))
    sim.run()
    assert first == [1, 2]
    assert second == [1, 2]


def test_observe_tx_invoked_in_registration_order():
    sim, fabric, _ = make_fabric()
    calls = []
    fabric.observe_tx(0, lambda dst, now: calls.append("a"))
    fabric.observe_tx(0, lambda dst, now: calls.append("b"))
    fabric.transmit(Packet(0, 1, PacketKind.DATA, 8))
    sim.run()
    assert calls == ["a", "b"]


def test_attach_sink_intercepts_kind_before_nic_delivery():
    sim, fabric, inboxes = make_fabric()
    sunk = []
    fabric.attach_sink(1, PacketKind.XTRAFFIC, sunk.append)
    fabric.transmit(Packet(0, 1, PacketKind.XTRAFFIC, 64, seq=0))
    fabric.transmit(Packet(0, 1, PacketKind.DATA, 64, seq=1))
    sim.run()
    # The xtraffic packet terminates at the sink; data still reaches
    # the port handler.
    assert [p.kind for p in sunk] == [PacketKind.XTRAFFIC]
    assert [p.kind for p in inboxes[1]] == [PacketKind.DATA]


def test_attach_sink_rejects_double_attach():
    sim, fabric, _ = make_fabric()
    fabric.attach_sink(1, PacketKind.XTRAFFIC, lambda p: None)
    with pytest.raises(ValueError):
        fabric.attach_sink(1, PacketKind.XTRAFFIC, lambda p: None)


def test_flow_counters_attribute_by_group_and_flow_label():
    class _Grouped:
        def __init__(self, group_id):
            self.group_id = group_id

    class _Flow:
        def __init__(self, flow):
            self.flow = flow

    sim, fabric, _ = make_fabric()
    fabric.transmit(Packet(0, 1, PacketKind.BARRIER, 8, payload=_Grouped(7)))
    fabric.transmit(Packet(1, 2, PacketKind.BARRIER, 8, payload=_Grouped(7)))
    fabric.transmit(Packet(2, 3, PacketKind.XTRAFFIC, 64, payload=_Flow("xtraffic")))
    fabric.transmit(Packet(3, 0, PacketKind.ACK, 4))
    sim.run()
    flows = fabric.flow_counters()
    assert flows["group:7"]["packets"] == 2
    assert flows["group:7"]["bytes"] == 16
    assert flows["flow:xtraffic"]["packets"] == 1
    assert flows["kind:ack"]["packets"] == 1
