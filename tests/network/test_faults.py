"""Unit tests for fault injection."""

import pytest

from repro.network import DropPlan, FaultInjector, Packet, PacketKind
from repro.sim import DeterministicRng


def _pkt(src=0, dst=1, kind=PacketKind.BARRIER):
    return Packet(src, dst, kind, 8)


class TestDropPlan:
    def test_drops_first_match(self):
        plan = DropPlan(lambda p: p.dst == 1)
        assert plan.should_drop(_pkt(dst=1)) is True
        assert plan.fired

    def test_one_shot(self):
        plan = DropPlan(lambda p: True)
        assert plan.should_drop(_pkt()) is True
        assert plan.should_drop(_pkt()) is False

    def test_counts_occurrences(self):
        plan = DropPlan(lambda p: p.kind == PacketKind.BARRIER, occurrence=3)
        assert plan.should_drop(_pkt()) is False
        assert plan.should_drop(_pkt(kind=PacketKind.ACK)) is False  # no match
        assert plan.should_drop(_pkt()) is False
        assert plan.should_drop(_pkt()) is True

    def test_non_matching_never_counted(self):
        plan = DropPlan(lambda p: p.src == 9, occurrence=1)
        for _ in range(5):
            assert plan.should_drop(_pkt(src=0)) is False
        assert not plan.fired


class TestFaultInjector:
    def test_no_faults_by_default(self):
        fi = FaultInjector()
        assert not any(fi.should_drop(_pkt()) for _ in range(100))
        assert fi.dropped == 0
        assert fi.inspected == 100

    def test_probabilistic_requires_rng(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=0.5)

    def test_probability_range_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(rng=DeterministicRng(1), drop_probability=1.0)

    def test_probabilistic_drops_roughly_at_rate(self):
        fi = FaultInjector(rng=DeterministicRng(42), drop_probability=0.2)
        drops = sum(fi.should_drop(_pkt()) for _ in range(2000))
        assert 300 <= drops <= 500  # 0.2 +/- slack

    def test_deterministic_given_seed(self):
        def run():
            fi = FaultInjector(rng=DeterministicRng(7), drop_probability=0.3)
            return [fi.should_drop(_pkt()) for _ in range(50)]

        assert run() == run()

    def test_scripted_plan_takes_priority(self):
        fi = FaultInjector()
        fi.drop_nth_matching(lambda p: p.dst == 3, occurrence=2)
        assert fi.should_drop(_pkt(dst=3)) is False
        assert fi.should_drop(_pkt(dst=3)) is True
        assert fi.dropped == 1


def test_fired_one_shot_plans_are_pruned():
    # Regression: fired one-shot plans stayed in the injector and were
    # re-scanned on every subsequent packet.
    injector = FaultInjector()
    injector.add_plan(DropPlan(lambda p: p.dst == 1))
    injector.add_plan(DropPlan(lambda p: p.dst == 2))
    assert injector.should_drop(_pkt(dst=1)) is True
    assert len(injector.plans) == 1
    assert injector.should_drop(_pkt(dst=1)) is False
    assert injector.should_drop(_pkt(dst=2)) is True
    assert injector.plans == []
