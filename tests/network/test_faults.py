"""Unit tests for fault injection."""

import pytest

from repro.network import DropPlan, FaultInjector, Packet, PacketKind
from repro.sim import DeterministicRng


def _pkt(src=0, dst=1, kind=PacketKind.BARRIER, sent_at=None):
    packet = Packet(src, dst, kind, 8)
    packet.sent_at = sent_at
    return packet


class TestDropPlan:
    def test_drops_first_match(self):
        plan = DropPlan(lambda p: p.dst == 1)
        assert plan.should_drop(_pkt(dst=1)) is True
        assert plan.fired

    def test_one_shot(self):
        plan = DropPlan(lambda p: True)
        assert plan.should_drop(_pkt()) is True
        assert plan.should_drop(_pkt()) is False

    def test_counts_occurrences(self):
        plan = DropPlan(lambda p: p.kind == PacketKind.BARRIER, occurrence=3)
        assert plan.should_drop(_pkt()) is False
        assert plan.should_drop(_pkt(kind=PacketKind.ACK)) is False  # no match
        assert plan.should_drop(_pkt()) is False
        assert plan.should_drop(_pkt()) is True

    def test_non_matching_never_counted(self):
        plan = DropPlan(lambda p: p.src == 9, occurrence=1)
        for _ in range(5):
            assert plan.should_drop(_pkt(src=0)) is False
        assert not plan.fired


class TestFaultInjector:
    def test_no_faults_by_default(self):
        fi = FaultInjector()
        assert not any(fi.should_drop(_pkt()) for _ in range(100))
        assert fi.dropped == 0
        assert fi.inspected == 100

    def test_probabilistic_requires_rng(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=0.5)

    def test_probability_range_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(rng=DeterministicRng(1), drop_probability=1.0)

    def test_probabilistic_drops_roughly_at_rate(self):
        fi = FaultInjector(rng=DeterministicRng(42), drop_probability=0.2)
        drops = sum(fi.should_drop(_pkt()) for _ in range(2000))
        assert 300 <= drops <= 500  # 0.2 +/- slack

    def test_deterministic_given_seed(self):
        def run():
            fi = FaultInjector(rng=DeterministicRng(7), drop_probability=0.3)
            return [fi.should_drop(_pkt()) for _ in range(50)]

        assert run() == run()

    def test_scripted_plan_takes_priority(self):
        fi = FaultInjector()
        fi.drop_nth_matching(lambda p: p.dst == 3, occurrence=2)
        assert fi.should_drop(_pkt(dst=3)) is False
        assert fi.should_drop(_pkt(dst=3)) is True
        assert fi.dropped == 1


class TestFaultClasses:
    def test_corruption_delivers_flagged(self):
        fi = FaultInjector(rng=DeterministicRng(3), corrupt_probability=0.25)
        decisions = [fi.inspect(_pkt()) for _ in range(1000)]
        assert not any(d.drop for d in decisions)
        corrupted = sum(d.corrupt for d in decisions)
        assert 180 <= corrupted <= 320  # 0.25 +/- slack
        assert fi.corrupted == corrupted

    def test_duplication_rate(self):
        fi = FaultInjector(rng=DeterministicRng(4), duplicate_probability=0.25)
        duplicated = sum(fi.inspect(_pkt()).duplicate for _ in range(1000))
        assert 180 <= duplicated <= 320
        assert fi.duplicated == duplicated

    def test_delay_bounded_by_jitter(self):
        fi = FaultInjector(
            rng=DeterministicRng(5), delay_probability=0.5, delay_jitter_us=4.0
        )
        delays = [fi.inspect(_pkt()).delay_us for _ in range(500)]
        assert all(0.0 <= d <= 4.0 for d in delays)
        assert any(d > 0.0 for d in delays)
        assert fi.delayed == sum(1 for d in delays if d)

    def test_classes_compose_and_drop_wins(self):
        fi = FaultInjector(
            rng=DeterministicRng(6),
            drop_probability=0.3,
            corrupt_probability=0.3,
            duplicate_probability=0.3,
        )
        decisions = [fi.inspect(_pkt()) for _ in range(800)]
        # A dropped packet reports nothing else; survivors may carry
        # corruption and duplication at once.
        for d in decisions:
            if d.drop:
                assert not (d.corrupt or d.duplicate or d.delay_us)
        assert any(d.corrupt and d.duplicate for d in decisions)

    def test_per_flow_streams_are_interleaving_independent(self):
        # The k-th packet of a flow meets the same fate however the two
        # flows' inspections interleave (the simlint SL101 guarantee).
        def run(order):
            fi = FaultInjector(
                rng=DeterministicRng(11),
                drop_probability=0.2,
                corrupt_probability=0.2,
            )
            fates = {(0, 1): [], (2, 3): []}
            for src, dst in order:
                d = fi.inspect(_pkt(src=src, dst=dst))
                fates[(src, dst)].append((d.drop, d.corrupt))
            return fates

        flows = [(0, 1), (2, 3)]
        alternating = run(flows * 50)
        batched = run([flows[0]] * 50 + [flows[1]] * 50)
        assert alternating == batched

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(
                rng=DeterministicRng(1), delay_probability=0.1, delay_jitter_us=-1.0
            )


class TestBlackhole:
    def test_drop_all_matching_black_holes_the_flow(self):
        fi = FaultInjector()
        hole = fi.drop_all_matching(lambda p: p.dst == 3, label="dead:3")
        for _ in range(4):
            assert fi.should_drop(_pkt(dst=3)) is True
        assert fi.should_drop(_pkt(dst=2)) is False
        assert hole.dropped == 4
        assert fi.dropped == 4

    def test_heal_stops_dropping(self):
        fi = FaultInjector()
        hole = fi.drop_all_matching(lambda p: True)
        assert fi.should_drop(_pkt()) is True
        hole.heal()
        assert fi.should_drop(_pkt()) is False
        assert hole.dropped == 1
        assert hole.healed

    def test_window_is_half_open(self):
        fi = FaultInjector()
        hole = fi.blackhole_window(lambda p: True, 10.0, 20.0)
        assert fi.should_drop(_pkt(sent_at=9.9)) is False
        assert fi.should_drop(_pkt(sent_at=10.0)) is True
        assert fi.should_drop(_pkt(sent_at=19.9)) is True
        assert fi.should_drop(_pkt(sent_at=20.0)) is False
        assert hole.dropped == 2

    def test_empty_window_rejected(self):
        fi = FaultInjector()
        with pytest.raises(ValueError):
            fi.blackhole_window(lambda p: True, 20.0, 20.0)

    def test_flap_link_matches_both_directions_only(self):
        fi = FaultInjector()
        fi.flap_link(0, 1, 0.0, 100.0)
        assert fi.should_drop(_pkt(src=0, dst=1, sent_at=50.0)) is True
        assert fi.should_drop(_pkt(src=1, dst=0, sent_at=50.0)) is True
        assert fi.should_drop(_pkt(src=0, dst=2, sent_at=50.0)) is False
        assert fi.should_drop(_pkt(src=0, dst=1, sent_at=150.0)) is False

    def test_crash_window_isolates_the_node(self):
        fi = FaultInjector()
        fi.crash_window(5, 10.0, 30.0)
        assert fi.should_drop(_pkt(src=5, dst=0, sent_at=15.0)) is True
        assert fi.should_drop(_pkt(src=0, dst=5, sent_at=15.0)) is True
        assert fi.should_drop(_pkt(src=0, dst=1, sent_at=15.0)) is False

    def test_blackhole_does_not_shift_probabilistic_streams(self):
        # Stream positions advance once per inspected packet whatever
        # the scripted faults decide: the post-window fate sequence is
        # the same with and without the blackhole.
        def fates(with_hole):
            fi = FaultInjector(rng=DeterministicRng(12), corrupt_probability=0.3)
            if with_hole:
                fi.blackhole_window(lambda p: True, 0.0, 10.0)
            return [
                fi.inspect(_pkt(sent_at=float(i))).corrupt for i in range(40)
            ][15:]

        assert fates(True) == fates(False)


class TestStats:
    def test_stats_snapshot(self):
        fi = FaultInjector(rng=DeterministicRng(9), drop_probability=0.5)
        hole = fi.drop_all_matching(lambda p: p.dst == 7, label="dead:7")
        fi.drop_nth_matching(lambda p: p.src == 42, occurrence=2, label="never")
        for _ in range(20):
            fi.inspect(_pkt(dst=7))
            fi.inspect(_pkt(src=1, dst=2))
        stats = fi.stats()
        assert stats["inspected"] == 40
        assert stats["dropped"] == fi.dropped
        assert stats["blackholes"] == [
            {
                "label": "dead:7",
                "dropped": hole.dropped,
                "healed": False,
                "healed_at": None,
                "start_us": None,
                "until_us": None,
            }
        ]
        assert stats["plans_armed"] == 1
        assert stats["unfired_plans"] == [
            "never: matched 0 of 2 needed occurrences"
        ]
        assert stats["per_flow_drops"][f"0->7/{PacketKind.BARRIER}"] == 20

    def test_unfired_plans_excludes_fired(self):
        fi = FaultInjector()
        fi.drop_nth_matching(lambda p: p.dst == 1, label="fires")
        pending = fi.drop_nth_matching(lambda p: p.dst == 9, label="pends")
        fi.should_drop(_pkt(dst=1))
        assert fi.unfired_plans() == (pending,)


def test_fired_one_shot_plans_are_pruned():
    # Regression: fired one-shot plans stayed in the injector and were
    # re-scanned on every subsequent packet.
    injector = FaultInjector()
    injector.add_plan(DropPlan(lambda p: p.dst == 1))
    injector.add_plan(DropPlan(lambda p: p.dst == 2))
    assert injector.should_drop(_pkt(dst=1)) is True
    assert len(injector.plans) == 1
    assert injector.should_drop(_pkt(dst=1)) is False
    assert injector.should_drop(_pkt(dst=2)) is True
    assert injector.plans == []
