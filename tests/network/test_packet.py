"""Unit tests for packet representation."""

import pytest

from repro.network import Packet, PacketKind


def test_packet_fields():
    p = Packet(src=0, dst=1, kind=PacketKind.BARRIER, size_bytes=16, payload=7)
    assert p.src == 0 and p.dst == 1
    assert p.payload == 7
    assert p.latency is None


def test_wire_ids_unique():
    a = Packet(0, 1, PacketKind.DATA, 64)
    b = Packet(0, 1, PacketKind.DATA, 64)
    assert a.wire_id != b.wire_id


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Packet(0, 1, "mystery", 8)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(0, 1, PacketKind.ACK, -1)


def test_latency_computed_after_delivery():
    p = Packet(0, 1, PacketKind.DATA, 8)
    p.sent_at = 10.0
    p.delivered_at = 12.5
    assert p.latency == pytest.approx(2.5)


def test_all_kinds_constructible():
    for kind in PacketKind.ALL:
        Packet(0, 1, kind, 8)
