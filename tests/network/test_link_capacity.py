"""Tests for parallel-link capacities (fat-tree bisection)."""


from repro.network import Fabric, Packet, PacketKind, WireParams
from repro.sim import Simulator
from repro.topology import ClosTopology, QuaternaryFatTree

PARAMS = WireParams(
    inject_us=0.05,
    switch_latency_us=0.06,
    propagation_us=0.02,
    bandwidth_bytes_per_us=400.0,
)


class TestTopologyCapacities:
    def test_nic_edges_are_single_links(self):
        topo = QuaternaryFatTree(16)
        assert topo.link_capacity("nic0", "elite_l1_0") == 1
        assert topo.link_capacity("elite_l1_0", "nic0") == 1

    def test_stage_edges_have_full_bisection(self):
        topo = QuaternaryFatTree(64, dimension=3)
        assert topo.link_capacity("elite_l1_0", "elite_l2_0") == 4
        assert topo.link_capacity("elite_l2_0", "elite_l1_1") == 4
        assert topo.link_capacity("elite_l2_0", "elite_l3_0") == 16
        assert topo.link_capacity("elite_l3_0", "elite_l2_1") == 16

    def test_clos_default_capacity_one(self):
        topo = ClosTopology(32, radix=16)
        assert topo.link_capacity("leaf0", "spine1") == 1


class TestFabricUsesCapacities:
    def test_cross_root_flows_do_not_serialize(self):
        """All 16 nodes of one level-2 group sending across the root at
        once must not queue on a single logical link."""
        sim = Simulator()
        topo = QuaternaryFatTree(32, dimension=3)
        fabric = Fabric(sim, topo, PARAMS)
        delivered = []
        for i in range(32):
            fabric.attach(i, lambda p: delivered.append(p))
        packets = [
            Packet(src=i, dst=i + 16, kind=PacketKind.RDMA, size_bytes=32)
            for i in range(16)
        ]
        for packet in packets:
            fabric.transmit(packet)
        sim.run()
        latencies = [p.latency for p in packets]
        # With full bisection every flow sees (nearly) the uncontended
        # latency; the only shared stage is the per-group leaf links.
        assert max(latencies) < 2.0 * min(latencies)

    def test_single_leaf_uplink_still_contends(self):
        """Two nodes on one leaf share 4 uplinks -- but their NIC
        injection links are private, so only same-destination traffic
        serializes."""
        sim = Simulator()
        topo = QuaternaryFatTree(16, dimension=2)
        fabric = Fabric(sim, topo, PARAMS)
        for i in range(16):
            fabric.attach(i, lambda p: None)
        # Same src, same dst: the nic0->leaf link serializes them.
        first = Packet(src=0, dst=5, kind=PacketKind.RDMA, size_bytes=4000)
        second = Packet(src=0, dst=5, kind=PacketKind.RDMA, size_bytes=32)
        fabric.transmit(first)
        fabric.transmit(second)
        sim.run()
        assert second.delivered_at > first.delivered_at


class TestClosSpineSpreading:
    def test_sources_spread_across_spines(self):
        topo = ClosTopology(32, radix=16)
        spines = {
            topo.route(src, (src + 8) % 32).hops[1] for src in range(8)
        }
        assert len(spines) == 8  # each source picks its own spine

    def test_route_stays_deterministic(self):
        topo = ClosTopology(32, radix=16)
        assert topo.route(3, 20) == topo.route(3, 20)
