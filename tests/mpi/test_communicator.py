"""Integration tests for the MPI-style facade."""

import pytest

from repro.cluster import build_myrinet_cluster, build_quadrics_cluster
from repro.mpi import MyrinetRankComm, QuadricsRankComm, create_communicators


def run_programs(cluster, programs):
    procs = [cluster.sim.process(p) for p in programs]
    cluster.sim.run()
    for proc in procs:
        assert proc.completion.processed, f"{proc.name} never finished"


def myrinet_comms(n=4, **kwargs):
    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=n)
    return cluster, create_communicators(cluster, **kwargs)


class TestCreate:
    def test_one_handle_per_rank(self):
        cluster, comms = myrinet_comms(4)
        assert len(comms) == 4
        assert [c.rank for c in comms] == [0, 1, 2, 3]
        assert all(c.size == 4 for c in comms)

    def test_myrinet_type(self):
        _, comms = myrinet_comms(2)
        assert all(isinstance(c, MyrinetRankComm) for c in comms)

    def test_quadrics_type(self):
        cluster = build_quadrics_cluster(nodes=4)
        comms = create_communicators(cluster)
        assert all(isinstance(c, QuadricsRankComm) for c in comms)

    def test_node_subset_and_permutation(self):
        cluster, comms = myrinet_comms(8, nodes=[6, 2, 4])
        assert len(comms) == 3
        assert [c.node for c in comms] == [6, 2, 4]

    def test_not_a_cluster(self):
        with pytest.raises(TypeError):
            create_communicators(object())


class TestBarrier:
    def test_barrier_synchronizes(self):
        cluster, comms = myrinet_comms(4)
        entries, exits = {}, {}

        def program(comm):
            yield comm.rank * 10.0
            entries[comm.rank] = cluster.sim.now
            yield from comm.barrier()
            exits[comm.rank] = cluster.sim.now

        run_programs(cluster, [program(c) for c in comms])
        assert min(exits.values()) >= max(entries.values())

    def test_repeated_barriers_auto_sequence(self):
        cluster, comms = myrinet_comms(4)
        counts = {c.rank: 0 for c in comms}

        def program(comm):
            for _ in range(5):
                yield from comm.barrier()
                counts[comm.rank] += 1

        run_programs(cluster, [program(c) for c in comms])
        assert all(v == 5 for v in counts.values())

    def test_quadrics_barrier(self):
        cluster = build_quadrics_cluster(nodes=8)
        comms = create_communicators(cluster)
        exits = {}

        def program(comm):
            for _ in range(3):
                yield from comm.barrier()
            exits[comm.rank] = cluster.sim.now

        run_programs(cluster, [program(c) for c in comms])
        assert len(exits) == 8


class TestBcast:
    def test_root_zero(self):
        cluster, comms = myrinet_comms(4)
        got = {}

        def program(comm):
            value = yield from comm.bcast(
                value="payload" if comm.rank == 0 else None, size_bytes=64
            )
            got[comm.rank] = value

        run_programs(cluster, [program(c) for c in comms])
        assert got == {r: "payload" for r in range(4)}

    def test_nonzero_root(self):
        cluster, comms = myrinet_comms(4)
        got = {}

        def program(comm):
            value = yield from comm.bcast(
                value=42 if comm.rank == 2 else None, root=2
            )
            got[comm.rank] = value

        run_programs(cluster, [program(c) for c in comms])
        assert got == {r: 42 for r in range(4)}

    def test_root_out_of_range(self):
        cluster, comms = myrinet_comms(2)

        def program(comm):
            yield from comm.bcast(value=1, root=5)

        proc = cluster.sim.process(program(comms[0]))
        proc.completion.add_callback(lambda e: e.defuse() if not e.ok else None)
        cluster.sim.run()
        assert isinstance(proc.completion.value, ValueError)

    def test_multiple_roots_interleaved(self):
        cluster, comms = myrinet_comms(4)
        got = {r: [] for r in range(4)}

        def program(comm):
            for root in (0, 1, 0, 3):
                value = yield from comm.bcast(
                    value=f"from{root}" if comm.rank == root else None, root=root
                )
                got[comm.rank].append(value)

        run_programs(cluster, [program(c) for c in comms])
        for r in range(4):
            assert got[r] == ["from0", "from1", "from0", "from3"]


class TestAllgather:
    def test_gathers_all(self):
        cluster, comms = myrinet_comms(4)
        got = {}

        def program(comm):
            gathered = yield from comm.allgather(comm.rank * 7)
            got[comm.rank] = gathered

        run_programs(cluster, [program(c) for c in comms])
        expected = {r: r * 7 for r in range(4)}
        assert all(g == expected for g in got.values())

    def test_alltoall(self):
        cluster, comms = myrinet_comms(4)
        got = {}

        def program(comm):
            blocks = {dst: (comm.rank, dst) for dst in range(comm.size)}
            received = yield from comm.alltoall(blocks)
            got[comm.rank] = received

        run_programs(cluster, [program(c) for c in comms])
        for dst in range(4):
            assert got[dst] == {src: (src, dst) for src in range(4)}

    def test_allreduce(self):
        cluster, comms = myrinet_comms(4)
        sums, maxes = [], []

        def program(comm):
            total = yield from comm.allreduce(comm.rank + 1, op="sum")
            sums.append(total)
            peak = yield from comm.allreduce(comm.rank, op="max")
            maxes.append(peak)

        run_programs(cluster, [program(c) for c in comms])
        assert sums == [10] * 4
        assert maxes == [3] * 4

    def test_mixed_collectives_in_one_program(self):
        cluster, comms = myrinet_comms(4)
        log = {r: [] for r in range(4)}

        def program(comm):
            yield from comm.barrier()
            v = yield from comm.bcast(value="b" if comm.rank == 0 else None)
            log[comm.rank].append(v)
            gathered = yield from comm.allgather(comm.rank)
            log[comm.rank].append(gathered)
            yield from comm.barrier()

        run_programs(cluster, [program(c) for c in comms])
        for r in range(4):
            assert log[r] == ["b", {0: 0, 1: 1, 2: 2, 3: 3}]
