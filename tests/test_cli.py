"""Tests for the command-line interface."""

import pytest

from repro._version import __version__
from repro.cli import main


def test_profiles_lists_all(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "lanai_xp_xeon2400" in out
    assert "lanai91_piii700" in out
    assert "elan3_piii700" in out


def test_run_default(capsys):
    assert main(["run", "--iterations", "10", "--warmup", "2", "--nodes", "4"]) == 0
    out = capsys.readouterr().out
    assert "mean" in out
    assert "nic-collective" in out


def test_run_quadrics(capsys):
    code = main([
        "run", "--profile", "elan3_piii700", "--barrier", "nic-chained",
        "--nodes", "4", "--iterations", "5", "--warmup", "2",
    ])
    assert code == 0
    assert "nic-chained" in capsys.readouterr().out


def test_run_with_counters(capsys):
    main([
        "run", "--nodes", "4", "--iterations", "5", "--warmup", "2", "--counters",
    ])
    assert "wire.barrier" in capsys.readouterr().out


def test_run_rejects_bad_barrier():
    with pytest.raises(SystemExit):
        main(["run", "--barrier", "magic"])


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


@pytest.mark.slow
def test_experiment_subcommand(capsys):
    assert main(["experiment", "ablation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "ablation" in out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_trace_quadrics(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main([
        "trace", "--network", "quadrics", "-n", "8",
        "--iterations", "3", "--warmup", "1", "--out", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "critical path" in printed
    assert "counter audit" in printed
    assert "PASS" in printed
    import json

    doc = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_trace_myrinet(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main([
        "trace", "--network", "myrinet", "-n", "8",
        "--iterations", "3", "--warmup", "1", "--out", str(out),
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_trace_rejects_profile_network_mismatch(tmp_path):
    code = main([
        "trace", "--network", "myrinet", "--profile", "elan3_piii700",
        "--out", str(tmp_path / "t.json"),
    ])
    assert code == 2


def test_cache_stats_empty(capsys):
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out
    assert "0" in out


def test_cache_stats_counts_entries(tmp_path, capsys):
    from repro.tools.runcache import RunCache, run_request

    cache_dir = tmp_path / "cache"
    RunCache(cache_dir).put(run_request("t", n=1), 1.0)
    assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries      : 1" in out
    assert str(cache_dir) in out


def test_cache_gc_and_clear(tmp_path, capsys):
    from repro.tools.runcache import RunCache, run_request

    cache_dir = tmp_path / "cache"
    cache = RunCache(cache_dir)
    cache.put(run_request("t", n=1), 1.0)
    stale = dict(run_request("t", n=2), source_digest="deadbeef")
    cache.put(stale, 2.0)

    assert main(["cache", "gc", "--dir", str(cache_dir)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert cache.entry_count() == 1

    assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert cache.entry_count() == 0


def test_trace_warm_run_verifies_cached_latency(tmp_path, capsys):
    argv = [
        "trace", "--network", "myrinet", "-n", "4",
        "--iterations", "2", "--warmup", "1",
        "--out", str(tmp_path / "t.json"),
    ]
    assert main(argv) == 0
    assert "run cache: cold" in capsys.readouterr().err
    assert main(argv) == 0
    assert "run cache: warm" in capsys.readouterr().err


def test_trace_no_cache_stays_silent(tmp_path, capsys):
    code = main([
        "trace", "--network", "myrinet", "-n", "4",
        "--iterations", "2", "--warmup", "1", "--no-cache",
        "--out", str(tmp_path / "t.json"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "run cache" not in captured.out + captured.err


def test_workload_smoke_both_networks(capsys):
    code = main([
        "workload", "-n", "8", "--jobs", "2", "--pattern", "uniform",
        "--iterations", "3", "--seed", "1", "--no-cache",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "workload: myrinet" in out
    assert "workload: quadrics" in out
    assert "fairness" in out
    assert "cross-traffic" in out
    assert "group flow audit" in out
    assert "VIOLATION" not in out and "QUIESCENCE" not in out


def test_workload_trace_write_and_reload(tmp_path, capsys):
    trace_path = tmp_path / "jobs.jsonl"
    code = main([
        "workload", "--network", "myrinet", "-n", "8", "--jobs", "2",
        "--iterations", "2", "--no-xtraffic", "--no-cache",
        "--write-trace", str(trace_path),
    ])
    assert code == 0
    assert trace_path.exists()
    capsys.readouterr()
    code = main([
        "workload", "--network", "myrinet", "-n", "8",
        "--jobs-trace", str(trace_path), "--no-xtraffic", "--no-cache",
    ])
    assert code == 0
    assert "workload: myrinet" in capsys.readouterr().out


def test_workload_chaos_disables_xtraffic(capsys):
    code = main([
        "workload", "--network", "quadrics", "-n", "8", "--jobs", "2",
        "--pattern", "uniform", "--iterations", "12", "--no-cache",
        "--kill-node", "0", "--kill-at", "30",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "cross-traffic disabled" in captured.err
    assert "repaired" in captured.out
