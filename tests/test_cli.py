"""Tests for the command-line interface."""

import pytest

from repro._version import __version__
from repro.cli import main


def test_profiles_lists_all(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "lanai_xp_xeon2400" in out
    assert "lanai91_piii700" in out
    assert "elan3_piii700" in out


def test_run_default(capsys):
    assert main(["run", "--iterations", "10", "--warmup", "2", "--nodes", "4"]) == 0
    out = capsys.readouterr().out
    assert "mean" in out
    assert "nic-collective" in out


def test_run_quadrics(capsys):
    code = main([
        "run", "--profile", "elan3_piii700", "--barrier", "nic-chained",
        "--nodes", "4", "--iterations", "5", "--warmup", "2",
    ])
    assert code == 0
    assert "nic-chained" in capsys.readouterr().out


def test_run_with_counters(capsys):
    main([
        "run", "--nodes", "4", "--iterations", "5", "--warmup", "2", "--counters",
    ])
    assert "wire.barrier" in capsys.readouterr().out


def test_run_rejects_bad_barrier():
    with pytest.raises(SystemExit):
        main(["run", "--barrier", "magic"])


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


@pytest.mark.slow
def test_experiment_subcommand(capsys):
    assert main(["experiment", "ablation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "ablation" in out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_trace_quadrics(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main([
        "trace", "--network", "quadrics", "-n", "8",
        "--iterations", "3", "--warmup", "1", "--out", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "critical path" in printed
    assert "counter audit" in printed
    assert "PASS" in printed
    import json

    doc = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_trace_myrinet(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main([
        "trace", "--network", "myrinet", "-n", "8",
        "--iterations", "3", "--warmup", "1", "--out", str(out),
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_trace_rejects_profile_network_mismatch(tmp_path):
    code = main([
        "trace", "--network", "myrinet", "--profile", "elan3_piii700",
        "--out", str(tmp_path / "t.json"),
    ])
    assert code == 2
