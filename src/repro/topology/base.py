"""Topology interface shared by the Myrinet and Quadrics fabrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Route:
    """A source route: the ordered switches between two NICs.

    ``hops`` is empty only for self-delivery (loopback).  The number of
    link traversals is ``len(hops) + 1`` for a non-loopback route
    (NIC → first switch, switch → switch, last switch → NIC).
    """

    src: int
    dst: int
    hops: tuple[str, ...]

    @property
    def switch_count(self) -> int:
        return len(self.hops)

    @property
    def link_count(self) -> int:
        if self.src == self.dst:
            return 0
        return len(self.hops) + 1


class Topology:
    """Base class: ``n_nodes`` NIC ports interconnected by switches."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes

    # -- interface -------------------------------------------------------
    def route(self, src: int, dst: int) -> Route:
        """The source route from NIC ``src`` to NIC ``dst``."""
        raise NotImplementedError

    def switches(self) -> Sequence[str]:
        """All switch identifiers."""
        raise NotImplementedError

    def link_capacity(self, a: str, b: str) -> int:
        """Parallel physical links behind the directional edge ``a -> b``.

        Topology classes whose switch identifiers aggregate several
        physical switches (e.g. a fat-tree *stage group*) override this
        so the fabric models the real bisection.  Default: one link.
        """
        return 1

    # -- shared helpers ----------------------------------------------------
    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_nodes:
            raise ValueError(
                f"port {port} out of range for {self.n_nodes}-node topology"
            )

    def max_hops(self) -> int:
        """Worst-case switch count over all (src, dst) pairs."""
        worst = 0
        for s in range(self.n_nodes):
            for d in range(self.n_nodes):
                if s != d:
                    worst = max(worst, self.route(s, d).switch_count)
        return worst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} nodes={self.n_nodes}>"
