"""Network topologies for the two interconnects.

- :class:`~repro.topology.crossbar.ClosTopology` — Myrinet 2000 style:
  16-port crossbar switches, single switch for small clusters, two-level
  Clos (leaf + spine) beyond the radix.
- :class:`~repro.topology.fat_tree.QuaternaryFatTree` — Quadrics QsNet
  style: Elite switches (8 ports: 4 down / 4 up) arranged in a
  dimension-*n* quaternary fat tree, 4^n nodes.

Both expose the :class:`~repro.topology.base.Topology` interface: a set
of node ports, switch identifiers, and ``route(src, dst)`` returning the
ordered list of switch hops a packet traverses (source routing, as both
networks use in hardware).
"""

from repro.topology.base import Route, Topology
from repro.topology.crossbar import ClosTopology
from repro.topology.fat_tree import QuaternaryFatTree

__all__ = ["Topology", "Route", "ClosTopology", "QuaternaryFatTree"]
