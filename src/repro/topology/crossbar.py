"""Myrinet-style crossbar / Clos topology.

Myrinet 2000 interconnects hosts through 16-port wormhole crossbar
switches.  Small clusters (the paper's 8- and 16-node systems) hang off a
single crossbar; larger systems cascade crossbars into a two-level Clos:
leaf switches own hosts, spine switches interconnect leaves.

Routing is deterministic source routing (as in real Myrinet): the spine
for a (src-leaf, dst-leaf) pair is chosen by a static hash so a given
pair always takes the same path.
"""

from __future__ import annotations

from repro.topology.base import Route, Topology


class ClosTopology(Topology):
    """Single crossbar or two-level Clos of ``radix``-port crossbars.

    Parameters
    ----------
    n_nodes:
        Number of host NICs.
    radix:
        Ports per crossbar switch (16 for Myrinet 2000's Xbar16).

    With two levels, each leaf uses ``radix // 2`` ports down (hosts) and
    ``radix // 2`` up (spines), the classic folded-Clos split, giving a
    maximum of ``(radix // 2) ** 2`` hosts.
    """

    def __init__(self, n_nodes: int, radix: int = 16):
        super().__init__(n_nodes)
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.radix = radix
        half = radix // 2
        if n_nodes <= radix:
            self.levels = 1
            self.n_leaves = 1
            self.n_spines = 0
        elif n_nodes <= half * half:
            self.levels = 2
            self.n_leaves = -(-n_nodes // half)  # ceil division
            self.n_spines = half
        else:
            raise ValueError(
                f"{n_nodes} nodes exceeds two-level Clos capacity "
                f"{half * half} for radix {radix}"
            )
        self._hosts_per_leaf = n_nodes if self.levels == 1 else half

    # ------------------------------------------------------------------
    def leaf_of(self, port: int) -> int:
        self._check_port(port)
        return port // self._hosts_per_leaf

    def switches(self) -> list[str]:
        if self.levels == 1:
            return ["xbar0"]
        leaves = [f"leaf{i}" for i in range(self.n_leaves)]
        spines = [f"spine{i}" for i in range(self.n_spines)]
        return leaves + spines

    def _spine_for(self, src: int, dst: int) -> int:
        # Static deterministic spine selection (source-routed networks
        # pick the path at the sender; Myrinet's mapper computes the
        # dispersive route set).  Per-source spreading keeps the flows
        # of a shifted-permutation collective (dst = src + 2^m) on
        # distinct spines — each source owns one spine, so no two flows
        # from one leaf share an uplink and no two flows into one leaf
        # share a downlink.
        return src % self.n_spines

    def route(self, src: int, dst: int) -> Route:
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            return Route(src, dst, ())
        if self.levels == 1:
            return Route(src, dst, ("xbar0",))
        src_leaf, dst_leaf = self.leaf_of(src), self.leaf_of(dst)
        if src_leaf == dst_leaf:
            return Route(src, dst, (f"leaf{src_leaf}",))
        spine = self._spine_for(src, dst)
        return Route(
            src,
            dst,
            (f"leaf{src_leaf}", f"spine{spine}", f"leaf{dst_leaf}"),
        )
