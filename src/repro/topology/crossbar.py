"""Myrinet-style crossbar / Clos topology.

Myrinet 2000 interconnects hosts through 16-port wormhole crossbar
switches.  Small clusters (the paper's 8- and 16-node systems) hang off a
single crossbar; larger systems cascade crossbars into a two-level Clos
(leaf switches own hosts, spine switches interconnect leaves), and the
largest into a three-level Clos: pods of two-level sub-Clos networks
joined by a top stage — the layout of the era's 256+ host Myrinet
machines, and what lets fig8's measured series reach 512 nodes.

Routing is deterministic source routing (as in real Myrinet): the
intermediate switches for a (src, dst) pair are chosen by a static hash
so a given pair always takes the same path.
"""

from __future__ import annotations

from repro.topology.base import Route, Topology


class ClosTopology(Topology):
    """One- to four-level folded Clos of ``radix``-port crossbars.

    Parameters
    ----------
    n_nodes:
        Number of host NICs.
    radix:
        Ports per crossbar switch (16 for Myrinet 2000's Xbar16).

    Every switch splits its ports half down / half up, the classic
    folded-Clos split with ``half = radix // 2``:

    - one level: up to ``radix`` hosts on a single crossbar;
    - two levels: leaves own hosts, spines join leaves — up to
      ``half**2`` hosts;
    - three levels: pods of ``half**2`` hosts (a two-level sub-Clos of
      leaves and mid switches) joined by a top stage of ``half**2``
      crossbars, top ``t`` reaching mid ``t // half`` in every pod —
      up to ``half**3`` hosts (512 for Myrinet's radix 16);
    - four levels: superpods of ``half**3`` hosts (each a three-level
      sub-Clos with a per-superpod top stage) joined by an apex stage
      of ``half**3`` crossbars — up to ``half**4`` hosts (4096 for
      radix 16), one recursion past the era's largest machines, for
      the simulator's extrapolation sweeps.
    """

    def __init__(self, n_nodes: int, radix: int = 16):
        super().__init__(n_nodes)
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.radix = radix
        half = radix // 2
        self._half = half
        self.n_superpods = 1
        if n_nodes <= radix:
            self.levels = 1
            self.n_leaves = 1
            self.n_spines = 0
            self.n_pods = 1
        elif n_nodes <= half * half:
            self.levels = 2
            self.n_leaves = -(-n_nodes // half)  # ceil division
            self.n_spines = half
            self.n_pods = 1
        elif n_nodes <= half * half * half:
            self.levels = 3
            self.n_leaves = -(-n_nodes // half)
            self.n_spines = 0
            self.n_pods = -(-n_nodes // (half * half))
            self.n_tops = half * half
        elif n_nodes <= half * half * half * half:
            self.levels = 4
            self.n_leaves = -(-n_nodes // half)
            self.n_spines = 0
            self.n_pods = -(-n_nodes // (half * half))
            self.n_tops = half * half  # per superpod
            self.n_superpods = -(-n_nodes // (half * half * half))
            self.n_apex = half * half * half
        else:
            raise ValueError(
                f"{n_nodes} nodes exceeds four-level Clos capacity "
                f"{half ** 4} for radix {radix}"
            )
        self._hosts_per_leaf = n_nodes if self.levels == 1 else half
        self._hosts_per_pod = half * half
        self._hosts_per_superpod = half * half * half

    # ------------------------------------------------------------------
    def leaf_of(self, port: int) -> int:
        self._check_port(port)
        return port // self._hosts_per_leaf

    def pod_of(self, port: int) -> int:
        self._check_port(port)
        return port // self._hosts_per_pod

    def superpod_of(self, port: int) -> int:
        self._check_port(port)
        return port // self._hosts_per_superpod

    def switches(self) -> list[str]:
        if self.levels == 1:
            return ["xbar0"]
        leaves = [f"leaf{i}" for i in range(self.n_leaves)]
        if self.levels == 2:
            spines = [f"spine{i}" for i in range(self.n_spines)]
            return leaves + spines
        mids = [
            f"mid{p}_{m}"
            for p in range(self.n_pods)
            for m in range(self._half)
        ]
        if self.levels == 3:
            tops = [f"top{t}" for t in range(self.n_tops)]
            return leaves + mids + tops
        tops = [
            f"top{sp}_{t}"
            for sp in range(self.n_superpods)
            for t in range(self.n_tops)
        ]
        apexes = [f"apex{a}" for a in range(self.n_apex)]
        return leaves + mids + tops + apexes

    def _spine_for(self, src: int, dst: int) -> int:
        # Static deterministic spine selection (source-routed networks
        # pick the path at the sender; Myrinet's mapper computes the
        # dispersive route set).  Per-source spreading keeps the flows
        # of a shifted-permutation collective (dst = src + 2^m) on
        # distinct spines — each source owns one spine, so no two flows
        # from one leaf share an uplink and no two flows into one leaf
        # share a downlink.
        return src % self.n_spines

    def route(self, src: int, dst: int) -> Route:
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            return Route(src, dst, ())
        if self.levels == 1:
            return Route(src, dst, ("xbar0",))
        src_leaf, dst_leaf = self.leaf_of(src), self.leaf_of(dst)
        if src_leaf == dst_leaf:
            return Route(src, dst, (f"leaf{src_leaf}",))
        if self.levels == 2:
            spine = self._spine_for(src, dst)
            return Route(
                src,
                dst,
                (f"leaf{src_leaf}", f"spine{spine}", f"leaf{dst_leaf}"),
            )
        src_pod, dst_pod = self.pod_of(src), self.pod_of(dst)
        if src_pod == dst_pod:
            # Intra-pod: the pod's mid stage acts as the spine; the
            # same per-source ownership keeps one leaf's flows on
            # distinct mids.
            mid = src % self._half
            return Route(
                src,
                dst,
                (f"leaf{src_leaf}", f"mid{src_pod}_{mid}", f"leaf{dst_leaf}"),
            )
        if self.levels == 3:
            # Inter-pod: each source owns one top switch (src % half**2
            # is unique within a pod), which fixes the mid in both pods
            # — the three-level analogue of _spine_for's dispersive
            # routing.
            top = src % self.n_tops
            mid = top // self._half
            return Route(
                src,
                dst,
                (
                    f"leaf{src_leaf}",
                    f"mid{src_pod}_{mid}",
                    f"top{top}",
                    f"mid{dst_pod}_{mid}",
                    f"leaf{dst_leaf}",
                ),
            )
        src_sp, dst_sp = self.superpod_of(src), self.superpod_of(dst)
        if src_sp == dst_sp:
            # Intra-superpod inter-pod: the superpod's own top stage
            # joins its pods, exactly the three-level inter-pod shape.
            top = src % self.n_tops
            mid = top // self._half
            return Route(
                src,
                dst,
                (
                    f"leaf{src_leaf}",
                    f"mid{src_pod}_{mid}",
                    f"top{src_sp}_{top}",
                    f"mid{dst_pod}_{mid}",
                    f"leaf{dst_leaf}",
                ),
            )
        # Inter-superpod: each source owns one apex switch (src %
        # half**3 is unique within a superpod), which fixes the top in
        # both superpods and the mid in both pods — one more turn of
        # the dispersive-routing recursion.
        apex = src % self.n_apex
        top = apex // self._half
        mid = top // self._half
        return Route(
            src,
            dst,
            (
                f"leaf{src_leaf}",
                f"mid{src_pod}_{mid}",
                f"top{src_sp}_{top}",
                f"apex{apex}",
                f"top{dst_sp}_{top}",
                f"mid{dst_pod}_{mid}",
                f"leaf{dst_leaf}",
            ),
        )
