"""Quadrics QsNet quaternary fat tree of Elite switches.

QsNet builds a 4-ary *n*-tree: Elite switches have 8 links (4 down,
4 up); a dimension-*n* network connects ``4**n`` nodes.  The paper's
8-node system used a dimension-two Elite-16 fat tree.

Routing goes *up* to the lowest common ancestor level, then *down*:
two nodes whose indices share the top ``n - l`` base-4 digits meet at
level ``l`` (level 1 = leaf switches).  A route therefore traverses
``2*l - 1`` switches.

The fat tree also supports the hardware broadcast the Elanlib barrier
uses: a packet climbs to a root switch and is replicated down every
subtree, so the switch-hop count of a broadcast equals the tree height
climbing plus the deepest descent — uniform for all destinations.
"""

from __future__ import annotations

from repro.topology.base import Route, Topology


class QuaternaryFatTree(Topology):
    """A 4-ary n-tree with ``4**dimension`` node capacity.

    ``dimension`` is inferred as the smallest n with ``4**n >= n_nodes``
    when not given explicitly.
    """

    ARITY = 4

    def __init__(self, n_nodes: int, dimension: int | None = None):
        super().__init__(n_nodes)
        if dimension is None:
            dimension = 1
            while self.ARITY**dimension < n_nodes:
                dimension += 1
        if self.ARITY**dimension < n_nodes:
            raise ValueError(
                f"dimension {dimension} fat tree holds {self.ARITY ** dimension}"
                f" nodes < {n_nodes}"
            )
        self.dimension = dimension

    # ------------------------------------------------------------------
    def _digits(self, port: int) -> list[int]:
        """Base-4 digits of a port index, most significant first."""
        digits = []
        for level in reversed(range(self.dimension)):
            digits.append((port // self.ARITY**level) % self.ARITY)
        return digits

    def lca_level(self, src: int, dst: int) -> int:
        """Level (1 = leaf) of the lowest common ancestor switch stage."""
        if src == dst:
            return 0
        sd, dd = self._digits(src), self._digits(dst)
        # Number of trailing base-4 digits that differ determines how
        # high the packet must climb.
        for i in range(self.dimension):
            if sd[: self.dimension - i] == dd[: self.dimension - i]:
                return i
        return self.dimension

    def switches(self) -> list[str]:
        out = []
        for level in range(1, self.dimension + 1):
            # Stage `level` has 4**(dimension-level) logical switch groups.
            for idx in range(self.ARITY ** (self.dimension - level)):
                out.append(f"elite_l{level}_{idx}")
        return out

    def _switch_at(self, level: int, port: int) -> str:
        group = port // self.ARITY**level
        return f"elite_l{level}_{group}"

    def route(self, src: int, dst: int) -> Route:
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            return Route(src, dst, ())
        top = self.lca_level(src, dst)
        up = [self._switch_at(level, src) for level in range(1, top + 1)]
        down = [self._switch_at(level, dst) for level in range(top - 1, 0, -1)]
        return Route(src, dst, tuple(up + down))

    def broadcast_hops(self) -> int:
        """Switch hops for a hardware broadcast (climb to root + descend)."""
        return 2 * self.dimension - 1

    def link_capacity(self, a: str, b: str) -> int:
        """A 4-ary n-tree has *full bisection*: a level-``l`` stage
        group (serving ``4**l`` nodes) owns ``4**l`` parallel links to
        the stage above.  Our switch identifiers name whole stage
        groups, so the edge between two switch stages carries the
        group's full parallel-link count; NIC↔leaf edges stay single
        links (one injection port per node)."""
        if a.startswith("nic") or b.startswith("nic"):
            return 1
        level_a = int(a.split("_l")[1].split("_")[0])
        level_b = int(b.split("_l")[1].split("_")[0])
        return self.ARITY ** min(level_a, level_b)
