"""Elite switch hardware barrier (the machinery behind ``elan_hgsync``).

QsNet's hardware barrier is an atomic test-and-set performed through the
switch fabric: the root repeatedly broadcasts a *test* probing every
NIC's arrived flag, the replies combine in the Elite switches on the way
up, and once every participant has arrived a *set/release* broadcast
lets everyone exit.  The paper (§8.2) notes two consequences this model
reproduces mechanically:

- the test-and-set needs "a higher number of network transactions" than
  a chained-RDMA barrier, so at small node counts the NIC-based barrier
  *beats* the hardware barrier;
- the probe only passes when callers are synchronized — a straggler
  forces retry rounds (backoff), which is why ``elan_hgsync`` "requires
  that the calling processes are well synchronized".

The switch-side combining is abstracted into a controller that samples
every NIC's arrived flag at the instant the probe would reach it; the
up/down traversal latencies come from the real fat-tree hop counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from typing import Optional

from repro.network.fabric import WireParams
from repro.sim import Simulator, Store, Tracer
from repro.topology.fat_tree import QuaternaryFatTree


class HardwareBarrier:
    """The fabric-resident test-and-set barrier controller."""

    def __init__(
        self,
        sim: Simulator,
        topology: QuaternaryFatTree,
        wire: WireParams,
        ranks: Iterable[int],
        t_flag_check_us: float,
        retry_backoff_us: float,
        tracer: Optional[Tracer] = None,
        max_rounds: int = 10000,
        backoff_factor: float = 1.0,
        backoff_cap_us: float = 0.0,
    ):
        self.sim = sim
        self.topology = topology
        self.wire = wire
        self.tracer = tracer or Tracer()
        self.ranks = tuple(ranks)
        if not self.ranks:
            raise ValueError("hardware barrier needs at least one participant")
        if max_rounds < 1:
            raise ValueError("need at least one probe round")
        self.t_flag_check_us = t_flag_check_us
        self.retry_backoff_us = retry_backoff_us
        self.max_rounds = max_rounds
        self.backoff_factor = backoff_factor
        self.backoff_cap_us = backoff_cap_us
        self._arrived: dict[int, set[int]] = defaultdict(set)
        self._release: dict[int, Store] = {
            rank: Store(sim, name=f"hwbar.release{rank}") for rank in self.ranks
        }
        self._controller_started: set[int] = set()
        self._failed: set[int] = set()
        self.retries = 0
        self.rounds = 0
        self.failures = 0

    # ------------------------------------------------------------------
    def _traversal_us(self) -> float:
        """One tree traversal (root to leaves or back)."""
        hops = self.topology.broadcast_hops()
        return self.wire.head_latency(hops, hops + 1)

    def enter(self, rank: int, seq: int) -> Store:
        """Mark ``rank`` arrived at barrier ``seq``.

        Returns the store the caller should ``get()`` to learn of the
        release.  The first arrival starts the probe controller.
        """
        if rank not in self._release:
            raise ValueError(f"rank {rank} is not a participant")
        if seq in self._failed:
            # The controller already gave up on this barrier: the
            # straggler (whose lateness exhausted the budget) learns of
            # the failure immediately on arrival.
            self._release[rank].put(("hw-failed", seq))
            return self._release[rank]
        self._arrived[seq].add(rank)
        if seq not in self._controller_started:
            self._controller_started.add(seq)
            self.sim.process(self._controller(seq), name=f"hwbar.ctl{seq}")
        return self._release[rank]

    def fallback_ordinal(self, seq: int) -> int:
        """This failed barrier's index among all failed barriers.

        Barriers are sequential per rank, so by the time any rank asks,
        no *later* barrier can have failed yet — every rank computes
        the same ordinal.  The software-tree fallback uses it to index
        its (cumulative) event words independently of how many
        barriers the hardware path served.
        """
        return sorted(self._failed).index(seq)

    def _controller(self, seq: int):
        expected = set(self.ranks)
        down = self._traversal_us()
        tracer = self.tracer
        rounds_used = 0
        while True:
            self.rounds += 1
            rounds_used += 1
            t0 = self.sim.now
            yield down  # test broadcast reaches every NIC
            yield self.t_flag_check_us  # NICs check their flags (parallel)
            yield down  # combined reply climbs back to the root
            if tracer.enabled:
                tracer.add_span(t0, self.sim.now, "elite", "test_round", seq=seq)
            if self._arrived[seq] >= expected:
                break
            if rounds_used >= self.max_rounds:
                # Probe budget exhausted: the barrier is not going to
                # pass.  Tell every *arrived* rank (stragglers get the
                # word from ``enter``) and drop the barrier's state —
                # the library layer degrades to the software tree.
                self.failures += 1
                tracer.count("elite.hw_give_up")
                arrived = sorted(self._arrived[seq])
                self._failed.add(seq)
                del self._arrived[seq]
                for rank in arrived:
                    self._release[rank].put(("hw-failed", seq))
                return
            self.retries += 1
            backoff = self.retry_backoff_us * self.backoff_factor ** (
                rounds_used - 1
            )
            if self.backoff_cap_us > 0:
                backoff = min(backoff, self.backoff_cap_us)
            yield backoff
        # The *set* half of the atomic test-and-set: a second full
        # transaction commits the flags ("a higher number of network
        # transactions" than a chained-RDMA step, §8.2).
        t0 = self.sim.now
        yield down
        yield self.t_flag_check_us
        yield down
        yield down  # release broadcast
        if tracer.enabled:
            tracer.add_span(t0, self.sim.now, "elite", "set_release", seq=seq)
        del self._arrived[seq]
        for rank in self.ranks:
            self._release[rank].put(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HardwareBarrier ranks={len(self.ranks)} retries={self.retries}>"
