"""Quadrics QsNet: Elan3 NIC, chained events, Elite switches, Elanlib.

The pieces the paper uses (§4.1, §7):

- **RDMA** — interprocess communication is remote DMA; an RDMA with *no
  data* fires a remote event, "a kind of notification to the remote
  process".
- **Chained events** — "a very useful chained event mechanism, which
  allows one RDMA descriptor to be triggered upon the completion of
  another RDMA descriptor".  This is the machinery the NIC-based
  barrier is built from: a list of chained RDMA descriptors, armed from
  user level, each triggered by the arrival of a remote event — no Elan
  thread needed.
- **Elanlib barriers** — ``elan_gsync()`` (tree gather-broadcast over
  tagged message ports) and ``elan_hgsync()`` (hardware
  broadcast/test-and-set barrier, fast but requiring well-synchronized
  callers, falling back to the tree otherwise).

Unlike Myrinet, QsNet delivers reliably in hardware, so there is no
ACK/timeout machinery anywhere in this subpackage.
"""

from repro.quadrics.params import ElanParams
from repro.quadrics.events import ElanEvent
from repro.quadrics.elan import Elan3Nic, RdmaDescriptor
from repro.quadrics.elite import HardwareBarrier
from repro.quadrics.elanlib import (
    ElanPort,
    elan_gsync,
    elan_hgsync,
    elan_hw_broadcast,
)

__all__ = [
    "ElanParams",
    "ElanEvent",
    "Elan3Nic",
    "RdmaDescriptor",
    "HardwareBarrier",
    "ElanPort",
    "elan_gsync",
    "elan_hgsync",
    "elan_hw_broadcast",
]
