"""Elanlib: the host-side Quadrics programming library.

Provides the pieces the paper compares against and builds on:

- :class:`ElanPort` — per-process handle: tport (tagged message) send /
  receive, host-triggered RDMA, and host-event waiting.
- :func:`elan_gsync` — the tree-based gather-broadcast barrier (what
  ``elan_gsync()`` does when hardware broadcast is unavailable).  This
  is the "Elan-Barrier" series in Fig. 7.
- :func:`elan_hgsync` — the hardware-broadcast barrier ("Elan-HW-
  Barrier" in Fig. 7), falling back to the tree when hardware broadcast
  is disabled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.host import HostCpu
from repro.pci import PciBus
from repro.quadrics.elan import Elan3Nic, RdmaDescriptor, TportMessage
from repro.quadrics.elite import HardwareBarrier
from repro.sim import ArbitratedResource, Simulator



class ElanPort:
    """One host process's window onto its Elan3 NIC."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        nic: Elan3Nic,
        cpu: HostCpu,
        pci: PciBus,
    ):
        self.sim = sim
        self.node_id = node_id
        self.nic = nic
        self.cpu = cpu
        self.pci = pci
        self._tport_pending: list[TportMessage] = []
        self._host_event_pending: list[Any] = []
        # Poller seats: at most one waiter per queue sits on the NIC
        # store; the rest queue here.  Arbitrated, so which of two
        # same-instant waiters polls (and therefore pays the poll-lag
        # and poll costs) is canonical, not event-heap order (SL101).
        self._tport_seat = ArbitratedResource(
            sim, 1, name=f"elan{node_id}.tport.seat"
        )
        self._host_event_seat = ArbitratedResource(
            sim, 1, name=f"elan{node_id}.hostev.seat"
        )

    # ------------------------------------------------------------------
    # Command issue (host -> Elan)
    # ------------------------------------------------------------------
    def _command(self):
        """Issue one command word to the Elan (PIO + NIC pickup)."""
        yield from self.pci.pio_write()
        yield self.nic.params.t_pio_command

    def trigger_rdma(self, descriptor: RdmaDescriptor):
        """Host-triggered RDMA: how a barrier chain is kicked off (§7:
        "the very first RDMA operation, which the host process triggers
        to initiate a barrier operation")."""
        yield from self._command()
        self.nic.issue_rdma(descriptor)

    def set_local_event(self, name: str):
        """Host sets one of its own NIC's events (cheap SRAM write)."""
        yield from self._command()
        self.nic.event(name).set_event()

    # ------------------------------------------------------------------
    # Tagged message ports (tports)
    # ------------------------------------------------------------------
    def tport_send(self, dst: int, tag: Any, payload: Any = None, size_bytes: int = 0):
        yield from self.cpu.compute(self.cpu.params.send_overhead_us, "send_overhead")
        yield from self.pci.pio_write()
        message = TportMessage(src=self.node_id, tag=tag, payload=payload)
        yield from self.nic.tport_inject(dst, message, size_bytes)

    def _demux_recv(self, queue, pending: list, seat, matches):
        """Blocking receive with out-of-order buffering, safe for
        multiple concurrent waiters on one port.

        Only the *seat holder* sits on the NIC queue; co-waiters queue
        on the seat.  Whenever the holder pops an item it does not
        want, it buffers the item and releases the seat, so the next
        waiter (in canonical order) re-scans the buffer and takes over
        polling.  Without this hand-off the queue's FIFO getter order
        can deliver waiter B's item to waiter A, which buffers it
        while B stays blocked forever (two jobs sharing a node each
        park a collective wait here).  The seat is arbitrated: which
        of two same-instant waiters polls — and therefore pays the
        poll-lag and poll costs — must not depend on event-heap pop
        order (simlint SL101).
        """
        params = self.cpu.params
        while True:
            for i, item in enumerate(pending):
                if matches(item):
                    pending.pop(i)
                    yield from self.cpu.compute(
                        params.recv_overhead_us, "recv_overhead"
                    )
                    return item
            yield seat.request()
            # The buffer may have grown while we queued for the seat.
            matched = None
            for i, item in enumerate(pending):
                if matches(item):
                    matched = pending.pop(i)
                    break
            if matched is not None:
                seat.release()
                yield from self.cpu.compute(params.recv_overhead_us, "recv_overhead")
                return matched
            if len(queue) > 0:
                item = queue.try_get()
            else:
                blocked_at = self.sim.now
                item = yield queue.get()
                # An item landing at the very instant polling begins is
                # caught by the first poll; only a later arrival pays the
                # mean phase lag.  (Same-instant cost must not depend on
                # put-vs-get scheduling order — simlint SL101.)
                if self.sim.now > blocked_at:
                    yield params.poll_interval_us / 2.0
            yield from self.cpu.compute(params.poll_us, "poll")
            seat.release()
            if matches(item):
                yield from self.cpu.compute(params.recv_overhead_us, "recv_overhead")
                return item
            pending.append(item)

    def tport_recv(self, matches: Callable[[TportMessage], bool]):
        """Blocking tagged receive with out-of-order buffering."""
        msg = yield from self._demux_recv(
            self.nic.tport_queue, self._tport_pending, self._tport_seat, matches
        )
        return msg

    def tport_recv_tag(self, tag: Any):
        msg = yield from self.tport_recv(lambda m: m.tag == tag)
        return msg

    # ------------------------------------------------------------------
    # Host events (completion notifications from the NIC)
    # ------------------------------------------------------------------
    def wait_host_event(self, matches: Callable[[Any], bool]):
        ev = yield from self._demux_recv(
            self.nic.host_events,
            self._host_event_pending,
            self._host_event_seat,
            matches,
        )
        return ev

    def poll_host_event(self, matches: Callable[[Any], bool]):
        """One non-blocking poll for a host event.

        Drains whatever the NIC has already posted (one poll cost),
        then returns the matching event or ``None`` — never blocks.
        Non-matching events are buffered exactly as in
        :meth:`wait_host_event`; this is the ``test`` half of a
        non-blocking chained barrier.
        """
        params = self.cpu.params
        queue = self.nic.host_events
        yield from self.cpu.compute(params.poll_us, "poll")
        while len(queue) > 0 and queue.getters_waiting == 0:
            self._host_event_pending.append(queue.try_get())
        for i, ev in enumerate(self._host_event_pending):
            if matches(ev):
                self._host_event_pending.pop(i)
                yield from self.cpu.compute(params.recv_overhead_us, "recv_overhead")
                return ev
        return None


# ----------------------------------------------------------------------
# Elanlib barriers
# ----------------------------------------------------------------------
def _tree_children(index: int, size: int, degree: int) -> list[int]:
    return [c for c in range(index * degree + 1, index * degree + degree + 1) if c < size]


def _tree_parent(index: int, degree: int) -> Optional[int]:
    return None if index == 0 else (index - 1) // degree


def elan_gsync(
    port: ElanPort,
    ranks: Sequence[int],
    seq: int,
    degree: int = 4,
    event_prefix: str = "gsync",
):
    """Tree-based gather-broadcast barrier (host-driven per level).

    Combining uses zero-byte RDMAs into per-node Elan *events*: a
    parent's "up" event word accumulates one set-event per child, so the
    parent polls a single host word instead of matching ``degree``
    messages.  The release fans back down the same way.  The host still
    drives every tree level — that host → NIC → wire → NIC → host
    turnaround per level is what the chained-RDMA barrier eliminates
    and beats by 2.48x (§8.2).

    Event words are cumulative, so back-to-back barriers with the same
    ``ranks`` reuse them with growing thresholds; ``event_prefix``
    gives a caller mixing gsync with another user of the same events
    (e.g. the hardware-barrier fallback path, whose ``seq`` numbering
    is independent) its own event words.
    """
    yield from port.cpu.compute(port.cpu.params.barrier_call_us, "barrier_call")
    ranks = list(ranks)
    index = ranks.index(port.node_id)
    size = len(ranks)
    children = _tree_children(index, size, degree)
    parent = _tree_parent(index, degree)
    nic = port.nic
    up_event = f"{event_prefix}_up"
    down_event = f"{event_prefix}_down"
    up_word = (f"{event_prefix}-up", seq)
    down_word = (f"{event_prefix}-down", seq)
    if children:
        nic.arm_host_notify(up_event, (seq + 1) * len(children), value=up_word)
        yield from port.wait_host_event(lambda ev: ev == up_word)
    if parent is not None:
        yield from port.trigger_rdma(
            RdmaDescriptor(dst=ranks[parent], remote_event=up_event)
        )
        nic.arm_host_notify(down_event, seq + 1, value=down_word)
        yield from port.wait_host_event(lambda ev: ev == down_word)
    for child in children:
        yield from port.trigger_rdma(
            RdmaDescriptor(dst=ranks[child], remote_event=down_event)
        )


def elan_hw_broadcast(
    port: ElanPort,
    ranks: Sequence[int],
    seq: int,
    size_bytes: int = 0,
    value: Any = None,
    event_prefix: str = "hbcast",
):
    """Hardware-broadcast a payload from ``ranks[0]`` to every rank.

    QsNet's Elite switches replicate a single packet down the fat tree
    (§1: "Some modern interconnects, such as QsNet ... provide hardware
    broadcast primitives"), so delivery is one tree traversal for all
    receivers; each NIC then RDMAs the payload into host memory and
    fires the arrival event.  Returns the payload at every rank.

    As with the hardware barrier, the primitive needs the contiguous
    node set the fabric replicates to — the caller's ``ranks``.

    ``event_prefix`` scopes the arrival event word and mailbox slot to
    one caller: two communicators broadcasting concurrently through the
    same NIC (overlapping jobs on a shared node) must not share the
    cumulative notify threshold or clobber each other's mailbox — each
    passes its own prefix (e.g. ``hbcast.g<group_id>``) and its own
    independent ``seq`` numbering.
    """
    from repro.network import Packet, PacketKind
    from repro.quadrics.elan import RdmaDescriptor

    ranks = list(ranks)
    root = ranks[0]
    nic = port.nic
    event_name = event_prefix
    event_word = (event_prefix, seq)
    nic.arm_host_notify(event_name, seq + 1, value=event_word)
    if port.node_id == root:
        yield from port.cpu.compute(port.cpu.params.send_overhead_us, "send_overhead")
        yield from port._command()
        if size_bytes > 0:
            from repro.pci import DmaDirection

            yield from port.pci.dma(size_bytes, DmaDirection.HOST_TO_NIC)
        # Receivers RDMA `size_bytes` into host memory on arrival.
        descriptor = RdmaDescriptor(
            dst=root, remote_event=event_name, size_bytes=size_bytes, payload=value
        )
        port.nic.fabric.broadcast(
            Packet(
                src=root,
                dst=root,
                kind=PacketKind.BCAST,
                size_bytes=nic.params.rdma_packet_bytes + size_bytes,
                payload=descriptor,
            ),
            targets=ranks,
        )
    yield from port.wait_host_event(lambda ev: ev == event_word)
    return nic.rdma_mailbox.get(event_name)


def elan_hgsync(
    port: ElanPort,
    hw_barrier: Optional[HardwareBarrier],
    ranks: Sequence[int],
    seq: int,
    hw_enabled: bool = True,
    degree: int = 4,
    fallback: bool = True,
):
    """The hardware barrier; falls back to the tree when disabled.

    With hardware broadcast available, entry is a PIO that sets the
    NIC's arrived flag, and the Elite test-and-set does the rest.

    Graceful degradation: when the Elite controller exhausts its probe
    budget (``ElanParams.hw_max_rounds``) it publishes a failure word
    instead of the release.  With ``fallback=True`` (the default) the
    library then runs the software tree barrier for this seq — slower,
    but correct — counting ``elan.hw_fallback``; with ``fallback=False``
    the failure surfaces as :class:`~repro.collectives.BarrierFailure`.
    """
    if not hw_enabled or hw_barrier is None:
        yield from elan_gsync(port, ranks, seq, degree=degree)
        return
    yield from port.cpu.compute(port.cpu.params.barrier_call_us, "barrier_call")
    yield from port.pci.pio_write()
    yield port.nic.params.t_hw_flag_check  # NIC commits the arrived flag
    release = hw_barrier.enter(port.node_id, seq)
    failed = False
    while True:
        got = yield release.get()
        if got == seq:
            break
        if got == ("hw-failed", seq):
            failed = True
            break
    # The host discovers the release (or the failure word) by polling
    # its memory word.
    yield port.cpu.params.poll_interval_us / 2.0
    yield from port.cpu.compute(port.cpu.params.poll_us, "poll")
    yield from port.cpu.compute(port.cpu.params.recv_overhead_us, "recv_overhead")
    if not failed:
        return
    if not fallback:
        # Deferred import: collectives imports quadrics pieces at
        # package-init time, so a top-level import here would be
        # circular.
        from repro.collectives.failures import FailureReason
        from repro.collectives.messages import BarrierFailure

        raise BarrierFailure(
            -1,
            seq,
            FailureReason.HW_BUDGET.value,
            node=port.node_id,
        )
    port.nic.tracer.count("elan.hw_fallback")
    # The fallback tree numbers its barriers by *failure ordinal*, not
    # by the caller's seq: the cumulative gsync event thresholds must
    # advance by exactly one per tree barrier actually run.
    yield from elan_gsync(
        port,
        ranks,
        hw_barrier.fallback_ordinal(seq),
        degree=degree,
        event_prefix="hwfb",
    )
