"""Elan event words: counters with thresholds and chained actions.

An Elan3 event is a counter in NIC memory.  A *set-event* operation
increments it; a descriptor (or host waiter) armed with a threshold
fires when the count reaches that threshold.  Because the counter is
cumulative, a set-event arriving *before* anyone armed a waiter is not
lost — exactly the property that lets back-to-back barriers overlap
safely (node A may start barrier *k+1* and fire events at node B while
B is still finishing barrier *k*).
"""

from __future__ import annotations

from typing import Callable


class ElanEvent:
    """One event word in Elan SRAM.

    ``arm(threshold, action)`` registers ``action`` (a zero-argument
    callable) to run as soon as ``count >= threshold``; if that is
    already true it runs immediately (synchronously — the caller is the
    event unit, which has already paid its processing cost).
    """

    __slots__ = ("name", "count", "_armed")

    def __init__(self, name: str = "event"):
        self.name = name
        self.count = 0
        self._armed: list[tuple[int, Callable[[], None]]] = []

    def set_event(self, n: int = 1) -> None:
        """A set-event (remote or local) increments the counter."""
        if n < 1:
            raise ValueError(f"set count must be >= 1, got {n}")
        self.count += n
        self._fire_ready()

    def arm(self, threshold: int, action: Callable[[], None]) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._armed.append((threshold, action))
        self._fire_ready()

    def _fire_ready(self) -> None:
        armed = self._armed
        if not armed:
            return
        count = self.count
        ready = [a for a in armed if count >= a[0]]
        if not ready:
            return
        if len(ready) == len(armed):
            self._armed = []
        else:
            self._armed = [a for a in armed if count < a[0]]
        for _, action in ready:
            action()

    @property
    def armed_count(self) -> int:
        return len(self._armed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElanEvent {self.name} count={self.count} armed={len(self._armed)}>"
