"""Elan event words: counters with thresholds and chained actions.

An Elan3 event is a counter in NIC memory.  A *set-event* operation
increments it; a descriptor (or host waiter) armed with a threshold
fires when the count reaches that threshold.  Because the counter is
cumulative, a set-event arriving *before* anyone armed a waiter is not
lost — exactly the property that lets back-to-back barriers overlap
safely (node A may start barrier *k+1* and fire events at node B while
B is still finishing barrier *k*).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable


class ElanEvent:
    """One event word in Elan SRAM.

    ``arm(threshold, action)`` registers ``action`` (a zero-argument
    callable) to run as soon as ``count >= threshold``; if that is
    already true it runs immediately (synchronously — the caller is the
    event unit, which has already paid its processing cost).

    Waiters sit in a min-heap keyed by threshold (ties fire in arm
    order).  The pre-armed chained barrier parks one waiter per future
    iteration on the head event, so a linear scan per set-event — fine
    when at most one waiter existed — became an O(iterations) cost on
    every arriving message; the heap makes the common no-fire set-event
    a single head comparison.
    """

    __slots__ = ("name", "count", "_armed", "_n")

    def __init__(self, name: str = "event"):
        self.name = name
        self.count = 0
        self._armed: list[tuple[int, int, Callable[[], None]]] = []
        self._n = 0

    def set_event(self, n: int = 1) -> None:
        """A set-event (remote or local) increments the counter."""
        if n < 1:
            raise ValueError(f"set count must be >= 1, got {n}")
        self.count += n
        armed = self._armed
        if armed and armed[0][0] <= self.count:
            self._fire_ready()

    def arm(self, threshold: int, action: Callable[[], None]) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._n += 1
        heappush(self._armed, (threshold, self._n, action))
        if threshold <= self.count:
            self._fire_ready()

    def _fire_ready(self) -> None:
        # Snapshot the ready set before running any action (an action
        # may set this same event or arm new waiters; those must see the
        # post-drain state, exactly as with the old list snapshot).
        armed = self._armed
        count = self.count
        ready = []
        while armed and armed[0][0] <= count:
            ready.append(heappop(armed))
        for _, _, action in ready:
            action()

    def disarm_all(self) -> int:
        """Drop every armed waiter without firing it.

        Group revocation uses this: a revoked chained-barrier group must
        never fire a straggler's RDMA chain or a stale done notification
        after the survivors moved to a new epoch.  The counter itself is
        left alone — late set-events still accumulate harmlessly.
        Returns the number of waiters dropped.
        """
        dropped = len(self._armed)
        self._armed.clear()
        return dropped

    @property
    def armed_count(self) -> int:
        return len(self._armed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElanEvent {self.name} count={self.count} armed={len(self._armed)}>"
