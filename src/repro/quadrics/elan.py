"""The Elan3 NIC: event unit, DMA engine, thread processor.

Unlike the LANai (one processor doing everything), Elan3 has dedicated
functional units, modeled as separate capacity-1 resources:

- the **event unit** processes arriving set-events and fires chained
  actions;
- the **DMA engine** processes RDMA descriptors and injects packets;
- the **thread processor** runs Elanlib's tport (tagged messaging) code.

A barrier built from chained RDMA descriptors (§7) touches only the
event unit and DMA engine — the paper deliberately avoids the thread
processor ("an extra thread does increase the processing load to the
Elan NIC").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.network import Fabric, Packet, PacketKind
from repro.pci import DmaDirection, PciBus
from repro.quadrics.events import ElanEvent
from repro.quadrics.params import ElanParams
from repro.sim import Resource, Simulator, Store, Tracer


@dataclass
class RdmaDescriptor:
    """One RDMA descriptor in Elan SRAM.

    ``size_bytes == 0`` is the notification RDMA the barrier uses: no
    data, it just fires ``remote_event`` at ``dst``.  ``local_event``
    (if set) is set-evented locally once the packet is injected —
    that is what lets descriptors chain into a pipeline.

    ``group_id`` (optional) tags the descriptor with the collective
    group that armed it, so fabric per-flow accounting can attribute
    the resulting RDMA packets — it has no protocol effect.
    """

    dst: int
    remote_event: str
    size_bytes: int = 0
    local_event: Optional[str] = None
    payload: Any = None
    group_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("negative RDMA size")


@dataclass(frozen=True)
class TportMessage:
    """A tagged message delivered to the host by the tport path."""

    src: int
    tag: Any
    payload: Any


class Elan3Nic:
    """One Elan3 NIC and its SRAM-resident event/descriptor state."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: ElanParams,
        fabric: Fabric,
        pci: PciBus,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric = fabric
        self.pci = pci
        self.tracer = tracer or Tracer()
        self.name = f"elan{node_id}"
        # Span lanes, one per functional unit (each is capacity-1, so
        # spans within a lane never overlap).
        self._event_lane = f"{self.name}.event"
        self._dma_lane = f"{self.name}.dma"
        self._thread_lane = f"{self.name}.thread"

        self.event_unit = Resource(sim, 1, name=f"{self.name}.events")
        self.dma_engine = Resource(sim, 1, name=f"{self.name}.dma")
        self.thread_cpu = Resource(sim, 1, name=f"{self.name}.thread")

        self._events: dict[str, ElanEvent] = {}
        # RDMA-deposited values readable by the host after the paired
        # event fires (the "memory the RDMA wrote into").
        self.rdma_mailbox: dict[str, object] = {}
        # Receive side is a callback-driven state machine (strictly one
        # packet in processing at a time, like the old rx-loop process):
        # _rx_busy gates entry, arrivals during processing back up here.
        self._rx_backlog: deque[Packet] = deque()
        self._rx_busy = False
        self._rx_waiting_desc: Optional[RdmaDescriptor] = None
        # Host-visible notifications (host memory words the host polls).
        self.host_events = Store(sim, name=f"{self.name}.host_events")
        # Tport receive queue (messages already matched by the thread).
        self.tport_queue = Store(sim, name=f"{self.name}.tport")

        # Failure detection: every clean received packet refreshes the
        # sender's liveness; the heartbeat loop is opt-in.
        from repro.collectives.membership import MembershipView

        self.membership = MembershipView(node_id)
        #: Fail-stop flag: a killed node's NIC stops probing (the wire
        #: side of the kill is a fault-injector blackhole).
        self.crashed = False

        fabric.attach(node_id, self._on_wire_packet)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, name: str) -> ElanEvent:
        ev = self._events.get(name)
        if ev is None:
            ev = ElanEvent(name=f"{self.name}.{name}")
            self._events[name] = ev
        return ev

    def chain(self, trigger: str, threshold: int, descriptor: RdmaDescriptor) -> None:
        """Arm ``descriptor`` to fire when ``trigger`` reaches ``threshold``.

        This is the paper's chained-RDMA mechanism: the arming itself is
        a host-side SRAM write (cost paid by the caller); firing later
        costs only the DMA engine's issue time.
        """
        self.event(trigger).arm(threshold, lambda: self.issue_rdma(descriptor))

    def arm_host_notify(self, trigger: str, threshold: int, value: Any = None) -> None:
        """When ``trigger`` reaches ``threshold``, notify the host."""
        self.event(trigger).arm(threshold, lambda: self._notify_host(value))

    def _notify_host(self, value: Any) -> None:
        # Callback chain (event unit -> PCI DMA -> host word), same
        # timing as the old generator process without allocating one.
        if self.event_unit.try_acquire():
            self.sim.schedule_detached(
                self.params.t_host_event, self._notify_unit_done, value
            )
        else:
            ev = self.event_unit.request()
            ev.add_callback(
                lambda _ev, v=value: self.sim.schedule_detached(
                    self.params.t_host_event, self._notify_unit_done, v
                )
            )

    def _notify_unit_done(self, value: Any) -> None:
        self.event_unit.release()
        tracer = self.tracer
        if tracer.enabled:
            now = self.sim.now
            tracer.add_span(
                now - self.params.t_host_event, now, self._event_lane, "host_notify"
            )
        self.pci.dma_async(
            self.params.host_event_bytes, DmaDirection.NIC_TO_HOST,
            self.host_events.put, value,
        )

    # ------------------------------------------------------------------
    # RDMA engine
    # ------------------------------------------------------------------
    def issue_rdma(self, descriptor: RdmaDescriptor) -> None:
        """Queue a descriptor on the DMA engine (fire-and-forget)."""
        # Fast path for the barrier's bread and butter: a zero-byte
        # notification RDMA on an idle engine needs no host-memory DMA
        # and therefore no process — one scheduled call covers the
        # engine's issue time.  (try_acquire only succeeds when no
        # waiter is queued, so FIFO fairness is preserved.)
        if descriptor.size_bytes == 0 and self.dma_engine.try_acquire():
            self.sim.schedule_detached(
                self.params.t_rdma_issue, self._rdma_issue_done, descriptor
            )
            return
        self.sim.process(self._rdma_proc(descriptor), name=f"{self.name}.rdma")

    def _rdma_issue_done(self, descriptor: RdmaDescriptor) -> None:
        """Tail of the fast path: inject the packet, free the engine."""
        p = self.params
        tracer = self.tracer
        tracer.count("elan.rdma_issued")
        if tracer.enabled:
            now = self.sim.now
            tracer.add_span(
                now - p.t_rdma_issue, now, self._dma_lane, "rdma_issue",
                dst=descriptor.dst,
            )
        self.fabric.transmit(
            Packet(
                src=self.node_id,
                dst=descriptor.dst,
                kind=PacketKind.RDMA,
                size_bytes=p.rdma_packet_bytes,
                payload=descriptor,
            )
        )
        self.dma_engine.release()
        if descriptor.local_event is not None:
            self.event(descriptor.local_event).set_event()

    def _rdma_proc(self, descriptor: RdmaDescriptor):
        p = self.params
        yield self.dma_engine.request()
        start = self.sim.now
        yield p.t_rdma_issue
        if descriptor.size_bytes > 0:
            # Data is fetched from host memory over the PCI bus.
            yield from self.pci.dma(descriptor.size_bytes, DmaDirection.HOST_TO_NIC)
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_span(
                start, self.sim.now, self._dma_lane, "rdma_issue", dst=descriptor.dst
            )
        tracer.count("elan.rdma_issued")
        self.fabric.transmit(
            Packet(
                src=self.node_id,
                dst=descriptor.dst,
                kind=PacketKind.RDMA,
                size_bytes=p.rdma_packet_bytes + descriptor.size_bytes,
                payload=descriptor,
            )
        )
        self.dma_engine.release()
        if descriptor.local_event is not None:
            self.event(descriptor.local_event).set_event()

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _on_wire_packet(self, packet: Packet) -> None:
        if packet.corrupted:
            # Link-level CRC catches the mangled packet at the inbound
            # port; Elan3 has no end-to-end retransmission above that,
            # so the chaos campaign points corruption at Myrinet and
            # this discard exists to keep a stray corrupt packet from
            # firing events with a mangled descriptor.
            self.tracer.count("elan.rx_crc_drop")
            return
        self.membership.observe_alive(packet.src, self.sim.now)
        if packet.kind == PacketKind.HEARTBEAT:
            # Pure liveness probe; it never touches the rx machine.
            self.tracer.count("elan.heartbeat_rx")
            return
        if self._rx_busy:
            self._rx_backlog.append(packet)
        else:
            self._rx_busy = True
            self._rx_start(packet)

    def _rx_start(self, packet: Packet) -> None:
        descriptor = packet.payload
        if type(descriptor) is RdmaDescriptor and descriptor.size_bytes == 0:
            # The barrier's notification RDMA: only the event unit is
            # involved, so the whole receive is a callback chain.
            if self.event_unit.try_acquire():
                self.sim.schedule_detached(
                    self.params.t_event_fire, self._rx_fire, descriptor
                )
            else:
                self._rx_waiting_desc = descriptor
                self.event_unit.request().add_callback(self._rx_unit_granted)
            return
        self.sim.process(self._rx_slow(packet), name=f"{self.name}.rx")

    def _rx_unit_granted(self, _ev) -> None:
        descriptor = self._rx_waiting_desc
        self._rx_waiting_desc = None
        self.sim.schedule_detached(self.params.t_event_fire, self._rx_fire, descriptor)

    def _rx_fire(self, descriptor: RdmaDescriptor) -> None:
        self.event_unit.release()
        tracer = self.tracer
        tracer.count("elan.event_fired")
        if tracer.enabled:
            now = self.sim.now
            tracer.add_span(
                now - self.params.t_event_fire, now, self._event_lane, "event_fire",
                event=descriptor.remote_event,
            )
        if descriptor.payload is not None:
            self.rdma_mailbox[descriptor.remote_event] = descriptor.payload
        self.event(descriptor.remote_event).set_event()
        self._rx_next()

    def _rx_next(self) -> None:
        if self._rx_backlog:
            self._rx_start(self._rx_backlog.popleft())
        else:
            self._rx_busy = False

    def _rx_slow(self, packet: Packet):
        p = self.params
        descriptor = packet.payload
        if isinstance(descriptor, RdmaDescriptor):
            if descriptor.size_bytes > 0:
                # Deposit the data into host memory (true RDMA).
                yield from self.pci.dma(
                    descriptor.size_bytes, DmaDirection.NIC_TO_HOST
                )
            yield from self._unit_task(
                self.event_unit, p.t_event_fire, self._event_lane, "event_fire"
            )
            self.tracer.count("elan.event_fired")
            if descriptor.payload is not None:
                self.rdma_mailbox[descriptor.remote_event] = descriptor.payload
            self.event(descriptor.remote_event).set_event()
        else:
            # Tport message: matched by the thread processor, then
            # handed to the host.  Payload and completion word ride
            # one DMA burst (Elan3 writes host memory directly).
            yield from self._unit_task(
                self.thread_cpu, p.t_tport_match, self._thread_lane, "tport_match"
            )
            yield from self._unit_task(
                self.event_unit, p.t_host_event, self._event_lane, "host_notify"
            )
            yield from self.pci.dma(packet.size_bytes, DmaDirection.NIC_TO_HOST)
            self.tport_queue.put(packet.payload)
        self._rx_next()

    # ------------------------------------------------------------------
    # Failure detector
    # ------------------------------------------------------------------
    def enable_failure_detector(
        self,
        peers,
        rng=None,
        period_us: float = 0.0,
        timeout_us: float = 0.0,
        horizon_us: float = 0.0,
    ) -> None:
        """Start the heartbeat/suspicion loop watching ``peers``.

        Mirrors the Myrinet detector: off by default (zero period
        refuses to start), probes suppressed by piggybacked liveness,
        bounded by the horizon so the event heap drains.  Probes are
        modeled as out-of-band link-level packets — they touch neither
        the event unit nor the DMA engine, so detector traffic cannot
        perturb the calibrated barrier pipeline.
        """
        params = self.params
        period = period_us or params.heartbeat_period_us
        if period <= 0:
            raise ValueError("failure detector needs a positive heartbeat period")
        timeout = timeout_us or params.heartbeat_timeout_us or 3.0 * period
        horizon = horizon_us or params.heartbeat_horizon_us or 64.0 * period
        offset = 0.0
        if rng is not None:
            offset = rng.substream(f"hb/{self.node_id}").uniform(0.0, period)
        watched = tuple(sorted(p for p in peers if p != self.node_id))
        # Beat decisions key on the TX gap (see the Myrinet loop): every
        # outgoing packet proves this node's liveness to its destination.
        self.fabric.observe_tx(self.node_id, self.membership.observe_sent)
        self.sim.process(
            self._heartbeat_loop(watched, period, timeout, horizon, offset),
            name=f"{self.name}.hb",
        )

    def _heartbeat_loop(self, peers, period_us, timeout_us, horizon_us, offset_us):
        sim = self.sim
        p = self.params
        membership = self.membership
        start = sim.now
        if offset_us > 0:
            yield offset_us
        while sim.now < horizon_us:
            if self.crashed:
                yield period_us
                continue
            for peer in peers:
                if membership.is_dead(peer):
                    continue
                silent = membership.silent_for(peer, sim.now, start)
                if silent > timeout_us:
                    verdict = membership.declare_dead(
                        peer,
                        sim.now,
                        "heartbeat-timeout",
                        detail=f"silent {silent:.1f}us > {timeout_us:.1f}us",
                    )
                    if verdict is not None:
                        self.tracer.count("elan.peer_dead_hb")
                    continue
                sent_gap = sim.now - membership.last_sent.get(peer, start)
                if sent_gap >= period_us:
                    self.fabric.transmit(
                        Packet(
                            src=self.node_id,
                            dst=peer,
                            kind=PacketKind.HEARTBEAT,
                            size_bytes=p.heartbeat_bytes,
                            payload=None,
                        )
                    )
                    self.tracer.count("elan.heartbeat_tx")
            yield period_us

    # ------------------------------------------------------------------
    # Epoch repair support
    # ------------------------------------------------------------------
    def disarm_events(self, prefix: str) -> int:
        """Disarm every armed action on events whose name starts with
        ``prefix`` (group revocation: a revoked chained-barrier group's
        events must never fire a straggler's RDMA chain or a stale done
        notification into the new epoch).  Returns the count disarmed.
        """
        disarmed = 0
        for name in sorted(self._events):
            if name.startswith(prefix):
                disarmed += self._events[name].disarm_all()
        if disarmed:
            self.tracer.count("elan.events_disarmed", disarmed)
        return disarmed

    # ------------------------------------------------------------------
    # Thread processor (tport send side)
    # ------------------------------------------------------------------
    def tport_inject(self, dst: int, message: TportMessage, size_bytes: int):
        """Thread-processor half of a tagged send (host already paid
        its library overhead and the PIO)."""
        p = self.params
        yield from self._unit_task(
            self.thread_cpu, p.t_thread_step, self._thread_lane, "thread_step"
        )
        yield self.dma_engine.request()
        start = self.sim.now
        yield p.t_rdma_issue
        if size_bytes > 0:
            yield from self.pci.dma(size_bytes, DmaDirection.HOST_TO_NIC)
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_span(start, self.sim.now, self._dma_lane, "tport_inject", dst=dst)
        self.fabric.transmit(
            Packet(
                src=self.node_id,
                dst=dst,
                kind=PacketKind.DATA,
                size_bytes=p.tport_packet_bytes + size_bytes,
                payload=message,
            )
        )
        self.dma_engine.release()

    # ------------------------------------------------------------------
    def _unit_task(
        self,
        unit: Resource,
        cost: float,
        lane: Optional[str] = None,
        name: str = "task",
    ):
        yield unit.request()
        yield cost
        unit.release()
        tracer = self.tracer
        if tracer.enabled and lane is not None:
            now = self.sim.now
            tracer.add_span(now - cost, now, lane, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Elan3Nic {self.name} events={len(self._events)}>"
