"""Elan3 / Elite timing constants (µs)."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class ElanParams:
    """Per-profile Elan3 costs.

    NIC units:

    - ``t_event_fire`` — the event unit processes an arriving set-event
      (the zero-byte RDMA's destination side) and checks chained
      actions.
    - ``t_rdma_issue`` — the DMA engine processes one RDMA descriptor
      and injects the packet.
    - ``t_pio_command`` — host issues a command word to the Elan
      (memory-mapped store; much cheaper than Myrinet's doorbell path).
    - ``t_host_event`` — Elan writes a host-memory event word (the
      host polls that word; Elan's host writes are cheap).
    - ``t_thread_step`` — one Elan thread-processor dispatch, used by
      the tport (tagged message) path that ``elan_gsync`` runs over.
    - ``t_tport_match`` — receive-side tag matching in the thread
      processor.

    Hardware barrier (``elan_hgsync``):

    - ``t_hw_flag_check`` — per-NIC arrived-flag check during the
      test-and-set probe.
    - ``hw_retry_backoff_us`` — wait before re-probing when the test
      finds a missing participant (this is what makes ``hgsync``
      degrade when callers are not well synchronized).
    - ``hw_max_rounds`` — probe rounds before the controller gives up
      on a barrier (graceful degradation: ``elan_hgsync`` then falls
      back to the software tree).  The default is far above anything a
      straggler can cause, so clean runs never trip it.
    - ``hw_backoff_factor`` — per-retry multiplier on the probe
      backoff; the calibrated default 1.0 keeps the clean-run retry
      cadence (and the Fig. 7 anchors) exactly as before.
    - ``hw_backoff_cap_us`` — saturation for the backed-off probe
      interval; 0 means uncapped.

    Sizing: ``rdma_packet_bytes`` — a zero-byte RDMA still carries a
    routing/event header on the wire; ``host_event_bytes`` — the
    host-memory event word (plus tag) Elan DMAs on a host notification.
    """

    t_event_fire: float
    t_rdma_issue: float
    t_pio_command: float
    t_host_event: float
    t_thread_step: float
    t_tport_match: float
    t_hw_flag_check: float
    hw_retry_backoff_us: float
    rdma_packet_bytes: int = 32
    tport_packet_bytes: int = 64
    host_event_bytes: int = 8
    hw_max_rounds: int = 10000
    hw_backoff_factor: float = 1.0
    hw_backoff_cap_us: float = 0.0
    #: failure-detector heartbeat period; 0 disables the detector.
    heartbeat_period_us: float = 0.0
    #: silence beyond this declares the peer dead (0 -> 3 * period).
    heartbeat_timeout_us: float = 0.0
    #: detector loop exit time so the event heap drains (0 -> 64 * period).
    heartbeat_horizon_us: float = 0.0
    #: a heartbeat probe rides a host-event-sized packet.
    heartbeat_bytes: int = 8

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.startswith(("t_", "hw_")):
                if getattr(self, f.name) < 0:
                    raise ValueError(f"{f.name} must be non-negative")
        if (
            self.rdma_packet_bytes < 1
            or self.tport_packet_bytes < 1
            or self.host_event_bytes < 1
        ):
            raise ValueError("packet sizes must be positive")
        if self.hw_max_rounds < 1:
            raise ValueError("need at least one hardware-barrier round")
        if self.hw_backoff_factor < 1.0:
            raise ValueError("hw_backoff_factor must be >= 1.0")
        if (
            self.heartbeat_period_us < 0
            or self.heartbeat_timeout_us < 0
            or self.heartbeat_horizon_us < 0
        ):
            raise ValueError("heartbeat intervals must be non-negative")
        if self.heartbeat_bytes < 1:
            raise ValueError("heartbeat packets must have positive size")
