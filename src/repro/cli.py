"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``         — one barrier experiment (profile, scheme, algorithm,
  node count, iterations), printing the measured latency and counters.
- ``profiles``    — list the calibrated hardware profiles.
- ``experiment``  — run one named experiment harness (fig5, fig6, fig7,
  fig8, headline, ablation, skew, extensions, sensitivity).
- ``report``      — regenerate EXPERIMENTS.md (delegates to
  :mod:`repro.experiments.report`).
- ``trace``       — run a small traced experiment; write Chrome-trace
  JSON (open at https://ui.perfetto.dev), print an ASCII timeline, the
  critical path of one barrier iteration, and the counter audit.
- ``lint``        — simlint: static protocol-invariant analysis of the
  simulator sources (exit 0 clean / 1 findings / 2 internal error);
  ``--perturb`` adds the runtime model checks (tie-break perturbation
  across every barrier scheme plus a seeded fault run).
- ``chaos``       — the fault-injection campaign: every chaos scenario
  (loss, corruption, duplication, jitter, link flap, NIC crash, link
  death, host slowdown, HW-barrier degradation) against every
  applicable barrier scheme, with per-run invariant checks, quiescence
  audits, and tie-break determinism rounds (exit 0 pass / 1 fail);
  ``--report`` additionally writes the markdown degradation report.
- ``tune``        — auto-tune collective algorithm selection: sweep
  algorithm x N x payload through the run cache and write the winners'
  decision table (point ``REPRO_TUNING_TABLE`` at it to have
  ``ProcessGroup(algorithm="auto")`` consult it).
- ``workload``    — multi-job workload on one shared fabric: a job
  trace (generated or ``--jobs-trace``) runs several jobs with
  overlapping allocations plus seeded p2p cross-traffic, and reports
  per-job p50/p99/p999 barrier latency, slowdown vs a silent-machine
  baseline, and Jain fairness; ``--check N`` gates bit-identical
  results across N tie-break permutations, ``--kill-node`` composes
  with the chaos layer (mid-workload node kill + epoch repair).
- ``cache``       — inspect/maintain the persistent run cache
  (``stats``, ``gc``, ``clear``).  ``report``/``experiment``/``trace``/
  ``chaos`` take ``--cache/--no-cache``; ``REPRO_CACHE=0`` disables
  caching globally and ``REPRO_CACHE_DIR`` moves the cache root.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__


def _cmd_profiles(args: argparse.Namespace) -> int:
    from repro.cluster import PROFILES

    for name, profile in PROFILES.items():
        print(f"{name:<22} [{profile.network:<8}] {profile.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.cluster import build_cluster, get_profile, run_barrier_experiment

    profile = get_profile(args.profile)
    cluster = build_cluster(profile, args.nodes)
    result = run_barrier_experiment(
        cluster,
        args.barrier,
        args.algorithm,
        iterations=args.iterations,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(result)
    print(f"  mean  : {result.mean_latency_us:.2f} us")
    print(f"  min   : {result.min_iteration_us:.2f} us")
    print(f"  max   : {result.max_iteration_us:.2f} us")
    if args.counters:
        for key in sorted(result.counters):
            print(f"  {key:<24} {result.counters[key]}")
    return 0


_TRACE_DEFAULT_BARRIER = {"quadrics": "nic-chained", "myrinet": "nic-collective"}
_TRACE_DEFAULT_PROFILE = {"quadrics": "elan3_piii700", "myrinet": "lanai_xp_xeon2400"}


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.cluster import build_cluster, get_profile, run_barrier_experiment
    from repro.sim import Tracer
    from repro.tools import (
        ascii_timeline,
        audit_counters,
        critical_path,
        write_chrome_trace,
    )
    from repro.tools.runcache import point_request, resolve_cache

    profile = get_profile(args.profile or _TRACE_DEFAULT_PROFILE[args.network])
    if profile.network != args.network:
        print(f"profile {profile.name} is not a {args.network} profile", file=sys.stderr)
        return 2
    barrier = args.barrier or _TRACE_DEFAULT_BARRIER[args.network]

    tracer = Tracer(enabled=True)
    cluster = build_cluster(profile, args.nodes, tracer=tracer)
    result = run_barrier_experiment(
        cluster,
        barrier,
        iterations=args.iterations,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(result)

    # A traced run can never be *served* from the cache (the spans are
    # the product), but tracing is bit-identical to the untraced run,
    # so the cache still stores and cross-checks the point's latency —
    # a warm mismatch is a determinism regression, caught here.
    cache = resolve_cache("auto" if args.cache else None)
    if cache is not None:
        request = point_request(
            args.network, profile, barrier, "dissemination", args.nodes,
            iterations=args.iterations, warmup=args.warmup, seed=args.seed,
        )
        cached = cache.get(request)
        if cached is None:
            cache.put(request, result.mean_latency_us)
            print("run cache: cold (latency stored)", file=sys.stderr)
        elif cached != result.mean_latency_us:
            print(
                f"run cache: WARM MISMATCH — cached {cached}us != measured "
                f"{result.mean_latency_us}us under the same source digest",
                file=sys.stderr,
            )
            return 1
        else:
            print("run cache: warm (latency verified)", file=sys.stderr)
        cache.write_stats()

    write_chrome_trace(tracer, args.out)
    print(f"wrote {args.out} ({len(tracer.spans)} spans; open at https://ui.perfetto.dev)")

    t0, t1 = result.iteration_window(-1)
    print(f"\n--- timeline, last timed iteration [{t0:.3f}..{t1:.3f}us] ---")
    print(ascii_timeline(tracer, t0, t1))

    path = critical_path(tracer, t0, t1)
    print("\n--- critical path ---")
    print(path.table())
    print()
    print(path.summary())

    print("\n--- counter audit ---")
    try:
        audit = audit_counters(
            dict(tracer.counters),
            barrier,
            args.nodes,
            args.warmup + args.iterations,
            profile=profile.name,
        )
    except ValueError as exc:
        print(f"(skipped: {exc})")
        return 0
    print(audit.table())
    return 0 if audit.passed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.tools.simlint import run_lint

    return run_lint(
        root=Path(args.path) if args.path else None,
        perturb=args.perturb,
        perturb_nodes=args.perturb_nodes,
        perturb_rounds=args.perturb_rounds,
        perturb_iterations=args.perturb_iterations,
        seed=args.seed,
        ir=args.ir,
        ir_grid=args.grid,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.tools.chaos import run_campaign
    from repro.tools.runcache import atomic_write_text, resolve_cache

    cache = resolve_cache("auto" if args.cache else None)
    networks = (
        ("myrinet", "quadrics") if args.network == "both" else (args.network,)
    )
    if args.fuzz:
        import warnings

        from repro.tools.chaos import run_fuzz_block

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = run_fuzz_block(
                networks=networks,
                seeds=tuple(range(args.seed, args.seed + args.fuzz_seeds)),
                nodes=args.nodes,
                rounds=args.rounds,
            )
        print(report.render())
        return 0 if report.ok else 1
    campaign = run_campaign(
        networks=networks,
        nodes=args.nodes,
        iterations=args.iterations,
        rounds=args.rounds,
        seed=args.seed,
        cache=cache,
    )
    print(campaign.render())
    if args.report:
        from repro.experiments.chaos import degradation_report

        document = (
            "# Chaos campaign\n\n```\n" + campaign.render() + "\n```\n\n"
            + degradation_report(nodes=args.nodes, seed=args.seed)
        )
        atomic_write_text(args.report, document)
        print(f"degradation report written to {args.report}")
    if cache is not None:
        cache.write_stats()
    return 0 if campaign.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments.common import print_experiment
    from repro.tools.runcache import resolve_cache

    cache = resolve_cache("auto" if args.cache else None)
    module = importlib.import_module(f"repro.experiments.{args.name}")
    print_experiment(module.run(quick=args.quick, jobs=args.jobs, cache=cache))
    if cache is not None:
        cache.write_stats()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if not args.cache:
        forwarded.append("--no-cache")
    forwarded.extend(["--out", args.out, "--jobs", str(args.jobs)])
    return report_main(forwarded)


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tools.tune import main as tune_main

    forwarded = ["--out", args.out, "--jobs", str(args.jobs)]
    if args.quick:
        forwarded.append("--quick")
    if args.repeats is not None:
        forwarded.extend(["--repeats", str(args.repeats)])
    if not args.cache:
        forwarded.append("--no-cache")
    return tune_main(forwarded)


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload import (
        CrossTrafficSpec,
        JobMetrics,
        KillSpec,
        dump_trace,
        format_job_table,
        generate_trace,
        load_trace,
        run_workload_cached,
        verify_workload_determinism,
    )

    networks = (
        ("myrinet", "quadrics") if args.network == "both" else (args.network,)
    )
    xtraffic = None
    if args.xtraffic and args.xtraffic_rate > 0:
        xtraffic = CrossTrafficSpec(
            rate_per_ms=args.xtraffic_rate, size_bytes=args.xtraffic_bytes
        )
    kill = None
    if args.kill_node is not None:
        kill = KillSpec(node=args.kill_node, at_us=args.kill_at)
        if xtraffic is not None:
            print("chaos mode: cross-traffic disabled (needs a fixed horizon)",
                  file=sys.stderr)
            xtraffic = None

    failed = False
    for network in networks:
        if args.jobs_trace:
            jobs = load_trace(args.jobs_trace)
        else:
            jobs = generate_trace(
                args.pattern,
                args.jobs,
                args.nodes,
                seed=args.seed,
                iterations=args.iterations,
                payload_bytes=args.payload_bytes,
            )
        if args.write_trace:
            dump_trace(jobs, args.write_trace)
            print(f"trace written to {args.write_trace}")
        result = run_workload_cached(
            network,
            args.nodes,
            jobs,
            seed=args.seed,
            xtraffic=xtraffic,
            kill=kill,
            cache="auto" if args.cache else None,
        )
        metrics = [JobMetrics(**job) for job in result["jobs"]]
        print(f"\n=== workload: {network} ({result['profile']}) "
              f"N={args.nodes}, {len(jobs)} jobs, seed={args.seed} ===")
        print(format_job_table(metrics, result["fairness"]))
        if result["xtraffic"] is not None:
            xt = result["xtraffic"]
            print(f"  cross-traffic: {xt['injected']} injected / "
                  f"{xt['delivered']} delivered over "
                  f"{result['xtraffic_horizon_us']:.0f}us")
        audited = result["group_audit"]
        if audited:
            bad = [a for a in audited
                   if a["expected_packets"] != a["actual_packets"]]
            print(f"  group flow audit: {len(audited) - len(bad)}/"
                  f"{len(audited)} exact")
        if result["violations"]:
            failed = True
            for violation in result["violations"]:
                print(f"  VIOLATION: {violation}")
        if result["quiescence"]:
            failed = True
            for finding in result["quiescence"]:
                print(f"  QUIESCENCE: {finding}")
        if args.check > 0:
            findings = verify_workload_determinism(
                network, args.nodes, jobs, seed=args.seed,
                xtraffic=xtraffic, rounds=args.check,
            )
            if findings:
                failed = True
                for finding in findings:
                    print(f"  DETERMINISM: {finding.render()}")
            else:
                print(f"  determinism: bit-identical across {args.check} "
                      "tie-break permutations")
    return 1 if failed else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.tools.runcache import RunCache, cache_enabled, default_root

    cache = RunCache(args.dir or default_root())
    if args.action == "stats":
        print(f"cache root   : {cache.root}")
        print(f"enabled      : {cache_enabled()}")
        print(f"entries      : {cache.entry_count()}")
        print(f"total bytes  : {cache.total_bytes()}")
        last = cache.read_last_run_stats()
        if last is None:
            print("last run     : (no recorded run)")
        else:
            print(
                f"last run     : {last.get('hits', 0)} hits, "
                f"{last.get('misses', 0)} misses, "
                f"{last.get('stores', 0)} stores, "
                f"{last.get('corrupt', 0)} corrupt"
            )
    elif args.action == "gc":
        removed, kept = cache.gc()
        print(f"gc: removed {removed} stale entries, kept {kept}")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"clear: removed {removed} entries")
    return 0


EXPERIMENT_NAMES = [
    "fig5", "fig6", "fig7", "fig8", "headline",
    "ablation", "skew", "extensions", "overlap", "tuned", "sensitivity",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NIC-based collective protocol reproduction (Yu et al., IPPS 2004)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profiles", help="list calibrated hardware profiles")

    run_parser = sub.add_parser("run", help="run one barrier experiment")
    run_parser.add_argument("--profile", default="lanai_xp_xeon2400")
    run_parser.add_argument(
        "--barrier",
        default="nic-collective",
        choices=["host", "nic-direct", "nic-collective", "gsync", "hgsync", "nic-chained"],
    )
    run_parser.add_argument(
        "--algorithm",
        default="dissemination",
        choices=["dissemination", "pairwise-exchange", "gather-broadcast"],
    )
    run_parser.add_argument("--nodes", type=int, default=8)
    run_parser.add_argument("--iterations", type=int, default=200)
    run_parser.add_argument("--warmup", type=int, default=30)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--counters", action="store_true",
                            help="print traffic counters")

    cache_flag = dict(
        action=argparse.BooleanOptionalAction, default=True,
        help="serve unchanged points from the run cache "
        "(--no-cache: re-simulate everything)",
    )

    exp_parser = sub.add_parser("experiment", help="run one experiment harness")
    exp_parser.add_argument("name", choices=EXPERIMENT_NAMES)
    exp_parser.add_argument("--quick", action="store_true")
    exp_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for sweep points (1 = serial)")
    exp_parser.add_argument("--cache", **cache_flag)

    trace_parser = sub.add_parser(
        "trace",
        help="trace one experiment: Perfetto JSON + timeline + critical path + audit",
    )
    trace_parser.add_argument("--network", default="quadrics",
                              choices=["quadrics", "myrinet"])
    trace_parser.add_argument("--profile", default=None,
                              help="hardware profile (default: per network)")
    trace_parser.add_argument(
        "--barrier", default=None,
        choices=["host", "nic-direct", "nic-collective", "gsync", "hgsync", "nic-chained"],
        help="default: nic-chained (quadrics) / nic-collective (myrinet)",
    )
    trace_parser.add_argument("-n", "--nodes", type=int, default=16)
    trace_parser.add_argument("--iterations", type=int, default=5)
    trace_parser.add_argument("--warmup", type=int, default=2)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--out", default="trace.json",
                              help="Chrome-trace JSON output path")
    trace_parser.add_argument("--cache", **cache_flag)

    lint_parser = sub.add_parser(
        "lint",
        help="simlint: static invariant analysis (+ --perturb model checks)",
    )
    lint_parser.add_argument(
        "--path", default=None,
        help="file or directory to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--perturb", action="store_true",
        help="also run tie-break perturbation over every barrier scheme",
    )
    lint_parser.add_argument("--perturb-nodes", type=int, default=16)
    lint_parser.add_argument("--perturb-rounds", type=int, default=20)
    lint_parser.add_argument("--perturb-iterations", type=int, default=5)
    lint_parser.add_argument("--seed", type=int, default=0)
    lint_parser.add_argument(
        "--ir", action="store_true",
        help="also verify every compiled CollectiveSchedule in the grid "
             "(SL201-SL206) and model-check the sequence automaton "
             "(SL207-SL208)",
    )
    lint_parser.add_argument(
        "--grid", choices=("tuner", "quick"), default="tuner",
        help="--ir grid: 'tuner' = the full auto-tuner universe incl. "
             "non-pow2 N (default); 'quick' = the CI smoke subset",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection campaign: scenarios x schemes + invariants",
    )
    chaos_parser.add_argument("--network", default="both",
                              choices=["myrinet", "quadrics", "both"])
    chaos_parser.add_argument("-n", "--nodes", type=int, default=16)
    chaos_parser.add_argument("--iterations", type=int, default=4,
                              help="consecutive barriers per run")
    chaos_parser.add_argument("--rounds", type=int, default=20,
                              help="tie-break determinism permutations per run")
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--report", default=None,
                              help="also write the markdown degradation report here")
    chaos_parser.add_argument("--fuzz", action="store_true",
                              help="run the randomized failure fuzzer "
                                   "(kill/flap/corrupt/jitter schedules with "
                                   "epoch repair) instead of the scenario "
                                   "catalogue")
    chaos_parser.add_argument("--fuzz-seeds", type=int, default=4,
                              help="seeds per network in the fuzz block "
                                   "(seed, seed+1, ...)")
    chaos_parser.add_argument("--cache", **cache_flag)

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("--quick", action="store_true")
    report_parser.add_argument("--out", default="EXPERIMENTS.md")
    report_parser.add_argument("--jobs", type=int, default=1,
                               help="worker processes for sweep points (1 = serial)")
    report_parser.add_argument("--cache", **cache_flag)

    tune_parser = sub.add_parser(
        "tune",
        help="auto-tune algorithm selection; write the decision table",
    )
    tune_parser.add_argument("--out", default="tuning_table.json",
                             help="decision-table output path")
    tune_parser.add_argument("--quick", action="store_true",
                             help="small grid (2 sizes, 2 payloads)")
    tune_parser.add_argument("--jobs", type=int, default=1,
                             help="worker processes for grid points (1 = serial)")
    tune_parser.add_argument("--repeats", type=int, default=None,
                             help="operations per grid point")
    tune_parser.add_argument("--cache", **cache_flag)

    workload_parser = sub.add_parser(
        "workload",
        help="multi-job workload: overlapping jobs + cross-traffic + "
             "tail-latency metrics on one shared fabric",
    )
    workload_parser.add_argument("--network", default="both",
                                 choices=["myrinet", "quadrics", "both"])
    workload_parser.add_argument("-n", "--nodes", type=int, default=64)
    workload_parser.add_argument("--jobs", type=int, default=4,
                                 help="jobs in the generated trace")
    workload_parser.add_argument("--pattern", default="skewed",
                                 choices=["uniform", "bursty", "skewed"],
                                 help="synthetic trace shape")
    workload_parser.add_argument("--jobs-trace", default=None,
                                 help="JSON-lines job trace to run "
                                      "(instead of generating one)")
    workload_parser.add_argument("--write-trace", default=None,
                                 help="write the generated trace here")
    workload_parser.add_argument("--iterations", type=int, default=20,
                                 help="timed iterations per job")
    workload_parser.add_argument("--payload-bytes", type=int, default=64)
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.add_argument(
        "--xtraffic", action=argparse.BooleanOptionalAction, default=True,
        help="stream seeded p2p cross-traffic over the same links",
    )
    workload_parser.add_argument("--xtraffic-rate", type=float, default=50.0,
                                 help="aggregate cross-traffic packets/ms")
    workload_parser.add_argument("--xtraffic-bytes", type=int, default=512)
    workload_parser.add_argument("--check", type=int, default=0,
                                 help="also verify bit-identical results "
                                      "across this many tie-break "
                                      "permutations")
    workload_parser.add_argument("--kill-node", type=int, default=None,
                                 help="chaos composition: kill this node "
                                      "mid-workload")
    workload_parser.add_argument("--kill-at", type=float, default=600.0,
                                 help="kill time (us)")
    workload_parser.add_argument("--cache", **cache_flag)

    cache_parser = sub.add_parser(
        "cache", help="inspect/maintain the persistent run cache"
    )
    cache_parser.add_argument(
        "action", choices=["stats", "gc", "clear"],
        help="stats: entry count/bytes/last-run counters; gc: drop "
        "entries from older source trees; clear: drop everything",
    )
    cache_parser.add_argument(
        "--dir", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "profiles": _cmd_profiles,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "chaos": _cmd_chaos,
        "tune": _cmd_tune,
        "workload": _cmd_workload,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
