"""repro — NIC-based collective message passing protocol reproduction.

Reproduction of Yu, Buntinas, Graham & Panda, *Efficient and Scalable
Barrier over Quadrics and Myrinet with a New NIC-Based Collective Message
Passing Protocol* (IPPS 2004), as a calibrated discrete-event simulation.

Quickstart::

    from repro import build_myrinet_cluster, run_barrier_experiment

    cluster = build_myrinet_cluster("lanai_xp_xeon_2400", nodes=8)
    result = run_barrier_experiment(
        cluster, barrier="nic-collective", algorithm="dissemination",
        iterations=1000,
    )
    print(result.mean_latency_us)

Subpackages
-----------
- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.topology` — Myrinet Clos and Quadrics fat-tree topologies.
- :mod:`repro.network` — links, wormhole switches, fabric, fault injection.
- :mod:`repro.pci` — PCI/PCI-X bus and DMA engines.
- :mod:`repro.host` — host CPU and process model.
- :mod:`repro.myrinet` — LANai NIC, GM control program (MCP) and host API.
- :mod:`repro.quadrics` — Elan3 NIC, chained events, Elite, Elanlib.
- :mod:`repro.collectives` — the paper's contribution: the NIC-based
  collective protocol and every barrier implementation/baseline.
- :mod:`repro.model` — the analytical latency model and fitting.
- :mod:`repro.cluster` — calibrated hardware profiles and cluster builder.
- :mod:`repro.experiments` — one harness per paper figure/table.
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):
    """Lazily re-export the high-level API.

    Keeps ``import repro`` cheap while exposing the convenience entry
    points documented in the README.
    """
    lazy = {
        "build_myrinet_cluster": ("repro.cluster", "build_myrinet_cluster"),
        "build_quadrics_cluster": ("repro.cluster", "build_quadrics_cluster"),
        "run_barrier_experiment": ("repro.cluster", "run_barrier_experiment"),
        "HardwareProfile": ("repro.cluster", "HardwareProfile"),
        "PROFILES": ("repro.cluster", "PROFILES"),
        "BarrierModel": ("repro.model", "BarrierModel"),
        "fit_barrier_model": ("repro.model", "fit_barrier_model"),
    }
    if name in lazy:
        import importlib

        module, attr = lazy[name]
        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
