"""Fig. 8 — scalability of the NIC-based barrier: model vs simulation.

The paper measures up to 8 nodes, fits
``T = T_init + (ceil(log2 N) - 1) * T_trig + T_adj``, and extrapolates:

- Fig. 8(a) Quadrics: ``2.25 + (⌈log2 N⌉−1)·2.32 − 1.00`` → 22.13 µs
  at 1024 nodes;
- Fig. 8(b) Myrinet (LANai-XP): ``3.60 + (⌈log2 N⌉−1)·3.50 + 3.84`` →
  38.94 µs at 1024 nodes.

Our simulator can *run* node counts the authors could only model, so
this experiment reports three series per network: the paper's model,
our simulated latencies (beyond the paper's 8 nodes), and a model
*fitted to our simulation* extrapolated to 1024.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, print_experiment, sweep
from repro.model import PAPER_MYRINET_XP, PAPER_QUADRICS_ELAN3, fit_barrier_model

MODEL_POINTS = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
PAPER_ANCHORS = {
    "Quadrics model @ 1024 nodes (us)": 22.13,
    "Myrinet model @ 1024 nodes (us)": 38.94,
    "Quadrics T_trig (us/step)": 2.32,
    "Myrinet T_trig (us/step)": 3.50,
}


def run(quick: bool = False, iterations: int | None = None) -> ExperimentResult:
    iters = iterations or (20 if quick else 60)
    myri_ns = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32, 64]
    quad_ns = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32, 64, 128]

    measured_m = sweep(
        "myrinet", "lanai_xp_xeon2400", "nic-collective", "dissemination",
        myri_ns, label="Myrinet-sim", iterations=iters,
    )
    measured_q = sweep(
        "quadrics", "elan3_piii700", "nic-chained", "dissemination",
        quad_ns, label="Quadrics-sim", iterations=iters,
    )

    # Fit with the paper's own methodology: from testbed-scale points.
    # For Myrinet that also keeps the fit on the single-crossbar regime
    # the paper measured (>16 nodes needs a two-level Clos whose extra
    # switch hops the analytical model does not include).
    fit_ns = [n for n in measured_m.n_values if n <= 16]
    fit_m = fit_barrier_model(
        fit_ns, [measured_m.at(n) for n in fit_ns],
        t_init=measured_m.at(2), name="fitted-myrinet",
    )
    fit_q = fit_barrier_model(
        measured_q.n_values, measured_q.latencies,
        t_init=measured_q.at(2), name="fitted-quadrics",
    )

    series = [
        Series("Myrinet-Model(paper)", MODEL_POINTS, PAPER_MYRINET_XP.predict_many(MODEL_POINTS)),
        Series("Myrinet-Model(fit)", MODEL_POINTS, fit_m.predict_many(MODEL_POINTS)),
        measured_m,
        Series("Quadrics-Model(paper)", MODEL_POINTS, PAPER_QUADRICS_ELAN3.predict_many(MODEL_POINTS)),
        Series("Quadrics-Model(fit)", MODEL_POINTS, fit_q.predict_many(MODEL_POINTS)),
        measured_q,
    ]
    return ExperimentResult(
        exp_id="fig8",
        title="Scalability of the NIC-based barrier (model vs simulation)",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "Quadrics model @ 1024 nodes (us)": fit_q.predict(1024),
            "Myrinet model @ 1024 nodes (us)": fit_m.predict(1024),
            "Quadrics T_trig (us/step)": fit_q.t_trig,
            "Myrinet T_trig (us/step)": fit_m.t_trig,
        },
        notes=[
            f"fitted Myrinet model: {fit_m}",
            f"fitted Quadrics model: {fit_q}",
            "the paper's Quadrics coefficients are internally tight: measured "
            "T(8) = 5.60 with T_trig = 2.32 forces T(2) = 1.25us, below any "
            "real two-node round trip; our fit keeps a realistic intercept and "
            "a smaller slope, landing the 1024-node extrapolation below the "
            "paper's (same log2 shape)",
            "Myrinet beyond 16 nodes needs a two-level Clos: the simulated "
            "points sit above the single-crossbar model by the extra switch "
            "hops — the paper's 1024-node number inherits that optimism",
        ],
    )


if __name__ == "__main__":
    print_experiment(run())
