"""Fig. 8 — scalability of the NIC-based barrier: model vs simulation.

The paper measures up to 8 nodes, fits
``T = T_init + (ceil(log2 N) - 1) * T_trig + T_adj``, and extrapolates:

- Fig. 8(a) Quadrics: ``2.25 + (⌈log2 N⌉−1)·2.32 − 1.00`` → 22.13 µs
  at 1024 nodes;
- Fig. 8(b) Myrinet (LANai-XP): ``3.60 + (⌈log2 N⌉−1)·3.50 + 3.84`` →
  38.94 µs at 1024 nodes.

Our simulator can *run* node counts the authors could only model: the
full-mode measured series reaches N = 1024 on the Quadrics fat tree and
N = 512 on a three-level Myrinet Clos — the paper's extrapolation range,
actually executed.  Three series per network: the paper's model, our
simulated latencies, and a model *fitted to our simulation* extrapolated
to 1024.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
    sweep_point,
)
from repro.model import PAPER_MYRINET_XP, PAPER_QUADRICS_ELAN3, fit_barrier_model
from repro.tools.runcache import RunCache, point_request

MODEL_POINTS = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
PAPER_ANCHORS = {
    "Quadrics model @ 1024 nodes (us)": 22.13,
    "Myrinet model @ 1024 nodes (us)": 38.94,
    "Quadrics T_trig (us/step)": 2.32,
    "Myrinet T_trig (us/step)": 3.50,
}


def _point_schedule(n: int, iters: int) -> tuple[int, int]:
    """(iterations, warmup) for one measured point.

    Testbed-scale points keep the full iteration count (these feed the
    model fits and the figure tests); the extension points taper — a
    1024-node barrier costs seconds of wall time per iteration and its
    mean is stable after a handful.
    """
    if n <= 64:
        return iters, 20
    if n <= 256:
        return max(12, iters // 4), 8
    return max(8, iters // 8), 4


def _measure_point(network: str, profile: str, barrier: str, spec) -> float:
    n, iterations, warmup = spec
    return sweep_point(
        network, profile, barrier, "dissemination", n,
        iterations=iterations, warmup=warmup,
    )


def _measured_series(
    network: str, profile: str, barrier: str, ns, label: str,
    iters: int, jobs: int, cache: RunCache | None = None,
) -> Series:
    specs = [(n, *_point_schedule(n, iters)) for n in ns]

    def key_fn(spec):
        n, iterations, warmup = spec
        return point_request(
            network, profile, barrier, "dissemination", n,
            iterations=iterations, warmup=warmup, seed=0,
        )

    lats = parallel_map(
        partial(_measure_point, network, profile, barrier), specs, jobs=jobs,
        cache=cache, key_fn=key_fn,
    )
    return Series(label, list(ns), lats)


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (20 if quick else 60)
    myri_ns = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32, 64, 128, 256, 512]
    quad_ns = [2, 4, 8, 16] if quick else [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]

    measured_m = _measured_series(
        "myrinet", "lanai_xp_xeon2400", "nic-collective", myri_ns,
        "Myrinet-sim", iters, jobs, cache=cache,
    )
    measured_q = _measured_series(
        "quadrics", "elan3_piii700", "nic-chained", quad_ns,
        "Quadrics-sim", iters, jobs, cache=cache,
    )

    # Fit with the paper's own methodology: from testbed-scale points.
    # For Myrinet that also keeps the fit on the single-crossbar regime
    # the paper measured (>16 nodes needs a multi-level Clos whose extra
    # switch hops the analytical model does not include).
    fit_ns = [n for n in measured_m.n_values if n <= 16]
    fit_m = fit_barrier_model(
        fit_ns, [measured_m.at(n) for n in fit_ns],
        t_init=measured_m.at(2), name="fitted-myrinet",
    )
    quad_fit_ns = [n for n in measured_q.n_values if n <= 128]
    fit_q = fit_barrier_model(
        quad_fit_ns, [measured_q.at(n) for n in quad_fit_ns],
        t_init=measured_q.at(2), name="fitted-quadrics",
    )

    series = [
        Series("Myrinet-Model(paper)", MODEL_POINTS, PAPER_MYRINET_XP.predict_many(MODEL_POINTS)),
        Series("Myrinet-Model(fit)", MODEL_POINTS, fit_m.predict_many(MODEL_POINTS)),
        measured_m,
        Series("Quadrics-Model(paper)", MODEL_POINTS, PAPER_QUADRICS_ELAN3.predict_many(MODEL_POINTS)),
        Series("Quadrics-Model(fit)", MODEL_POINTS, fit_q.predict_many(MODEL_POINTS)),
        measured_q,
    ]
    notes = [
        f"fitted Myrinet model: {fit_m}",
        f"fitted Quadrics model: {fit_q}",
        "the paper's Quadrics coefficients are internally tight: measured "
        "T(8) = 5.60 with T_trig = 2.32 forces T(2) = 1.25us, below any "
        "real two-node round trip; our fit keeps a realistic intercept and "
        "a smaller slope, landing the 1024-node extrapolation below the "
        "paper's (same log2 shape)",
        "Myrinet beyond 16 nodes needs a two-level (beyond 64, three-"
        "level) Clos: the simulated points sit above the single-crossbar "
        "model by the extra switch hops — the paper's 1024-node number "
        "inherits that optimism",
    ]
    if 1024 in measured_q.n_values:
        q1024 = measured_q.at(1024)
        notes.append(
            f"simulated Quadrics @ 1024 nodes: {q1024:.2f}us vs the paper's "
            f"model value 22.13us ({q1024 / 22.13:.2f}x) — the fat tree "
            "really does sustain the model's log2 shape at full machine "
            "scale"
        )
    if 512 in measured_m.n_values:
        notes.append(
            f"simulated Myrinet @ 512 nodes (three-level Clos): "
            f"{measured_m.at(512):.2f}us — per-step cost grows with the "
            "deeper switch path, which the single-crossbar model omits"
        )
    return ExperimentResult(
        exp_id="fig8",
        title="Scalability of the NIC-based barrier (model vs simulation)",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "Quadrics model @ 1024 nodes (us)": fit_q.predict(1024),
            "Myrinet model @ 1024 nodes (us)": fit_m.predict(1024),
            "Quadrics T_trig (us/step)": fit_q.t_trig,
            "Myrinet T_trig (us/step)": fit_m.t_trig,
        },
        notes=notes,
    )


if __name__ == "__main__":
    print_experiment(run())
