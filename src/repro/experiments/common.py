"""Shared experiment plumbing: sweeps, tables, ASCII plots.

Sweeps fan out over worker processes when ``jobs > 1``.  Every figure
point is an independent simulation (fresh simulator, deterministic
seed), so the parallel path returns bit-identical latencies to the
serial one — the only thing that changes is wall-clock time.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.cluster import (
    build_myrinet_cluster,
    build_quadrics_cluster,
    run_barrier_experiment,
)
from repro.tools.runcache import RunCache, point_request


@dataclass
class Series:
    """One line on a figure: latency (µs) as a function of node count."""

    label: str
    n_values: list[int]
    latencies: list[float]

    def at(self, n: int) -> float:
        try:
            index = self.n_values.index(n)
        except ValueError:
            raise KeyError(
                f"series {self.label!r} has no point at N={n} "
                f"(available: {self.n_values})"
            ) from None
        return self.latencies[index]


@dataclass
class ExperimentResult:
    """Everything an experiment produced, ready for printing."""

    exp_id: str
    title: str
    series: list[Series]
    paper_anchors: dict[str, float] = field(default_factory=dict)
    measured_anchors: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def anchor_table(self) -> str:
        lines = [
            f"{'anchor':<44} {'paper':>8} {'ours':>8} {'ratio':>6}",
            "-" * 70,
        ]
        for key, paper in self.paper_anchors.items():
            ours = self.measured_anchors.get(key)
            if ours is None:
                lines.append(f"{key:<44} {paper:>8.2f} {'--':>8} {'--':>6}")
            else:
                lines.append(
                    f"{key:<44} {paper:>8.2f} {ours:>8.2f} {ours / paper:>6.2f}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    key_fn: Optional[Callable[[Any], dict]] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
) -> list:
    """Order-preserving map, fanned out over worker processes.

    ``fn`` must be picklable (a module-level function or a
    :func:`functools.partial` of one).  Each item must be an independent
    computation — for figure points that holds by construction (fresh
    simulator per point, deterministic seed), which makes the parallel
    result bit-identical to the serial one.  ``jobs <= 1`` runs inline.

    With ``cache`` and ``key_fn`` set, each item's run request is probed
    first and only the misses are shipped to the pool; hits merge back
    in item order.  Workers never touch the cache — keys are computed
    and entries written in the parent, so no cross-process locking is
    needed.  ``encode``/``decode`` convert between ``fn``'s return value
    and its JSON payload (identity for plain floats).
    """
    items = list(items)
    if cache is not None and key_fn is not None:
        requests = [key_fn(item) for item in items]
        results: list = [None] * len(items)
        miss_slots = []
        for slot, request in enumerate(requests):
            payload = cache.get(request)
            if payload is None:
                miss_slots.append(slot)
            else:
                results[slot] = decode(payload) if decode is not None else payload
        computed = parallel_map(fn, [items[s] for s in miss_slots], jobs=jobs)
        for slot, value in zip(miss_slots, computed):
            cache.put(
                requests[slot], encode(value) if encode is not None else value
            )
            results[slot] = value
        return results
    if jobs > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]


def sweep_point(
    network: str,
    profile: str,
    barrier: str,
    algorithm: str,
    n: int,
    iterations: int = 100,
    warmup: int = 20,
    seed: int = 0,
) -> float:
    """One figure point: build a fresh cluster, run, return the mean
    barrier latency in µs.  Module-level so sweeps can ship it to
    worker processes."""
    if network == "myrinet":
        cluster = build_myrinet_cluster(profile, nodes=n)
    else:
        cluster = build_quadrics_cluster(profile, nodes=n)
    result = run_barrier_experiment(
        cluster,
        barrier,
        algorithm,
        iterations=iterations,
        warmup=warmup,
        seed=seed,
    )
    return result.mean_latency_us


def sweep(
    network: str,
    profile: str,
    barrier: str,
    algorithm: str,
    n_values: Iterable[int],
    label: Optional[str] = None,
    iterations: int = 100,
    warmup: int = 20,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
) -> Series:
    """Measure one barrier flavour across node counts.

    Every point gets a fresh cluster (fresh simulator), exactly like
    re-running the paper's benchmark per configuration.  ``jobs > 1``
    measures the points in parallel worker processes; latencies are
    bit-identical to the serial sweep.  With ``cache`` set, previously
    measured points are served from disk and only the misses simulate.
    """
    ns = list(n_values)
    point = partial(
        sweep_point,
        network,
        profile,
        barrier,
        algorithm,
        iterations=iterations,
        warmup=warmup,
        seed=seed,
    )
    key_fn = partial(
        _sweep_request, network, profile, barrier, algorithm,
        iterations=iterations, warmup=warmup, seed=seed,
    )
    lats = parallel_map(point, ns, jobs=jobs, cache=cache, key_fn=key_fn)
    return Series(label or f"{barrier}-{algorithm}", ns, lats)


def _sweep_request(
    network: str,
    profile: str,
    barrier: str,
    algorithm: str,
    n: int,
    iterations: int,
    warmup: int,
    seed: int,
) -> dict:
    return point_request(
        network, profile, barrier, algorithm, n,
        iterations=iterations, warmup=warmup, seed=seed,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def latency_table(series: Sequence[Series]) -> str:
    """A column-per-series latency table (rows = node counts)."""
    all_n = sorted({n for s in series for n in s.n_values})
    header = f"{'N':>5} " + " ".join(f"{s.label:>16}" for s in series)
    lines = [header, "-" * len(header)]
    for n in all_n:
        cells = []
        for s in series:
            if n in s.n_values:
                cells.append(f"{s.at(n):>16.2f}")
            else:
                cells.append(f"{'--':>16}")
        lines.append(f"{n:>5} " + " ".join(cells))
    return "\n".join(lines)


def ascii_plot(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    title: str = "",
) -> str:
    """A terminal scatter of latency vs N (marker per series)."""
    markers = "ox+*#@%&"
    points = [
        (n, lat)
        for s in series
        for n, lat in zip(s.n_values, s.latencies)
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]

    def cell(n: float, lat: float) -> tuple[int, int]:
        fx = 0.0 if x_hi == x_lo else (n - x_lo) / (x_hi - x_lo)
        fy = 0.0 if y_hi == y_lo else (lat - y_lo) / (y_hi - y_lo)
        col = min(width - 1, int(fx * (width - 1)))
        row = min(height - 1, height - 1 - int(fy * (height - 1)))
        return row, col

    for idx, s in enumerate(series):
        mark = markers[idx % len(markers)]
        for n, lat in zip(s.n_values, s.latencies):
            row, col = cell(n, lat)
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.1f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo:8.1f} +" + "-" * width)
    lines.append(" " * 10 + f"N={x_lo}" + " " * (width - 12) + f"N={x_hi}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def print_experiment(result: ExperimentResult) -> None:
    print("=" * 72)
    print(f"{result.exp_id}: {result.title}")
    print("=" * 72)
    print(latency_table(result.series))
    print()
    print(ascii_plot(result.series, title=f"[{result.exp_id}] latency (us) vs nodes"))
    print()
    if result.paper_anchors:
        print(result.anchor_table())
    for note in result.notes:
        print(f"note: {note}")
    print()
