"""Skew sensitivity — why `elan_hgsync` needs synchronized callers.

Not a numbered figure, but a quantified claim of §8.2: "the hardware
barrier performs better but it requires that the involving processes be
well synchronized.  This is hardly the case for parallel programs over
large size clusters."

We inject per-rank compute jitter before each barrier and measure the
*barrier cost* (exit time minus the moment the last rank arrived) for
the hardware test-and-set barrier vs the chained-RDMA NIC barrier.  The
hardware barrier burns probe retries while stragglers are missing; the
NIC barrier's event counters absorb early arrivals for free.
"""

from __future__ import annotations

from functools import partial

from repro.cluster import build_quadrics_cluster
from repro.collectives import ProcessGroup, QuadricsChainedBarrier
from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)
from repro.cluster import get_profile
from repro.quadrics import elan_hgsync
from repro.sim import DeterministicRng
from repro.tools.runcache import RunCache, run_request

NODES = 8
PAPER_ANCHORS = {}  # qualitative claim; no numeric anchor in the paper


def _measure_hgsync(skew_us: float, iterations: int, seed: int = 0):
    cluster = build_quadrics_cluster(nodes=NODES)
    group = ProcessGroup(list(range(NODES)))
    hw = cluster.hardware_barrier(group.node_ids)
    rng = DeterministicRng(seed, f"skew/{skew_us}")
    last_arrival = {}
    exits = {}

    def prog(node):
        for seq in range(iterations):
            yield rng.uniform(0.0, skew_us) if skew_us else 0.0
            last_arrival[seq] = max(last_arrival.get(seq, 0.0), cluster.sim.now)
            yield from elan_hgsync(cluster.ports[node], hw, group.node_ids, seq)
            exits[seq] = max(exits.get(seq, 0.0), cluster.sim.now)

    for node in range(NODES):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    cost = sum(exits[s] - last_arrival[s] for s in exits) / iterations
    return cost, hw.retries


def _measure_nic(skew_us: float, iterations: int, seed: int = 0):
    cluster = build_quadrics_cluster(nodes=NODES)
    group = ProcessGroup(list(range(NODES)))
    drivers = {
        node: QuadricsChainedBarrier(cluster.ports[node], group)
        for node in range(NODES)
    }
    rng = DeterministicRng(seed, f"skew-nic/{skew_us}")
    last_arrival = {}
    exits = {}

    def prog(node):
        for seq in range(iterations):
            yield rng.uniform(0.0, skew_us) if skew_us else 0.0
            last_arrival[seq] = max(last_arrival.get(seq, 0.0), cluster.sim.now)
            yield from drivers[node].barrier(seq)
            exits[seq] = max(exits.get(seq, 0.0), cluster.sim.now)

    for node in range(NODES):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    cost = sum(exits[s] - last_arrival[s] for s in exits) / iterations
    return cost


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (20 if quick else 60)
    skews = [0.0, 2.0, 5.0, 10.0, 20.0, 40.0]

    def key_fn(kind):
        def build(skew_us):
            return run_request(
                kind, params=get_profile("elan3_piii700"), nodes=NODES,
                skew_us=skew_us, iterations=iters, seed=0,
            )

        return build

    hw_points = parallel_map(
        partial(_measure_hgsync, iterations=iters), skews, jobs=jobs,
        cache=cache, key_fn=key_fn("skew-hgsync"),
        decode=lambda p: (p[0], p[1]),
    )
    nic_costs = parallel_map(
        partial(_measure_nic, iterations=iters), skews, jobs=jobs,
        cache=cache, key_fn=key_fn("skew-nic"),
    )
    hw_costs = [cost for cost, _ in hw_points]
    hw_retries = [retries / iters for _, retries in hw_points]
    # Abuse the N axis as "skew in us" for the table/plot.
    series = [
        Series("hgsync-cost", [int(s) for s in skews], hw_costs),
        Series("hgsync-retries/iter", [int(s) for s in skews], hw_retries),
        Series("NIC-chained-cost", [int(s) for s in skews], nic_costs),
    ]
    crossover = next(
        (skew for skew, hw, nic in zip(skews, hw_costs, nic_costs) if hw > nic),
        None,
    )
    notes = [
        "x-axis is SKEW in us (uniform per-rank jitter before each barrier), "
        "not node count",
        "cost = exit time minus last arrival: the barrier's own overhead",
    ]
    if crossover is not None:
        notes.append(
            f"with >= {crossover:.0f}us skew the NIC barrier beats the "
            "hardware barrier — the paper's argument for why hgsync's edge "
            "evaporates on real (unsynchronized) applications"
        )
    return ExperimentResult(
        exp_id="skew",
        title="elan_hgsync vs chained-RDMA barrier under caller skew (8 nodes)",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={},
        notes=notes,
    )


if __name__ == "__main__":
    print_experiment(run())
