"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run(quick=False) -> ExperimentResult`` and is
runnable as a script (``python -m repro.experiments.fig5``).  The
``report`` module runs everything and regenerates ``EXPERIMENTS.md``.

- :mod:`~repro.experiments.fig5` — Fig. 5: Myrinet LANai 9.1, 16-node
  700 MHz cluster, four barrier series over N = 2..16.
- :mod:`~repro.experiments.fig6` — Fig. 6: Myrinet LANai-XP, 8-node
  2.4 GHz cluster, N = 2..8.
- :mod:`~repro.experiments.fig7` — Fig. 7: Quadrics Elan3, 8 nodes:
  NIC barrier vs ``elan_gsync`` vs ``elan_hgsync``.
- :mod:`~repro.experiments.fig8` — Fig. 8(a)/(b): scalability — model
  vs simulation, extrapolated to 1024 nodes.
- :mod:`~repro.experiments.headline` — the paper's headline numbers
  and improvement factors in one table.
- :mod:`~repro.experiments.ablation` — not a paper figure: per-scheme
  packet / PCI / processor-occupancy accounting that quantifies each
  optimization the collective protocol makes.
"""

from repro.experiments.common import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
