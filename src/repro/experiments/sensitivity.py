"""Design-choice sensitivity ablations.

Four sweeps that stress the design decisions the paper argues for,
by perturbing one protocol constant at a time (the profiles are frozen
dataclasses; each point uses ``dataclasses.replace``):

1. **NACK timeout** — §6.3 picks receiver-driven retransmission; a
   too-short timeout fires spurious NACKs on a clean wire (wasted
   packets), a long one only delays recovery under loss.
2. **Send-packet pool size** — §6.2's static packet replaces the p2p
   path's pool allocation; the sweep shows barrier traffic keeps at
   most one packet outstanding per destination, so even a one-slot
   pool never blocks — the static packet's saving is the *allocation
   processing*, not pool contention.
3. **Host poll interval** — host-based barriers pay the polling lag on
   every step; NIC-based only at completion, so host-based latency
   grows ~log2(N) times faster with the interval.
4. **Wire loss rate** — latency degradation of the collective scheme
   as drops increase: barriers still complete, paying one
   ``nack_timeout`` per loss on the critical path.
"""

from __future__ import annotations

import dataclasses
from functools import partial

from repro.cluster import build_myrinet_cluster, get_profile, run_barrier_experiment
from repro.cluster.profiles import HardwareProfile
from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)
from repro.network import FaultInjector
from repro.sim import DeterministicRng
from repro.tools.runcache import RunCache, run_request

BASE = "lanai91_piii700"
NODES = 8


def _with_gm(profile: HardwareProfile, **gm_overrides) -> HardwareProfile:
    return dataclasses.replace(profile, gm=dataclasses.replace(profile.gm, **gm_overrides))


def _with_host(profile: HardwareProfile, **host_overrides) -> HardwareProfile:
    return dataclasses.replace(
        profile, host=dataclasses.replace(profile.host, **host_overrides)
    )


def _latency(profile, barrier, iterations, faults=None):
    cluster = build_myrinet_cluster(profile, nodes=NODES, faults=faults)
    result = run_barrier_experiment(
        cluster, barrier, "dissemination", iterations=iterations, warmup=10
    )
    return result, cluster


def _nack_point(timeout: float, iterations: int) -> tuple[float, int]:
    profile = _with_gm(get_profile(BASE), nack_timeout_us=timeout)
    result, cluster = _latency(profile, "nic-collective", iterations)
    return (
        result.mean_latency_us,
        cluster.tracer.counters.get("coll.nack_sent", 0),
    )


def _pool_point(size: int, iterations: int) -> tuple[float, float]:
    profile = _with_gm(get_profile(BASE), send_packet_count=size)
    return (
        _latency(profile, "nic-direct", iterations)[0].mean_latency_us,
        _latency(profile, "nic-collective", iterations)[0].mean_latency_us,
    )


def _poll_point(interval: float, iterations: int) -> tuple[float, float]:
    profile = _with_host(get_profile(BASE), poll_interval_us=interval)
    return (
        _latency(profile, "host", iterations)[0].mean_latency_us,
        _latency(profile, "nic-collective", iterations)[0].mean_latency_us,
    )


def _loss_point(rate: float, iterations: int) -> float:
    faults = (
        FaultInjector(rng=DeterministicRng(1, f"loss{rate}"), drop_probability=rate)
        if rate
        else None
    )
    result, _ = _latency(get_profile(BASE), "nic-collective", iterations, faults=faults)
    return result.mean_latency_us


def nack_timeout_sweep(
    iterations: int, jobs: int = 1, cache: RunCache | None = None
) -> tuple[Series, Series, list[str]]:
    timeouts = [20.0, 50.0, 100.0, 500.0, 1500.0]
    points = parallel_map(
        partial(_nack_point, iterations=iterations), timeouts, jobs=jobs,
        cache=cache,
        key_fn=lambda t: run_request(
            "sens-nack",
            params=_with_gm(get_profile(BASE), nack_timeout_us=t),
            nodes=NODES, iterations=iterations,
        ),
        decode=lambda p: (p[0], p[1]),
    )
    latencies = [lat for lat, _ in points]
    spurious = [n for _, n in points]
    notes = [
        f"clean wire, NACK timeout {timeouts} us -> spurious NACKs {spurious}",
    ]
    return (
        Series("latency-vs-nack-timeout", [int(t) for t in timeouts], latencies),
        Series("spurious-nacks", [int(t) for t in timeouts], [float(s) for s in spurious]),
        notes,
    )


def pool_size_sweep(
    iterations: int, jobs: int = 1, cache: RunCache | None = None
) -> tuple[Series, Series, list[str]]:
    sizes = [1, 2, 4, 8]
    points = parallel_map(
        partial(_pool_point, iterations=iterations), sizes, jobs=jobs,
        cache=cache,
        key_fn=lambda s: run_request(
            "sens-pool",
            params=_with_gm(get_profile(BASE), send_packet_count=s),
            nodes=NODES, iterations=iterations,
        ),
        decode=lambda p: (p[0], p[1]),
    )
    direct = [d for d, _ in points]
    collective = [c for _, c in points]
    notes = [
        "pool size does not move either scheme: barrier traffic keeps "
        "<= 1 packet outstanding per peer, so the static packet's win "
        "is the per-send allocation *processing*, not pool contention",
    ]
    return (
        Series("direct-vs-pool", sizes, direct),
        Series("collective-vs-pool", sizes, collective),
        notes,
    )


def poll_interval_sweep(
    iterations: int, jobs: int = 1, cache: RunCache | None = None
) -> tuple[Series, Series, list[str]]:
    intervals = [0.2, 0.6, 1.2, 2.4, 4.8]
    points = parallel_map(
        partial(_poll_point, iterations=iterations), intervals, jobs=jobs,
        cache=cache,
        key_fn=lambda i: run_request(
            "sens-poll",
            params=_with_host(get_profile(BASE), poll_interval_us=i),
            nodes=NODES, iterations=iterations,
        ),
        decode=lambda p: (p[0], p[1]),
    )
    host = [h for h, _ in points]
    nic = [n for _, n in points]
    host_slope = (host[-1] - host[0]) / (intervals[-1] - intervals[0])
    nic_slope = (nic[-1] - nic[0]) / (intervals[-1] - intervals[0])
    notes = [
        f"latency growth per us of poll interval: host {host_slope:.2f}, "
        f"NIC-based {nic_slope:.2f} (host pays the lag per step, "
        "NIC-based once per barrier)",
    ]
    return (
        Series("host-vs-poll-interval", [int(i * 10) for i in intervals], host),
        Series("nic-vs-poll-interval", [int(i * 10) for i in intervals], nic),
        notes,
    )


def loss_rate_sweep(
    iterations: int, jobs: int = 1, cache: RunCache | None = None
) -> tuple[Series, list[str]]:
    rates = [0.0, 0.005, 0.01, 0.02, 0.05]
    latencies = parallel_map(
        partial(_loss_point, iterations=iterations), rates, jobs=jobs,
        cache=cache,
        key_fn=lambda r: run_request(
            "sens-loss", params=get_profile(BASE), nodes=NODES,
            iterations=iterations, rate=r, fault_seed=1,
        ),
    )
    notes = [
        "all barriers complete under loss; each lost message costs about "
        "one NACK timeout on that iteration's critical path",
    ]
    return Series("latency-vs-loss(x1000)", [int(r * 1000) for r in rates], latencies), notes


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (20 if quick else 60)
    series: list[Series] = []
    notes: list[str] = []
    s1, s2, n1 = nack_timeout_sweep(iters, jobs=jobs, cache=cache)
    s3, s4, n2 = pool_size_sweep(iters, jobs=jobs, cache=cache)
    s5, s6, n3 = poll_interval_sweep(iters, jobs=jobs, cache=cache)
    s7, n4 = loss_rate_sweep(iters, jobs=jobs, cache=cache)
    series.extend([s1, s2, s3, s4, s5, s6, s7])
    notes.extend(n1 + n2 + n3 + n4)
    notes.append("x-axes differ per series (us / pool slots / 0.1us / loss x1000)")
    return ExperimentResult(
        exp_id="sensitivity",
        title="Design-choice sensitivity (LANai 9.1 cluster, 8 nodes)",
        series=series,
        paper_anchors={},
        measured_anchors={},
        notes=notes,
    )


if __name__ == "__main__":
    print_experiment(run())
