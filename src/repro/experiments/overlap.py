"""Non-blocking overlap: latency hiding from concurrent collectives.

The NIC engines run every sequence as independent state, so a host
that posts a barrier and an allreduce together (MPI-3 style
``i``-collectives) pays close to the *maximum* of the two latencies
instead of their sum — the NICs pipeline both protocols while the host
waits once.  This experiment measures that hiding directly:

- ``blocking``   — each round runs ``nic_barrier`` then
  ``nic_allreduce`` back-to-back (two full host round-trips);
- ``overlapped`` — each round posts ``nic_ibarrier`` +
  ``nic_iallreduce`` (two doorbells), then waits for both.

Both use one barrier group and one allreduce group over the same
nodes (a group object is dedicated to one collective, as GM dedicates
ports).  No paper anchor exists — the paper's §9 proposes the data
collectives; the non-blocking API is the natural next step — so the
expectation is structural: overlapped ≈ max(barrier, allreduce) + one
doorbell, clearly under the blocking sum.
"""

from __future__ import annotations

from functools import partial

from repro.cluster import build_myrinet_cluster
from repro.collectives import ProcessGroup
from repro.collectives.allreduce import NicAllreduceEngine, nic_allreduce
from repro.collectives.myrinet_engines import NicCollectiveBarrierEngine, nic_barrier
from repro.collectives.nonblocking import nic_iallreduce, nic_ibarrier
from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)
from repro.tools.runcache import RunCache, run_request

PROFILE = "lanai_xp_xeon2400"


def _overlap_key_fn(kind: str, repeats: int):
    from repro.cluster import get_profile

    def build(n):
        return run_request(
            kind, params=get_profile(PROFILE), n=n, repeats=repeats
        )

    return build


def _build(n: int):
    cluster = build_myrinet_cluster(PROFILE, nodes=n)
    barrier_group = ProcessGroup(list(range(n)))
    allreduce_group = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicCollectiveBarrierEngine(cluster.nics[rank], barrier_group, rank)
        NicAllreduceEngine(cluster.nics[rank], allreduce_group, rank)
    return cluster, barrier_group, allreduce_group


def _blocking_point(n: int, repeats: int) -> float:
    cluster, barrier_group, allreduce_group = _build(n)
    finish = []

    def prog(node):
        for seq in range(repeats):
            yield from nic_barrier(cluster.ports[node], barrier_group, seq)
            yield from nic_allreduce(
                cluster.ports[node], allreduce_group, seq, node
            )
        finish.append(cluster.sim.now)

    for node in range(n):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    return max(finish) / repeats


def _overlap_point(n: int, repeats: int) -> float:
    cluster, barrier_group, allreduce_group = _build(n)
    finish = []

    def prog(node):
        port = cluster.ports[node]
        for seq in range(repeats):
            barrier_req = yield from nic_ibarrier(port, barrier_group, seq)
            reduce_req = yield from nic_iallreduce(
                port, allreduce_group, seq, node
            )
            yield from reduce_req.wait()
            yield from barrier_req.wait()
        finish.append(cluster.sim.now)

    for node in range(n):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    return max(finish) / repeats


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    repeats = iterations or (15 if quick else 40)
    n_values = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    blocking = Series(
        "blocking", n_values,
        parallel_map(partial(_blocking_point, repeats=repeats), n_values,
                     jobs=jobs, cache=cache,
                     key_fn=_overlap_key_fn("overlap-blocking", repeats)),
    )
    overlapped = Series(
        "overlapped", n_values,
        parallel_map(partial(_overlap_point, repeats=repeats), n_values,
                     jobs=jobs, cache=cache,
                     key_fn=_overlap_key_fn("overlap-nonblocking", repeats)),
    )
    hidings = [
        100.0 * (b - o) / b
        for b, o in zip(blocking.latencies, overlapped.latencies)
    ]
    return ExperimentResult(
        exp_id="overlap",
        title="non-blocking overlap: barrier + allreduce per round (LANai-XP)",
        series=[blocking, overlapped],
        paper_anchors={},
        measured_anchors={},
        notes=[
            "blocking: nic_barrier then nic_allreduce, two host round-trips",
            "overlapped: nic_ibarrier + nic_iallreduce posted together, "
            "one combined wait — the NIC pipelines both sequences",
            "latency hidden by overlap: "
            + ", ".join(
                f"{h:.0f}% @ N={n}" for n, h in zip(n_values, hidings)
            ),
        ],
    )


if __name__ == "__main__":
    print_experiment(run())
