"""The paper's headline numbers (abstract + §8) in one table.

- Quadrics 8 nodes: 5.60 µs, 2.48x over the Elanlib tree barrier.
- Myrinet LANai-XP 8 nodes: 14.20 µs, 2.64x over host-based.
- Myrinet LANai 9.1 16 nodes: 25.72 µs, 3.38x over host-based.
- Prior direct scheme: 1.86x over host-based (§8.1) — our measured
  direct-scheme engine should land near that, demonstrating the added
  value of the separate collective protocol over plain offload.
- Model extrapolations: 22.13 µs (Quadrics) / 38.94 µs (Myrinet) at
  1024 nodes.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
    sweep_point,
)
from repro.model import fit_barrier_model
from repro.tools.runcache import RunCache, point_request

PAPER_ANCHORS = {
    "Quadrics NIC barrier @ 8 (us)": 5.60,
    "Quadrics improvement over tree barrier": 2.48,
    "Myrinet XP NIC barrier @ 8 (us)": 14.20,
    "Myrinet XP improvement over host": 2.64,
    "Myrinet 9.1 NIC barrier @ 16 (us)": 25.72,
    "Myrinet 9.1 improvement over host": 3.38,
    "direct scheme improvement over host": 1.86,
    "Quadrics model @ 1024 (us)": 22.13,
    "Myrinet model @ 1024 (us)": 38.94,
}


def _headline_point(iterations: int, spec) -> float:
    network, profile, barrier, n = spec
    return sweep_point(
        network, profile, barrier, "dissemination", n,
        iterations=iterations, warmup=20,
    )


QUAD_FIT_NS = (2, 4, 8, 16, 32)
MYRI_FIT_NS = (2, 4, 8, 16)


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (40 if quick else 150)

    quad, xp, l91 = "elan3_piii700", "lanai_xp_xeon2400", "lanai91_piii700"
    specs = [
        ("quadrics", quad, "nic-chained", 8),
        ("quadrics", quad, "gsync", 8),
        ("myrinet", xp, "nic-collective", 8),
        ("myrinet", xp, "host", 8),
        ("myrinet", l91, "nic-collective", 16),
        ("myrinet", l91, "host", 16),
        ("myrinet", l91, "nic-direct", 16),
    ]
    # Model extrapolations fitted from testbed-scale sweeps (the
    # paper's own methodology — and, for Myrinet, the single-crossbar
    # regime; see fig8's notes).
    specs += [("quadrics", quad, "nic-chained", n) for n in QUAD_FIT_NS]
    specs += [("myrinet", xp, "nic-collective", n) for n in MYRI_FIT_NS]
    def key_fn(spec):
        network, profile, barrier, n = spec
        return point_request(
            network, profile, barrier, "dissemination", n,
            iterations=iters, warmup=20, seed=0,
        )

    lats = parallel_map(
        partial(_headline_point, iters), specs, jobs=jobs,
        cache=cache, key_fn=key_fn,
    )

    quad_nic, quad_tree, xp_nic, xp_host, l91_nic, l91_host, l91_direct = lats[:7]
    quad_pts = list(zip(QUAD_FIT_NS, lats[7:7 + len(QUAD_FIT_NS)]))
    myri_pts = list(zip(MYRI_FIT_NS, lats[7 + len(QUAD_FIT_NS):]))
    fit_q = fit_barrier_model([p[0] for p in quad_pts], [p[1] for p in quad_pts],
                              t_init=quad_pts[0][1])
    fit_m = fit_barrier_model([p[0] for p in myri_pts], [p[1] for p in myri_pts],
                              t_init=myri_pts[0][1])

    measured = {
        "Quadrics NIC barrier @ 8 (us)": quad_nic,
        "Quadrics improvement over tree barrier": quad_tree / quad_nic,
        "Myrinet XP NIC barrier @ 8 (us)": xp_nic,
        "Myrinet XP improvement over host": xp_host / xp_nic,
        "Myrinet 9.1 NIC barrier @ 16 (us)": l91_nic,
        "Myrinet 9.1 improvement over host": l91_host / l91_nic,
        "direct scheme improvement over host": l91_host / l91_direct,
        "Quadrics model @ 1024 (us)": fit_q.predict(1024),
        "Myrinet model @ 1024 (us)": fit_m.predict(1024),
    }
    series = [
        Series("Quadrics-sim", [p[0] for p in quad_pts], [p[1] for p in quad_pts]),
        Series("MyrinetXP-sim", [p[0] for p in myri_pts], [p[1] for p in myri_pts]),
    ]
    return ExperimentResult(
        exp_id="headline",
        title="Headline numbers: paper vs simulation",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors=measured,
    )


if __name__ == "__main__":
    print_experiment(run())
