"""Degradation report: barrier latency under sustained fault load.

The chaos campaign (:mod:`repro.tools.chaos`) answers "does the
protocol survive"; this report answers "what does surviving cost".  It
sweeps sustained fault rates against every barrier scheme and tabulates
mean latency next to the clean baseline, so the retransmission
machinery's price is a number, not an anecdote:

- **loss sweep** (Myrinet): 0 / 1 / 2 / 5 % probabilistic packet loss —
  ACK-timeout recovery for the p2p schemes, receiver-driven NACKs for
  the collective protocol;
- **corruption sweep** (Myrinet): same rates, delivered-but-CRC-failed —
  identical recovery paths, but the wire time is spent;
- **delay jitter** (both networks): 20% of packets held up to 5 µs —
  no retransmissions, pure reordering/straggling tolerance.

Output is a markdown document (the ``--report`` file of ``python -m
repro chaos``).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.cluster.runner import MYRINET_BARRIERS, QUADRICS_BARRIERS
from repro.network.faults import FaultInjector
from repro.sim import DeterministicRng

LOSS_RATES = (0.0, 0.01, 0.02, 0.05)
JITTER_PROBABILITY = 0.2
JITTER_US = 5.0

_PROFILES = {"myrinet": "lanai_xp_xeon2400", "quadrics": "elan3_piii700"}


def _faulted_latency(
    network: str,
    barrier: str,
    nodes: int,
    iterations: int,
    warmup: int,
    seed: int,
    drop_probability: float = 0.0,
    corrupt_probability: float = 0.0,
    delay_probability: float = 0.0,
    delay_jitter_us: float = 0.0,
) -> tuple[float, dict[str, int]]:
    """Mean latency (µs) and recovery counters for one faulted sweep point."""
    from repro.cluster.runner import run_barrier_experiment

    faults: Optional[FaultInjector] = None
    if drop_probability or corrupt_probability or delay_probability:
        faults = FaultInjector(
            rng=DeterministicRng(seed, "chaos/degradation"),
            drop_probability=drop_probability,
            corrupt_probability=corrupt_probability,
            delay_probability=delay_probability,
            delay_jitter_us=delay_jitter_us,
        )
    cluster = build_cluster(get_profile(_PROFILES[network]), nodes, faults=faults)
    result = run_barrier_experiment(
        cluster, barrier, iterations=iterations, warmup=warmup, seed=seed
    )
    recovery = {
        key: count
        for key, count in cluster.tracer.counters.items()
        if key in (
            "gm.retransmit", "gm.rx_crc_drop", "coll.nack_timeout",
            "coll.nack_retransmit", "wire.dropped", "wire.corrupted",
            "wire.delayed",
        ) and count
    }
    return result.mean_latency_us, recovery


def _sweep_table(
    title: str,
    network: str,
    barriers: tuple[str, ...],
    fault_kw: str,
    rates: tuple[float, ...],
    nodes: int,
    iterations: int,
    warmup: int,
    seed: int,
) -> list[str]:
    lines = [f"### {title}", ""]
    header = "| scheme | " + " | ".join(
        "clean" if rate == 0.0 else f"{rate:.0%}" for rate in rates
    ) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(rates) + 1))
    for barrier in barriers:
        cells = []
        clean = None
        for rate in rates:
            latency, _ = _faulted_latency(
                network, barrier, nodes, iterations, warmup, seed,
                **{fault_kw: rate},
            )
            if clean is None:
                clean = latency
                cells.append(f"{latency:.2f} us")
            else:
                cells.append(f"{latency:.2f} us ({latency / clean:.2f}x)")
        lines.append(f"| {barrier} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def degradation_report(
    nodes: int = 16,
    iterations: int = 40,
    warmup: int = 5,
    seed: int = 0,
) -> str:
    """The full degradation document (markdown)."""
    lines = [
        "## Degradation under sustained faults",
        "",
        f"N={nodes}, {iterations} timed barriers per point ({warmup} "
        "warm-up), dissemination algorithm.  Each cell is the mean "
        "barrier latency; the parenthesized factor is the slowdown "
        "against that scheme's clean baseline.",
        "",
    ]
    lines += _sweep_table(
        "Packet loss (Myrinet)", "myrinet", MYRINET_BARRIERS,
        "drop_probability", LOSS_RATES, nodes, iterations, warmup, seed,
    )
    lines += _sweep_table(
        "Packet corruption (Myrinet)", "myrinet", MYRINET_BARRIERS,
        "corrupt_probability", LOSS_RATES, nodes, iterations, warmup, seed,
    )
    # Delay jitter: a pure timing fault, legal on both networks.  The
    # hgsync scheme sends no wire packets on the hardware path, so the
    # Quadrics row set is the two software/NIC schemes.
    lines.append("### Delay jitter (both networks, "
                 f"p={JITTER_PROBABILITY:.0%}, up to {JITTER_US:.0f} us)")
    lines.append("")
    lines.append("| network | scheme | clean | jittered |")
    lines.append("|---|---|---|---|")
    jitter_rows = [("myrinet", b) for b in MYRINET_BARRIERS] + [
        ("quadrics", b) for b in QUADRICS_BARRIERS if b != "hgsync"
    ]
    for network, barrier in jitter_rows:
        clean, _ = _faulted_latency(
            network, barrier, nodes, iterations, warmup, seed
        )
        jittered, _ = _faulted_latency(
            network, barrier, nodes, iterations, warmup, seed,
            delay_probability=JITTER_PROBABILITY, delay_jitter_us=JITTER_US,
        )
        lines.append(
            f"| {network} | {barrier} | {clean:.2f} us | "
            f"{jittered:.2f} us ({jittered / clean:.2f}x) |"
        )
    lines.append("")
    return "\n".join(lines)
