"""Ablation — quantify each elimination the collective protocol makes.

Not a paper figure, but the paper's §3/§6 argument itemized: for the
same 8-node dissemination barrier we account, per scheme and per
barrier:

- wire packets by kind (the NACK scheme's "reduce the number of actual
  barrier messages by half" vs ACK-based reliability);
- PCI transactions per node (host involvement removed by offload);
- NIC / host processor busy time (where the work moved).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.cluster import build_myrinet_cluster, get_profile, run_barrier_experiment
from repro.experiments.common import ExperimentResult, Series, parallel_map
from repro.tools.runcache import RunCache, run_request

PROFILE = "lanai91_piii700"
NODES = 8
PAPER_ANCHORS = {
    "direct wire packets per barrier / collective": 2.0,
}


@dataclass
class SchemeAccounting:
    barrier: str
    latency_us: float
    wire_packets_per_barrier: float
    barrier_packets_per_barrier: float
    acks_per_barrier: float
    pci_tx_per_node_per_barrier: float
    nic_busy_us_per_node_per_barrier: float
    host_busy_us_per_node_per_barrier: float

    def row(self) -> str:
        return (
            f"{self.barrier:<16} {self.latency_us:>9.2f} "
            f"{self.wire_packets_per_barrier:>9.1f} {self.acks_per_barrier:>6.1f} "
            f"{self.pci_tx_per_node_per_barrier:>8.2f} "
            f"{self.nic_busy_us_per_node_per_barrier:>9.2f} "
            f"{self.host_busy_us_per_node_per_barrier:>9.2f}"
        )


HEADER = (
    f"{'scheme':<16} {'lat(us)':>9} {'wire/bar':>9} {'acks':>6} "
    f"{'pci/node':>8} {'nic-us/n':>9} {'host-us/n':>9}"
)


def measure(barrier: str, iterations: int = 100) -> SchemeAccounting:
    cluster = build_myrinet_cluster(PROFILE, nodes=NODES)
    host_busy_before = 0.0
    result = run_barrier_experiment(
        cluster, barrier, "dissemination", iterations=iterations, warmup=20
    )
    c = result.counters
    iters = result.iterations
    nic_busy = sum(nic.busy_us for nic in cluster.nics)
    host_busy = sum(cpu.busy_us for cpu in cluster.cpus)
    total_bar = iterations + result.warmup
    return SchemeAccounting(
        barrier=barrier,
        latency_us=result.mean_latency_us,
        wire_packets_per_barrier=c.get("wire.packets", 0) / iters,
        barrier_packets_per_barrier=(
            c.get("wire.barrier", 0) + c.get("wire.data", 0)
        ) / iters,
        acks_per_barrier=c.get("wire.ack", 0) / iters,
        pci_tx_per_node_per_barrier=sum(p.transactions for p in cluster.pcis)
        / NODES
        / total_bar,
        nic_busy_us_per_node_per_barrier=nic_busy / NODES / total_bar,
        host_busy_us_per_node_per_barrier=host_busy / NODES / total_bar,
    )


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (30 if quick else 100)

    def key_fn(barrier):
        return run_request(
            "ablation", params=get_profile(PROFILE), barrier=barrier,
            nodes=NODES, iterations=iters, warmup=20,
        )

    rows = parallel_map(
        partial(measure, iterations=iters),
        ("host", "nic-direct", "nic-collective"),
        jobs=jobs,
        cache=cache,
        key_fn=key_fn,
        decode=lambda payload: SchemeAccounting(**payload),
    )
    by = {r.barrier: r for r in rows}
    ratio = (
        by["nic-direct"].wire_packets_per_barrier
        / by["nic-collective"].wire_packets_per_barrier
    )
    result = ExperimentResult(
        exp_id="ablation",
        title="Per-scheme accounting: packets, PCI traffic, processor time",
        series=[
            Series("latency", list(range(len(rows))), [r.latency_us for r in rows])
        ],
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "direct wire packets per barrier / collective": ratio,
        },
        notes=[HEADER] + [r.row() for r in rows] + [
            "collective protocol sends zero ACKs (receiver-driven NACKs "
            "fire only on loss): packet count halves exactly as §6.3 claims",
            "host-based scheme pays PCI transactions on every step; "
            "NIC-based schemes only at start/completion",
        ],
    )
    return result


if __name__ == "__main__":
    from repro.experiments.common import print_experiment

    print_experiment(run())
