"""Scale sweep — the paper's extrapolation range, actually executed.

Usage::

    python -m repro.experiments.scale [--jobs N] [--points quadrics16384 ...]
                                      [--quick]

Fig. 8 stops the *measured* series at N = 1024 (Quadrics) / 512
(Myrinet) and extrapolates the rest from the fitted model.  This sweep
runs the extrapolated machine sizes for real: a quaternary fat tree up
to N = 16384 (the dimension-7 QsNet a 16k-node machine would need) and
a four-level Myrinet Clos up to N = 4096.  Each point reports the
simulated mean barrier latency plus the wall-clock cost, kernel event
count, and peak RSS of producing it — the sweep doubles as the
scale-regression harness (CI runs the 4096-node Quadrics point under a
hard time cap; the 16384-node point is the "scale wall" gate).

Iteration schedules taper with N: a 16k-node barrier costs tens of
seconds of wall time per iteration, and the simulator is deterministic
— repeated steady-state iterations resample the same latency, they do
not reduce noise.  The schedule is part of the point's definition (the
run cache keys on it), so tapered points are reproducible bit-for-bit
like every other figure point.

``--jobs 8`` measures points in parallel worker processes; per-point
latencies are bit-identical to the serial sweep (fresh simulator per
point), so the only thing parallelism changes is wall time.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Optional, Sequence

from repro.cluster import build_cluster, run_barrier_experiment
from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)


def point_schedule(n: int) -> tuple[int, int]:
    """(iterations, warmup) for a scale point.

    Matches the perfbench BIG_POINTS taper at mid scale and drops to
    two measured iterations at the top end, where one warmup barrier is
    enough to reach the steady-state pipeline and every further
    iteration is deterministic re-measurement.
    """
    if n <= 1024:
        return 5, 2
    if n <= 4096:
        return 3, 1
    return 2, 1


SCALE_POINTS = {
    "quadrics256": ("elan3_piii700", "nic-chained", 256),
    "quadrics1024": ("elan3_piii700", "nic-chained", 1024),
    "quadrics4096": ("elan3_piii700", "nic-chained", 4096),
    "quadrics16384": ("elan3_piii700", "nic-chained", 16384),
    "myrinet256": ("lanai_xp_xeon2400", "nic-collective", 256),
    "myrinet1024": ("lanai_xp_xeon2400", "nic-collective", 1024),
    "myrinet4096": ("lanai_xp_xeon2400", "nic-collective", 4096),
}

QUICK_POINTS = ["quadrics256", "quadrics1024", "myrinet256", "myrinet1024"]


def scale_point(name: str) -> dict:
    """Run one scale point and report latency plus its production cost.

    Module-level so ``--jobs`` can ship it to worker processes; the
    wall/RSS figures are then per-worker, which is exactly what a scale
    gate wants to bound.
    """
    profile, barrier, n = SCALE_POINTS[name]
    iterations, warmup = point_schedule(n)
    cluster = build_cluster(profile, n)
    t0 = time.perf_counter()
    result = run_barrier_experiment(
        cluster, barrier, iterations=iterations, warmup=warmup, seed=0
    )
    wall = time.perf_counter() - t0
    return {
        "point": name,
        "profile": profile,
        "barrier": barrier,
        "nodes": n,
        "iterations": iterations,
        "warmup": warmup,
        "mean_latency_us": round(result.mean_latency_us, 4),
        "wall_s": round(wall, 2),
        "events_scheduled": cluster.sim.events_scheduled,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }


def run(
    quick: bool = False, jobs: int = 1, points: Optional[Sequence[str]] = None,
    cache=None,
) -> ExperimentResult:
    names = list(points) if points else (QUICK_POINTS if quick else list(SCALE_POINTS))
    for name in names:
        if name not in SCALE_POINTS:
            raise ValueError(
                f"unknown scale point {name!r}; choose from {sorted(SCALE_POINTS)}"
            )
    # Launch the expensive points first: with jobs < len(points) the
    # 16k-node point must not queue behind a pile of small ones.
    exec_names = sorted(names, key=lambda nm: -SCALE_POINTS[nm][2])
    rows = parallel_map(scale_point, exec_names, jobs=jobs)
    rows.sort(key=lambda r: (r["barrier"], r["nodes"]))

    series = []
    for prefix, label in (("quadrics", "Quadrics-sim"), ("myrinet", "Myrinet-sim")):
        picked = [r for r in rows if r["point"].startswith(prefix)]
        if picked:
            picked.sort(key=lambda r: r["nodes"])
            series.append(
                Series(
                    label,
                    [r["nodes"] for r in picked],
                    [r["mean_latency_us"] for r in picked],
                )
            )
    notes = [
        f"{r['point']}: {r['mean_latency_us']}us in {r['wall_s']}s wall, "
        f"{r['events_scheduled']:,} events, peak RSS {r['peak_rss_mb']}MB "
        f"(iterations={r['iterations']}, warmup={r['warmup']})"
        for r in rows
    ]
    measured = {}
    quad = next((r for r in rows if r["point"] == "quadrics16384"), None)
    if quad is not None:
        measured["Quadrics latency @ 16384 nodes (us)"] = quad["mean_latency_us"]
    result = ExperimentResult(
        exp_id="scale",
        title="Barrier latency at extrapolation scale (measured, not modeled)",
        series=series,
        measured_anchors=measured,
        notes=notes,
    )
    result.rows = rows  # full per-point cost table for --json consumers
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--points", nargs="*", default=None,
                        help=f"subset of {sorted(SCALE_POINTS)}")
    parser.add_argument("--quick", action="store_true",
                        help="only the sub-minute points (N <= 1024)")
    parser.add_argument("--json", default=None,
                        help="also write the per-point rows to this path")
    parser.add_argument("--max-wall", type=float, default=None,
                        help="fail (exit 1) if any point's wall time "
                        "exceeds this many seconds — the CI scale gate")
    args = parser.parse_args(argv)

    result = run(quick=args.quick, jobs=args.jobs, points=args.points)
    print_experiment(result)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"schema": "repro.scale/1", "points": result.rows}, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.max_wall is not None:
        slow = [r for r in result.rows if r["wall_s"] > args.max_wall]
        for r in slow:
            print(
                f"SCALE GATE FAIL: {r['point']} took {r['wall_s']}s "
                f"(cap {args.max_wall}s)",
                file=sys.stderr,
            )
        if slow:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
