"""Fig. 6 — NIC-based vs host-based barrier, Myrinet LANai-XP.

Paper setup: 8-node SuperMicro dual-Xeon 2.4 GHz, PCI-X 133 MHz,
Myrinet 2000 with 225 MHz LANai-XP NICs, GM-2.0.3.

Anchors (§8.1): 14.20 µs at 8 nodes, a 2.64x improvement over the
host-based barrier.  The factor is *smaller* than on the 700 MHz
cluster because the host-CPU:NIC speed ratio is much larger and the
PCI-X bus is faster — less for offload to win.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, print_experiment, sweep
from repro.tools.runcache import RunCache

PROFILE = "lanai_xp_xeon2400"
PAPER_ANCHORS = {
    "NIC barrier latency @ 8 nodes (us)": 14.20,
    "host/NIC improvement factor @ 8 nodes": 2.64,
}


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (30 if quick else 150)
    n_values = [2, 4, 6, 8] if quick else list(range(2, 9))
    series = [
        sweep("myrinet", PROFILE, "nic-collective", "dissemination", n_values,
              label="NIC-DS", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "nic-collective", "pairwise-exchange", n_values,
              label="NIC-PE", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "host", "dissemination", n_values,
              label="Host-DS", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "host", "pairwise-exchange", n_values,
              label="Host-PE", iterations=iters, jobs=jobs, cache=cache),
    ]
    nic8 = series[0].at(8)
    host8 = series[2].at(8)
    return ExperimentResult(
        exp_id="fig6",
        title="Barrier latency, Myrinet LANai-XP on 8-node 2.4 GHz cluster",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "NIC barrier latency @ 8 nodes (us)": nic8,
            "host/NIC improvement factor @ 8 nodes": host8 / nic8,
        },
        notes=[
            "improvement factor < Fig. 5's 3.38x: faster host CPU and PCI-X "
            "shrink the share of work offload can remove",
        ],
    )


if __name__ == "__main__":
    print_experiment(run())
