"""Extension collectives (§9): NIC-based broadcast and Allgather.

Scaling curves for the two future-work collectives built on the same
collective protocol, alongside the barrier for reference.  No paper
anchors exist (the paper proposes these); the structural expectations
are: log2-shaped scaling, exactly N-1 wire messages per broadcast,
N*ceil(log2 N) per allgather, zero ACKs everywhere.
"""

from __future__ import annotations

from repro.cluster import build_myrinet_cluster, run_barrier_experiment
from repro.collectives import (
    NicBroadcastEngine,
    ProcessGroup,
    nic_broadcast_recv,
    nic_broadcast_root,
)
from functools import partial

from repro.collectives.allgather import NicAllgatherEngine, nic_allgather
from repro.collectives.alltoall import NicAlltoallEngine, nic_alltoall
from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)
from repro.tools.runcache import RunCache, run_request

PROFILE = "lanai_xp_xeon2400"


def _ext_key_fn(kind: str, repeats: int, **extra):
    from repro.cluster import get_profile

    def build(n):
        return run_request(
            kind, params=get_profile(PROFILE), n=n, repeats=repeats, **extra
        )

    return build


def _broadcast_point(n: int, size_bytes: int, repeats: int) -> float:
    cluster = build_myrinet_cluster(PROFILE, nodes=n)
    group = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicBroadcastEngine(cluster.nics[rank], group, rank)
    finish = []

    def root():
        for seq in range(repeats):
            yield from nic_broadcast_root(cluster.ports[0], group, seq, size_bytes, 0)
        finish.append(cluster.sim.now)

    def leaf(node):
        for seq in range(repeats):
            yield from nic_broadcast_recv(cluster.ports[node], group, seq)
        finish.append(cluster.sim.now)

    cluster.sim.process(root())
    for node in range(1, n):
        cluster.sim.process(leaf(node))
    cluster.sim.run()
    return max(finish) / repeats


def _allgather_point(n: int, repeats: int) -> float:
    cluster = build_myrinet_cluster(PROFILE, nodes=n)
    group = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicAllgatherEngine(cluster.nics[rank], group, rank)
    finish = []

    def prog(node):
        for seq in range(repeats):
            yield from nic_allgather(cluster.ports[node], group, seq, node)
        finish.append(cluster.sim.now)

    for node in range(n):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    return max(finish) / repeats


def _alltoall_point(n: int, repeats: int) -> float:
    cluster = build_myrinet_cluster(PROFILE, nodes=n)
    group = ProcessGroup(list(range(n)))
    for rank in range(n):
        NicAlltoallEngine(cluster.nics[rank], group, rank)
    finish = []

    def prog(node):
        for seq in range(repeats):
            blocks = {dst: node for dst in range(n)}
            yield from nic_alltoall(cluster.ports[node], group, seq, blocks)
        finish.append(cluster.sim.now)

    for node in range(n):
        cluster.sim.process(prog(node))
    cluster.sim.run()
    return max(finish) / repeats


def _barrier_point(n: int, repeats: int) -> float:
    return run_barrier_experiment(
        build_myrinet_cluster(PROFILE, nodes=n),
        "nic-collective",
        iterations=repeats,
        warmup=5,
    ).mean_latency_us


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    repeats = iterations or (15 if quick else 40)
    n_values = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    barrier = Series(
        "barrier",
        n_values,
        parallel_map(partial(_barrier_point, repeats=repeats), n_values, jobs=jobs,
                     cache=cache, key_fn=_ext_key_fn("ext-barrier", repeats)),
    )
    bcast_small = Series(
        "bcast-64B", n_values,
        parallel_map(
            partial(_broadcast_point, size_bytes=64, repeats=repeats),
            n_values, jobs=jobs,
            cache=cache,
            key_fn=_ext_key_fn("ext-broadcast", repeats, size_bytes=64),
        ),
    )
    bcast_large = Series(
        "bcast-4KB", n_values,
        parallel_map(
            partial(_broadcast_point, size_bytes=4096, repeats=repeats),
            n_values, jobs=jobs,
            cache=cache,
            key_fn=_ext_key_fn("ext-broadcast", repeats, size_bytes=4096),
        ),
    )
    allgather = Series(
        "allgather-4B", n_values,
        parallel_map(partial(_allgather_point, repeats=repeats), n_values, jobs=jobs,
                     cache=cache, key_fn=_ext_key_fn("ext-allgather", repeats)),
    )
    alltoall = Series(
        "alltoall-4B", n_values,
        parallel_map(partial(_alltoall_point, repeats=repeats), n_values, jobs=jobs,
                     cache=cache, key_fn=_ext_key_fn("ext-alltoall", repeats)),
    )
    return ExperimentResult(
        exp_id="extensions",
        title="§9 extension collectives on the collective protocol (LANai-XP)",
        series=[barrier, bcast_small, bcast_large, allgather, alltoall],
        paper_anchors={},
        measured_anchors={},
        notes=[
            "broadcast: N-1 messages on a binomial NIC tree, no ACKs",
            "allgather: dissemination with payload doubling per round — "
            "costlier than the barrier on the same pattern",
            "alltoall: Bruck — same message pattern, ~N/2 blocks moved "
            "per rank per round",
            "all collectives share the fast path: these curves are the "
            "'Allgather or Alltoall' answer the paper asks for in §9",
        ],
    )


if __name__ == "__main__":
    print_experiment(run())
