"""Tuned vs fixed algorithm selection (the auto-tuner's payoff figure).

``python -m repro tune`` sweeps every candidate algorithm over the
``(collective, N, payload)`` grid and writes the winners into a
decision table that ``ProcessGroup(algorithm="auto")`` consults.  This
experiment renders what that buys: per collective, the latency of the
paper's fixed default (dissemination) against the latency of the
table's per-shape winner.

The sweep is the *same* cached grid the tuner measures
(:func:`repro.tools.tune.measure_point` under the same run-cache
keys), so after one ``repro tune`` this figure costs zero simulations
— and vice versa.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Series,
    parallel_map,
    print_experiment,
)
from repro.tools.runcache import RunCache
from repro.tools.tune import (
    _point_key_fn,
    candidate_points,
    measure_point,
)


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    repeats = iterations or (10 if quick else 30)
    n_values = [4, 6, 8] if quick else [4, 6, 8, 12, 16, 24, 32]
    payloads = [4, 1024] if quick else [4, 256, 4096]
    points = candidate_points(n_values, payloads, repeats)
    latencies = parallel_map(
        measure_point, points, jobs=jobs, cache=cache, key_fn=_point_key_fn
    )
    by_point = dict(zip(points, latencies))

    def shape_latencies(collective: str, payload: int):
        fixed, tuned, winners = [], [], []
        for n in n_values:
            candidates = {
                p.algorithm: latency
                for p, latency in by_point.items()
                if p.collective == collective
                and p.n == n
                and p.payload_bytes == payload
            }
            # Allreduce at non-powers-of-two has no dissemination
            # candidate (not reduce-safe); the fixed default then runs
            # what normalize_algorithm substitutes: pairwise-exchange.
            fixed.append(
                candidates.get("dissemination", candidates.get("pairwise-exchange"))
            )
            winner = min(candidates, key=candidates.get)
            tuned.append(candidates[winner])
            winners.append(winner)
        return fixed, tuned, winners

    # One payload regime per collective: the barrier is payload-free,
    # allreduce moves one value (+ contributor bitmap), allgather is
    # shown at the largest swept payload, where the pattern choice
    # moves the most bytes.
    shapes = [
        ("barrier", 0),
        ("allreduce", 4),
        ("allgather", payloads[-1]),
    ]
    series = []
    notes = [
        "fixed: the paper's default pattern (dissemination) everywhere",
        "tuned: the decision-table winner per (collective, N, payload) — "
        "what ProcessGroup(algorithm=\"auto\") picks under "
        "REPRO_TUNING_TABLE",
    ]
    for collective, payload in shapes:
        fixed, tuned, winners = shape_latencies(collective, payload)
        tag = f"{collective}" + (f"-{payload}B" if payload else "")
        series.append(Series(f"{tag}-fixed", n_values, fixed))
        series.append(Series(f"{tag}-tuned", n_values, tuned))
        notes.append(
            f"{tag} winners: "
            + ", ".join(f"{w} @ N={n}" for n, w in zip(n_values, winners))
        )
    return ExperimentResult(
        exp_id="tuned",
        title="auto-tuned vs fixed algorithm selection (LANai-XP)",
        series=series,
        paper_anchors={},
        measured_anchors={},
        notes=notes,
    )


if __name__ == "__main__":
    print_experiment(run())
