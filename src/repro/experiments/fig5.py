"""Fig. 5 — NIC-based vs host-based barrier, Myrinet LANai 9.1.

Paper setup: 16-node cluster of quad-SMP 700 MHz Pentium-III, 66 MHz
PCI, Myrinet 2000 with 133 MHz LANai 9.1 NICs, GM-2.0.3.  Four series
over N = 2..16: NIC-DS, NIC-PE, Host-DS, Host-PE.

Anchors (§8.1): 25.72 µs at 16 nodes with either algorithm — a 3.38x
improvement over the host-based barrier; pairwise-exchange shows a
latency bump at non-power-of-two node counts (its two extra steps).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, print_experiment, sweep
from repro.tools.runcache import RunCache

PROFILE = "lanai91_piii700"
PAPER_ANCHORS = {
    "NIC barrier latency @ 16 nodes (us)": 25.72,
    "host/NIC improvement factor @ 16 nodes": 3.38,
}


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (30 if quick else 150)
    n_values = [2, 4, 6, 8, 10, 12, 14, 16] if quick else list(range(2, 17))
    series = [
        sweep("myrinet", PROFILE, "nic-collective", "dissemination", n_values,
              label="NIC-DS", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "nic-collective", "pairwise-exchange", n_values,
              label="NIC-PE", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "host", "dissemination", n_values,
              label="Host-DS", iterations=iters, jobs=jobs, cache=cache),
        sweep("myrinet", PROFILE, "host", "pairwise-exchange", n_values,
              label="Host-PE", iterations=iters, jobs=jobs, cache=cache),
    ]
    nic16 = series[0].at(16)
    host16 = series[2].at(16)
    return ExperimentResult(
        exp_id="fig5",
        title="Barrier latency, Myrinet LANai 9.1 on 16-node 700 MHz cluster",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "NIC barrier latency @ 16 nodes (us)": nic16,
            "host/NIC improvement factor @ 16 nodes": host16 / nic16,
        },
        notes=[
            "PE takes two extra steps at non-power-of-two N (visible bumps)",
        ],
    )


if __name__ == "__main__":
    print_experiment(run())
