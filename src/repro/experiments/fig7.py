"""Fig. 7 — Barrier implementations on Quadrics/Elan3, 8 nodes.

Paper setup: 8 nodes of the 700 MHz P-III cluster on a QsNet Elan3
(QM-400) dimension-two quaternary fat tree, Elanlib 1.4.3.

Series: NIC-Barrier-DS / NIC-Barrier-PE (chained RDMA descriptors,
§7), Elan-Barrier (``elan_gsync`` tree), Elan-HW-Barrier
(``elan_hgsync`` with hardware broadcast).

Anchors (§8.2): NIC barrier 5.60 µs at 8 nodes — 2.48x over the tree
barrier; ``elan_hgsync`` is ~4.20 µs and *worse than the NIC barrier
at small N* (its test-and-set costs more network transactions).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, print_experiment, sweep
from repro.tools.runcache import RunCache

PROFILE = "elan3_piii700"
PAPER_ANCHORS = {
    "NIC barrier latency @ 8 nodes (us)": 5.60,
    "gsync/NIC improvement factor @ 8 nodes": 2.48,
    "elan_hgsync latency @ 8 nodes (us)": 4.20,
}


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (30 if quick else 150)
    n_values = [2, 4, 8] if quick else list(range(2, 9))
    series = [
        sweep("quadrics", PROFILE, "nic-chained", "dissemination", n_values,
              label="NIC-Barrier-DS", iterations=iters, jobs=jobs, cache=cache),
        sweep("quadrics", PROFILE, "nic-chained", "pairwise-exchange", n_values,
              label="NIC-Barrier-PE", iterations=iters, jobs=jobs, cache=cache),
        sweep("quadrics", PROFILE, "gsync", "dissemination", n_values,
              label="Elan-Barrier", iterations=iters, jobs=jobs, cache=cache),
        sweep("quadrics", PROFILE, "hgsync", "dissemination", n_values,
              label="Elan-HW-Barrier", iterations=iters, jobs=jobs, cache=cache),
    ]
    nic8 = series[0].at(8)
    gsync8 = series[2].at(8)
    hw8 = series[3].at(8)
    hw2 = series[3].at(2)
    nic2 = series[0].at(2)
    notes = [
        "hgsync is nearly flat in N (fat-tree broadcast), but requires "
        "synchronized callers",
    ]
    if nic2 < hw2:
        notes.append(
            "as in the paper, the NIC barrier beats the hardware barrier at "
            "small node counts"
        )
    return ExperimentResult(
        exp_id="fig7",
        title="Barrier latency, Quadrics/Elan3 on 8-node 700 MHz cluster",
        series=series,
        paper_anchors=PAPER_ANCHORS,
        measured_anchors={
            "NIC barrier latency @ 8 nodes (us)": nic8,
            "gsync/NIC improvement factor @ 8 nodes": gsync8 / nic8,
            "elan_hgsync latency @ 8 nodes (us)": hw8,
        },
        notes=notes,
    )


if __name__ == "__main__":
    print_experiment(run())
