"""Contention: multi-job workloads and cross-traffic on a shared fabric.

The paper benchmarks every barrier on a silent, single-job machine.
The clusters that motivated its protocol do not run that way: several
jobs hold overlapping allocations and background point-to-point
traffic shares the same links.  This experiment measures what that
does to the tail: a skewed two-job trace (one large job plus one small
late-arriving job, allocations overlapping) runs with seeded Poisson
cross-traffic, and the large job's p99 barrier latency is compared
against its silent-machine mean, on both networks, across machine
sizes.

Expectations are structural (no paper anchor exists for this setting):

- contended p99 must sit measurably above the silent mean on both
  networks — the shared links are never free;
- Quadrics should degrade *less* than Myrinet: the chained-RDMA
  barrier crosses the NIC-local event unit, not the host, so it only
  queues behind cross-traffic on the wire, while GM's host-driven
  sends also contend for the host CPU;
- Jain fairness over per-job slowdowns should stay near 1: the
  dissemination/chained schedules give neither job a structural
  advantage on shared links.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.tools.runcache import RunCache
from repro.workload import CrossTrafficSpec, generate_trace, run_workload_cached

NETWORKS = ("myrinet", "quadrics")
XTRAFFIC = CrossTrafficSpec(rate_per_ms=50.0, size_bytes=512)


def _measure(network: str, nodes: int, iterations: int, cache):
    jobs = generate_trace(
        "skewed", 2, nodes, seed=0, iterations=iterations, payload_bytes=64
    )
    return run_workload_cached(
        network, nodes, jobs, seed=0, xtraffic=XTRAFFIC,
        cache=cache if cache is not None else None,
    )


def run(
    quick: bool = False, iterations: int | None = None, jobs: int = 1,
    cache: RunCache | None = None,
) -> ExperimentResult:
    iters = iterations or (8 if quick else 16)
    n_values = [16, 32] if quick else [16, 32, 64]

    series = []
    notes = [
        "two-job skewed trace: job0 holds 3N/4 nodes from t=0, job1 holds "
        "N/4 overlapping nodes and arrives late; cross-traffic is seeded "
        f"Poisson p2p at {XTRAFFIC.rate_per_ms:.0f} pkt/ms x "
        f"{XTRAFFIC.size_bytes}B over the same links",
        "p99 is the nearest-rank tail over job0's timed iterations; "
        "'silent' is the same job alone on an idle machine",
    ]
    for network in NETWORKS:
        contended, silent, fairness = [], [], []
        for nodes in n_values:
            result = _measure(network, nodes, iters, cache)
            job0 = result["jobs"][0]
            contended.append(job0["p99_us"])
            silent.append(job0["silent_mean_us"])
            fairness.append(result["fairness"])
            bad = [
                a for a in result["group_audit"]
                if a["expected_packets"] != a["actual_packets"]
            ]
            if bad or result["violations"] or result["quiescence"]:
                notes.append(
                    f"AUDIT FAILED {network} N={nodes}: "
                    f"{bad or result['violations'] or result['quiescence']}"
                )
        series.append(Series(f"{network} job0 p99 contended", n_values, contended))
        series.append(Series(f"{network} job0 silent mean", n_values, silent))
        worst = max(
            (c / s, n) for c, s, n in zip(contended, silent, n_values)
        )
        notes.append(
            f"{network}: worst contended-p99/silent-mean ratio "
            f"{worst[0]:.2f}x at N={worst[1]}; Jain fairness "
            f"{min(fairness):.3f}-{max(fairness):.3f}"
        )
    return ExperimentResult(
        exp_id="contention",
        title="Multi-job contention: overlapping jobs + cross-traffic "
              "vs the silent machine",
        series=series,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    from repro.experiments.common import print_experiment

    print_experiment(run(quick=True))
