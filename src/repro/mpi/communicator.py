"""Communicators: per-rank handles over the NIC-based collectives.

One :func:`create_communicators` call builds the shared collective
contexts (process groups + NIC engines) and returns one handle per
rank.  Each collective kind gets its own group (as GM dedicates ports):
the engines demultiplex NIC traffic by group id.

MPI semantics reproduced:

- collectives must be called by *all* ranks in the same order; the
  per-rank operation counters keep sequence numbers aligned without
  any caller bookkeeping;
- ``bcast`` supports any root (a dedicated broadcast context per root,
  built lazily — a persistent-collective setup cost, not a per-call
  one);
- results are returned from the generator (``value = yield from
  comm.bcast(...)``).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence, Union

from repro.cluster.builder import MyrinetCluster, QuadricsCluster
from repro.collectives import (
    NicCollectiveBarrierEngine,
    ProcessGroup,
    QuadricsChainedBarrier,
    nic_barrier,
)
from repro.collectives.allgather import NicAllgatherEngine, nic_allgather
from repro.collectives.allreduce import NicAllreduceEngine, nic_allreduce
from repro.collectives.alltoall import NicAlltoallEngine, nic_alltoall
from repro.collectives.broadcast import (
    NicBroadcastEngine,
    nic_broadcast_recv,
    nic_broadcast_root,
)

_counter = itertools.count()


class _MyrinetContexts:
    """Shared collective state for one Myrinet communicator."""

    def __init__(self, cluster: MyrinetCluster, nodes: Sequence[int], algorithm: str):
        self.cluster = cluster
        self.nodes = tuple(nodes)
        self.algorithm = algorithm
        self.barrier_group = ProcessGroup(nodes, algorithm=algorithm)
        self.allgather_group = ProcessGroup(nodes)
        self.alltoall_group = ProcessGroup(nodes)
        self.allreduce_group = ProcessGroup(nodes)
        for rank, node in enumerate(self.nodes):
            NicCollectiveBarrierEngine(cluster.nics[node], self.barrier_group, rank)
            NicAllgatherEngine(cluster.nics[node], self.allgather_group, rank)
            NicAlltoallEngine(cluster.nics[node], self.alltoall_group, rank)
            NicAllreduceEngine(cluster.nics[node], self.allreduce_group, rank)
        self._bcast_groups: dict[int, ProcessGroup] = {}

    def bcast_group(self, root: int) -> ProcessGroup:
        """The broadcast context rooted at ``root`` (rank), built lazily.

        The engine's tree is rooted at group-rank 0, so the group's
        node order is rotated to put ``root`` first.
        """
        group = self._bcast_groups.get(root)
        if group is None:
            rotated = self.nodes[root:] + self.nodes[:root]
            group = ProcessGroup(rotated)
            for rank, node in enumerate(rotated):
                NicBroadcastEngine(self.cluster.nics[node], group, rank)
            self._bcast_groups[root] = group
        return group


class MyrinetRankComm:
    """One rank's communicator handle on a Myrinet cluster."""

    def __init__(self, ctx: _MyrinetContexts, rank: int):
        self._ctx = ctx
        self.rank = rank
        self.node = ctx.nodes[rank]
        self._port = ctx.cluster.ports[self.node]
        self._barrier_seq = 0
        self._bcast_seq = 0
        self._allgather_seq = 0
        self._alltoall_seq = 0
        self._allreduce_seq = 0

    @property
    def size(self) -> int:
        return len(self._ctx.nodes)

    def barrier(self):
        """MPI_Barrier over the NIC-based collective protocol."""
        seq = self._barrier_seq
        self._barrier_seq += 1
        yield from nic_barrier(self._port, self._ctx.barrier_group, seq)

    def bcast(self, value: Any = None, size_bytes: int = 4, root: int = 0):
        """MPI_Bcast over the NIC-based broadcast tree.

        Returns the broadcast value at every rank (including the root).
        """
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")
        seq = self._bcast_seq
        self._bcast_seq += 1
        group = self._ctx.bcast_group(root)
        if self.rank == root:
            done = yield from nic_broadcast_root(
                self._port, group, seq, size_bytes, payload=value
            )
        else:
            done = yield from nic_broadcast_recv(self._port, group, seq)
        return done.payload

    def allgather(self, value: Any):
        """MPI_Allgather of one value per rank.

        Returns ``{rank: value}`` for all ranks.
        """
        seq = self._allgather_seq
        self._allgather_seq += 1
        gathered = yield from nic_allgather(
            self._port, self._ctx.allgather_group, seq, value
        )
        return gathered

    def alltoall(self, blocks: dict):
        """MPI_Alltoall: ``blocks[dst_rank]`` is this rank's block for
        ``dst_rank``.  Returns ``{origin_rank: block}``."""
        seq = self._alltoall_seq
        self._alltoall_seq += 1
        received = yield from nic_alltoall(
            self._port, self._ctx.alltoall_group, seq, blocks
        )
        return received

    def allreduce(self, value: Any, op: str = "sum"):
        """MPI_Allreduce with a named operator (sum/prod/min/max)."""
        seq = self._allreduce_seq
        self._allreduce_seq += 1
        result = yield from nic_allreduce(
            self._port, self._ctx.allreduce_group, seq, value, op
        )
        return result


class QuadricsRankComm:
    """One rank's communicator handle on a Quadrics cluster.

    ``barrier()`` uses the chained-RDMA NIC barrier (§7);
    ``allgather``/``bcast`` are not offered on this transport (the
    paper's Quadrics contribution is the barrier).
    """

    def __init__(self, cluster: QuadricsCluster, group: ProcessGroup, rank: int):
        self.rank = rank
        self.node = group.node_of(rank)
        self._port = cluster.ports[self.node]
        self._driver = QuadricsChainedBarrier(self._port, group)
        self._barrier_seq = 0
        self._bcast_seq = 0
        self._group = group

    @property
    def size(self) -> int:
        return self._group.size

    def barrier(self):
        seq = self._barrier_seq
        self._barrier_seq += 1
        yield from self._driver.barrier(seq)

    def bcast(self, value: Any = None, size_bytes: int = 4):
        """MPI_Bcast from rank 0 via QsNet's hardware broadcast."""
        from repro.quadrics import elan_hw_broadcast

        seq = self._bcast_seq
        self._bcast_seq += 1
        result = yield from elan_hw_broadcast(
            self._port, self._group.node_ids, seq, size_bytes, value
        )
        return result


def create_communicators(
    cluster: Union[MyrinetCluster, QuadricsCluster],
    nodes: Optional[Sequence[int]] = None,
    algorithm: str = "dissemination",
):
    """Build one communicator handle per rank over ``cluster``.

    ``nodes`` selects/permutes the participating nodes (default: all,
    in order).
    """
    if not isinstance(cluster, (MyrinetCluster, QuadricsCluster)):
        raise TypeError(f"not a cluster: {cluster!r}")
    node_list = list(range(cluster.n)) if nodes is None else list(nodes)
    if isinstance(cluster, MyrinetCluster):
        ctx = _MyrinetContexts(cluster, node_list, algorithm)
        return [MyrinetRankComm(ctx, rank) for rank in range(len(node_list))]
    if isinstance(cluster, QuadricsCluster):
        group = ProcessGroup(node_list, algorithm=algorithm)
        return [
            QuadricsRankComm(cluster, group, rank) for rank in range(len(node_list))
        ]
    raise TypeError(f"not a cluster: {cluster!r}")
