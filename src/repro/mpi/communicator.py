"""Communicators: per-rank handles over the NIC-based collectives.

One :func:`create_communicators` call builds the shared collective
contexts (process groups + NIC engines) and returns one handle per
rank.  Each collective kind gets its own group (as GM dedicates ports):
the engines demultiplex NIC traffic by group id.

MPI semantics reproduced:

- collectives must be called by *all* ranks in the same order; the
  per-rank operation counters keep sequence numbers aligned without
  any caller bookkeeping;
- ``bcast`` supports any root (a dedicated broadcast context per root,
  built lazily — a persistent-collective setup cost, not a per-call
  one);
- results are returned from the generator (``value = yield from
  comm.bcast(...)``).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence, Union

from repro.cluster.builder import MyrinetCluster, QuadricsCluster
from repro.collectives import (
    NicCollectiveBarrierEngine,
    ProcessGroup,
    QuadricsChainedBarrier,
    nic_barrier,
)
from repro.collectives.failures import Revoked
from repro.collectives.allgather import NicAllgatherEngine, nic_allgather
from repro.collectives.allreduce import NicAllreduceEngine, nic_allreduce
from repro.collectives.alltoall import NicAlltoallEngine, nic_alltoall
from repro.collectives.broadcast import (
    NicBroadcastEngine,
    nic_broadcast_recv,
    nic_broadcast_root,
)
from repro.collectives.nonblocking import nic_ibarrier

_counter = itertools.count()


class _MyrinetContexts:
    """Shared collective state for one Myrinet communicator."""

    def __init__(self, cluster: MyrinetCluster, nodes: Sequence[int], algorithm: str):
        self.cluster = cluster
        self.nodes = tuple(nodes)
        self.algorithm = algorithm
        #: Repair generation — bumped by :meth:`repair`; rank handles
        #: lazily resync (rank re-index + sequence reset) when it moves.
        self.epoch = 0
        alloc = getattr(cluster, "group_ids", None)
        self._id_allocator = alloc
        self.barrier_group = ProcessGroup(
            nodes, algorithm=algorithm, id_allocator=alloc
        )
        self.allgather_group = ProcessGroup(nodes, id_allocator=alloc)
        self.alltoall_group = ProcessGroup(nodes, id_allocator=alloc)
        self.allreduce_group = ProcessGroup(nodes, id_allocator=alloc)
        self._bcast_groups: dict[int, ProcessGroup] = {}
        self._register_engines()

    def _register_engines(self) -> None:
        cluster = self.cluster
        for rank, node in enumerate(self.nodes):
            NicCollectiveBarrierEngine(cluster.nics[node], self.barrier_group, rank)
            NicAllgatherEngine(cluster.nics[node], self.allgather_group, rank)
            NicAlltoallEngine(cluster.nics[node], self.alltoall_group, rank)
            NicAllreduceEngine(cluster.nics[node], self.allreduce_group, rank)

    def _groups(self) -> list[ProcessGroup]:
        return [
            self.barrier_group,
            self.allgather_group,
            self.alltoall_group,
            self.allreduce_group,
            *self._bcast_groups.values(),
        ]

    def revoke_epoch(self) -> None:
        """Post the epoch-teardown command to every engine of every
        current group, on every member NIC — dead nodes included.

        A dead node's zombie control program still drains its command
        and event queues; revoking its engines resolves its outstanding
        sequences with typed failures, so its blocked host processes
        unblock and its queues audit clean (simlint SL104).
        """
        for group in self._groups():
            for node in group.node_ids:
                self.cluster.nics[node].post_engine_command(
                    (group.group_id, "epoch", -1)
                )

    def repair(
        self, dead_nodes: Sequence[int], payload_bytes: int = 0
    ) -> None:
        """Shrink every collective context onto the survivors.

        ULFM-style: revoke the dying epoch (every in-flight sequence
        resolves to :class:`Revoked`), build survivor groups one epoch
        later, IR-verify the recompiled schedules (SL201–SL208), and
        register fresh engines.  Rank handles resync on their next
        collective call; handles on dead nodes raise :class:`Revoked`.
        """
        dead = set(dead_nodes)
        unknown = dead - set(self.nodes)
        if unknown:
            raise ValueError(f"nodes {sorted(unknown)} not in communicator")
        self.revoke_epoch()
        self.barrier_group = self.barrier_group.repair(
            dead, collectives=("barrier",)
        )
        self.allgather_group = self.allgather_group.repair(
            dead, collectives=("allgather",), payload_bytes=payload_bytes
        )
        self.alltoall_group = self.alltoall_group.repair(
            dead, collectives=("alltoall",), payload_bytes=payload_bytes
        )
        self.allreduce_group = self.allreduce_group.repair(
            dead, collectives=("allreduce",), payload_bytes=payload_bytes
        )
        # Broadcast contexts are root-relative; drop them and let the
        # next bcast() rebuild lazily over the survivor order.
        self._bcast_groups = {}
        self.nodes = tuple(n for n in self.nodes if n not in dead)
        self._register_engines()
        self.epoch += 1

    def bcast_group(self, root: int) -> ProcessGroup:
        """The broadcast context rooted at ``root`` (rank), built lazily.

        The engine's tree is rooted at group-rank 0, so the group's
        node order is rotated to put ``root`` first.
        """
        group = self._bcast_groups.get(root)
        if group is None:
            rotated = self.nodes[root:] + self.nodes[:root]
            group = ProcessGroup(rotated, id_allocator=self._id_allocator)
            for rank, node in enumerate(rotated):
                NicBroadcastEngine(self.cluster.nics[node], group, rank)
            self._bcast_groups[root] = group
        return group


class MyrinetRankComm:
    """One rank's communicator handle on a Myrinet cluster."""

    def __init__(self, ctx: _MyrinetContexts, rank: int):
        self._ctx = ctx
        self.rank = rank
        self.node = ctx.nodes[rank]
        self._port = ctx.cluster.ports[self.node]
        self._epoch = ctx.epoch
        self._barrier_seq = 0
        self._bcast_seq = 0
        self._allgather_seq = 0
        self._alltoall_seq = 0
        self._allreduce_seq = 0

    @property
    def size(self) -> int:
        return len(self._ctx.nodes)

    def _sync_epoch(self) -> None:
        """Adopt the context's current epoch before a collective call.

        After a repair the survivor ranks re-index densely and every
        sequence counter restarts at 0 (the new groups have fresh ids,
        so old and new numbering spaces cannot collide).  A handle
        whose node did not survive raises :class:`Revoked` — the typed
        verdict, not a hang.
        """
        ctx = self._ctx
        if self._epoch == ctx.epoch:
            return
        if self.node not in ctx.nodes:
            raise Revoked(ctx.barrier_group.group_id, -1, node=self.node)
        self.rank = ctx.nodes.index(self.node)
        self._epoch = ctx.epoch
        self._barrier_seq = 0
        self._bcast_seq = 0
        self._allgather_seq = 0
        self._alltoall_seq = 0
        self._allreduce_seq = 0

    def barrier(self):
        """MPI_Barrier over the NIC-based collective protocol."""
        self._sync_epoch()
        seq = self._barrier_seq
        self._barrier_seq += 1
        yield from nic_barrier(self._port, self._ctx.barrier_group, seq)

    def ibarrier(self):
        """MPI_Ibarrier: post the barrier, return a
        :class:`~repro.collectives.nonblocking.CollectiveRequest` with
        generator ``test()``/``wait()`` methods."""
        self._sync_epoch()
        seq = self._barrier_seq
        self._barrier_seq += 1
        request = yield from nic_ibarrier(
            self._port, self._ctx.barrier_group, seq
        )
        return request

    def bcast(self, value: Any = None, size_bytes: int = 4, root: int = 0):
        """MPI_Bcast over the NIC-based broadcast tree.

        Returns the broadcast value at every rank (including the root).
        """
        self._sync_epoch()
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")
        seq = self._bcast_seq
        self._bcast_seq += 1
        group = self._ctx.bcast_group(root)
        if self.rank == root:
            done = yield from nic_broadcast_root(
                self._port, group, seq, size_bytes, payload=value
            )
        else:
            done = yield from nic_broadcast_recv(self._port, group, seq)
        return done.payload

    def allgather(self, value: Any):
        """MPI_Allgather of one value per rank.

        Returns ``{rank: value}`` for all ranks.
        """
        self._sync_epoch()
        seq = self._allgather_seq
        self._allgather_seq += 1
        gathered = yield from nic_allgather(
            self._port, self._ctx.allgather_group, seq, value
        )
        return gathered

    def alltoall(self, blocks: dict):
        """MPI_Alltoall: ``blocks[dst_rank]`` is this rank's block for
        ``dst_rank``.  Returns ``{origin_rank: block}``."""
        self._sync_epoch()
        seq = self._alltoall_seq
        self._alltoall_seq += 1
        received = yield from nic_alltoall(
            self._port, self._ctx.alltoall_group, seq, blocks
        )
        return received

    def allreduce(self, value: Any, op: str = "sum"):
        """MPI_Allreduce with a named operator (sum/prod/min/max)."""
        self._sync_epoch()
        seq = self._allreduce_seq
        self._allreduce_seq += 1
        result = yield from nic_allreduce(
            self._port, self._ctx.allreduce_group, seq, value, op
        )
        return result


class QuadricsRankComm:
    """One rank's communicator handle on a Quadrics cluster.

    ``barrier()`` uses the chained-RDMA NIC barrier (§7);
    ``allgather``/``bcast`` are not offered on this transport (the
    paper's Quadrics contribution is the barrier).
    """

    def __init__(self, cluster: QuadricsCluster, group: ProcessGroup, rank: int):
        self.rank = rank
        self.node = group.node_of(rank)
        self._port = cluster.ports[self.node]
        self._driver = QuadricsChainedBarrier(self._port, group)
        self._barrier_seq = 0
        self._bcast_seq = 0
        self._group = group

    @property
    def size(self) -> int:
        return self._group.size

    def barrier(self):
        seq = self._barrier_seq
        self._barrier_seq += 1
        yield from self._driver.barrier(seq)

    def ibarrier(self):
        """MPI_Ibarrier: returns a
        :class:`~repro.collectives.quadrics_barrier.QuadricsBarrierRequest`
        with generator ``test()``/``wait()`` methods."""
        seq = self._barrier_seq
        self._barrier_seq += 1
        request = yield from self._driver.ibarrier(seq)
        return request

    def bcast(self, value: Any = None, size_bytes: int = 4):
        """MPI_Bcast from rank 0 via QsNet's hardware broadcast."""
        from repro.quadrics import elan_hw_broadcast

        seq = self._bcast_seq
        self._bcast_seq += 1
        result = yield from elan_hw_broadcast(
            self._port,
            self._group.node_ids,
            seq,
            size_bytes,
            value,
            event_prefix=f"hbcast.g{self._group.group_id}",
        )
        return result

    def revoke(self):
        """Tear down this rank's chained-barrier driver (see
        :meth:`QuadricsChainedBarrier.revoke`)."""
        self._driver.revoke()


def repair_quadrics(
    cluster: QuadricsCluster,
    comms: Sequence[QuadricsRankComm],
    dead_nodes: Sequence[int],
) -> list[QuadricsRankComm]:
    """Revoke a Quadrics communicator's epoch and rebuild on survivors.

    Every rank's driver is revoked — dead ranks included, so their
    blocked host processes resolve to :class:`Revoked` and their NICs'
    event queues drain — then the group shrinks one epoch (schedule
    recompiled over the survivor set and IR-verified) and fresh
    chained-RDMA drivers are built for the survivors.  Returns the new
    per-rank handles, in survivor order.
    """
    if not comms:
        raise ValueError("no communicators to repair")
    old_group = comms[0]._group
    for comm in comms:
        comm.revoke()
    new_group = old_group.repair(dead_nodes, collectives=("barrier",))
    return [
        QuadricsRankComm(cluster, new_group, rank)
        for rank in range(new_group.size)
    ]


def create_communicators(
    cluster: Union[MyrinetCluster, QuadricsCluster],
    nodes: Optional[Sequence[int]] = None,
    algorithm: str = "dissemination",
):
    """Build one communicator handle per rank over ``cluster``.

    ``nodes`` selects/permutes the participating nodes (default: all,
    in order).
    """
    if not isinstance(cluster, (MyrinetCluster, QuadricsCluster)):
        raise TypeError(f"not a cluster: {cluster!r}")
    node_list = list(range(cluster.n)) if nodes is None else list(nodes)
    if isinstance(cluster, MyrinetCluster):
        ctx = _MyrinetContexts(cluster, node_list, algorithm)
        return [MyrinetRankComm(ctx, rank) for rank in range(len(node_list))]
    if isinstance(cluster, QuadricsCluster):
        group = ProcessGroup(
            node_list,
            algorithm=algorithm,
            id_allocator=getattr(cluster, "group_ids", None),
        )
        return [
            QuadricsRankComm(cluster, group, rank) for rank in range(len(node_list))
        ]
    raise TypeError(f"not a cluster: {cluster!r}")
