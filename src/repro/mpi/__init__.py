"""A minimal MPI-style facade over the NIC-based collectives.

The paper's stated integration target is a message-passing library
("we plan to incorporate this barrier algorithm into LA-MPI", §9).
This package provides that shape: a communicator whose ``barrier()``,
``bcast()`` and ``allgather()`` ride the NIC-based engines, with
automatic operation sequencing — callers never touch sequence numbers.

Usage (host processes are simulation generators)::

    from repro.cluster import build_myrinet_cluster
    from repro.mpi import create_communicators

    cluster = build_myrinet_cluster("lanai_xp_xeon2400", nodes=8)
    comms = create_communicators(cluster)

    def program(comm):
        yield from comm.barrier()
        data = yield from comm.bcast(value="hello", size_bytes=64)
        gathered = yield from comm.allgather(comm.rank * 10)

    for comm in comms:
        cluster.sim.process(program(comm))
    cluster.sim.run()
"""

from repro.mpi.communicator import (
    MyrinetRankComm,
    QuadricsRankComm,
    create_communicators,
    repair_quadrics,
)

__all__ = [
    "create_communicators",
    "MyrinetRankComm",
    "QuadricsRankComm",
    "repair_quadrics",
]
