"""Calibrated hardware profiles for the paper's three test systems.

Each profile decomposes per-step protocol costs into the constants the
simulator mechanically executes.  The decomposition is anchored to the
paper's measurements (§8):

- ``lanai_xp_xeon2400`` — 8-node dual-Xeon 2.4 GHz, PCI-X 133 MHz,
  Myrinet 2000 with 225 MHz LANai-XP.  Anchors: NIC-based barrier
  14.20 µs @ 8 nodes; 2.64x over host-based (≈ 37.5 µs); model
  3.60 + (⌈log2 N⌉−1)·3.50 + 3.84.
- ``lanai91_piii700`` — 16-node quad-P-III 700 MHz, PCI 66 MHz,
  Myrinet 2000 with 133 MHz LANai 9.1.  Anchors: NIC-based 25.72 µs @
  16 nodes; 3.38x over host-based (≈ 86.9 µs); prior-work direct
  scheme 1.86x (≈ 46.7 µs).
- ``elan3_piii700`` — 8-node quad-P-III 700 MHz, PCI 66 MHz, QsNet
  Elan3 (QM-400) on an Elite-16 fat tree.  Anchors: NIC-based barrier
  5.60 µs @ 8 nodes; 2.48x over ``elan_gsync`` (≈ 13.9 µs);
  ``elan_hgsync`` 4.20 µs.

The NIC task constants scale with NIC processor speed (LANai 9.1 at
133 MHz ≈ 1.7x slower than LANai-XP at 225 MHz), host constants with
host CPU speed, and bus constants with PCI generation — preserving the
paper's observation that a faster host/bus shrinks the offload win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.host import HostParams
from repro.myrinet import GmParams
from repro.network import WireParams
from repro.pci import PciParams
from repro.quadrics import ElanParams


@dataclass(frozen=True)
class HardwareProfile:
    """Everything needed to instantiate one of the paper's clusters."""

    name: str
    network: str  # "myrinet" | "quadrics"
    description: str
    max_nodes: int
    wire: WireParams
    pci: PciParams
    host: HostParams
    gm: Optional[GmParams] = None
    elan: Optional[ElanParams] = None

    def __post_init__(self) -> None:
        if self.network not in ("myrinet", "quadrics"):
            raise ValueError(f"unknown network {self.network!r}")
        if self.network == "myrinet" and self.gm is None:
            raise ValueError("myrinet profile needs GmParams")
        if self.network == "quadrics" and self.elan is None:
            raise ValueError("quadrics profile needs ElanParams")


# ----------------------------------------------------------------------
# Shared physical constants
# ----------------------------------------------------------------------
# Myrinet 2000: 2 Gb/s links (250 B/µs), wormhole crossbars.
_MYRINET_WIRE = WireParams(
    inject_us=0.10,
    switch_latency_us=0.30,
    propagation_us=0.05,
    bandwidth_bytes_per_us=250.0,
)

# QsNet Elan3: 400 MB/µs links, very fast Elite switches.
_QSNET_WIRE = WireParams(
    inject_us=0.05,
    switch_latency_us=0.06,
    propagation_us=0.02,
    bandwidth_bytes_per_us=400.0,
)

# 66 MHz / 64-bit PCI (theoretical 528 MB/s; practical less) as driven
# by the LANai's DMA engine.
_PCI_66 = PciParams(pio_write_us=0.90, dma_setup_us=1.00, bandwidth_bytes_per_us=350.0)

# 133 MHz / 64-bit PCI-X.
_PCIX_133 = PciParams(pio_write_us=0.40, dma_setup_us=0.55, bandwidth_bytes_per_us=700.0)

# The same 66 MHz PCI as driven by the Elan3: Quadrics' DMA engine is
# engineered for tiny low-setup host-memory writes (doorbell-free
# command queues, direct host-word updates), so per-transaction setup
# is far below the LANai's.
_PCI_66_ELAN = PciParams(
    pio_write_us=0.30, dma_setup_us=0.25, bandwidth_bytes_per_us=350.0
)

# 700 MHz Pentium-III running GM's host library.
_HOST_PIII_700 = HostParams(
    send_overhead_us=2.60,
    recv_overhead_us=2.00,
    poll_us=1.10,
    poll_interval_us=1.10,
    barrier_call_us=0.50,
)

# The same P-III running Elanlib: a leaner user-level library (command
# queues + polled host words rather than descriptor queues).
_HOST_PIII_700_ELAN = HostParams(
    send_overhead_us=0.40,
    recv_overhead_us=0.45,
    poll_us=0.25,
    poll_interval_us=0.30,
    barrier_call_us=0.25,
)

# 2.4 GHz Xeon running GM's host library.
_HOST_XEON_2400 = HostParams(
    send_overhead_us=1.25,
    recv_overhead_us=0.95,
    poll_us=0.60,
    poll_interval_us=0.70,
    barrier_call_us=0.25,
)


# ----------------------------------------------------------------------
# Myrinet NIC control-program task costs
# ----------------------------------------------------------------------
# LANai-XP (225 MHz).  Collective-path anchor: t_rx_header +
# t_coll_trigger + t_inject + wire(~0.55) ≈ T_trig ≈ 3.5 µs.
_GM_LANAI_XP = GmParams(
    t_sdma_event=0.90,
    t_token_schedule=0.55,
    t_packet_alloc=0.45,
    t_fill=0.50,
    t_inject=0.55,
    t_send_record=0.40,
    t_rx_header=1.00,
    t_rdma_setup=0.80,
    t_recv_event=0.70,
    t_ack_gen=0.45,
    t_ack_process=0.45,
    t_token_complete=0.40,
    t_retransmit=0.50,
    t_coll_start=0.55,
    t_coll_trigger=1.25,
    t_coll_complete=0.45,
    t_nack_gen=0.45,
    t_nack_process=0.45,
    ack_timeout_us=400.0,
    nack_timeout_us=1000.0,
)

# LANai 9.1 (133 MHz): slower processor than LANai-XP throughout; the
# host-visible receive path (RDMA setup, receive events) is the part GM
# tuned least, hence its above-ratio cost.
_GM_LANAI_91 = GmParams(
    t_sdma_event=1.00,
    t_token_schedule=0.60,
    t_packet_alloc=0.45,
    t_fill=0.55,
    t_inject=0.85,
    t_send_record=0.40,
    t_rx_header=1.60,
    t_rdma_setup=2.30,
    t_recv_event=2.00,
    t_ack_gen=0.55,
    t_ack_process=0.55,
    t_token_complete=0.70,
    t_retransmit=0.85,
    t_coll_start=0.85,
    t_coll_trigger=1.55,
    t_coll_complete=0.60,
    t_nack_gen=0.55,
    t_nack_process=0.55,
    ack_timeout_us=600.0,
    nack_timeout_us=1500.0,
)

# Elan3: dedicated hardware units, far cheaper per operation.
_ELAN3 = ElanParams(
    t_event_fire=0.38,
    t_rdma_issue=0.50,
    t_pio_command=0.12,
    t_host_event=0.20,
    t_thread_step=0.55,
    t_tport_match=0.65,
    t_hw_flag_check=0.45,
    hw_retry_backoff_us=4.0,
)


PROFILES: dict[str, HardwareProfile] = {
    "lanai_xp_xeon2400": HardwareProfile(
        name="lanai_xp_xeon2400",
        network="myrinet",
        description=(
            "8-node dual-Xeon 2.4 GHz, PCI-X 133 MHz/64-bit, Myrinet 2000 "
            "with 225 MHz LANai-XP NICs (paper Fig. 6 / Fig. 8b)"
        ),
        max_nodes=4096,  # four-level Clos of Xbar16 crossbars
        wire=_MYRINET_WIRE,
        pci=_PCIX_133,
        host=_HOST_XEON_2400,
        gm=_GM_LANAI_XP,
    ),
    "lanai91_piii700": HardwareProfile(
        name="lanai91_piii700",
        network="myrinet",
        description=(
            "16-node quad-P-III 700 MHz, PCI 66 MHz/64-bit, Myrinet 2000 "
            "with 133 MHz LANai 9.1 NICs (paper Fig. 5)"
        ),
        max_nodes=4096,  # four-level Clos of Xbar16 crossbars
        wire=_MYRINET_WIRE,
        pci=_PCI_66,
        host=_HOST_PIII_700,
        gm=_GM_LANAI_91,
    ),
    "elan3_piii700": HardwareProfile(
        name="elan3_piii700",
        network="quadrics",
        description=(
            "8-node quad-P-III 700 MHz, PCI 66 MHz/64-bit, QsNet/Elan3 "
            "QM-400 on an Elite-16 quaternary fat tree (paper Fig. 7 / 8a)"
        ),
        max_nodes=16384,  # dimension-7 quaternary fat tree
        wire=_QSNET_WIRE,
        pci=_PCI_66_ELAN,
        host=_HOST_PIII_700_ELAN,
        elan=_ELAN3,
    ),
}


def get_profile(name: str) -> HardwareProfile:
    """Look up a hardware profile by name.

    Lookup is forgiving about spelling variants of the same profile:
    case-insensitive, and dashes/underscores are interchangeable or
    omissible — ``LANAI_91_PIII_700``, ``lanai-xp-xeon2400`` and
    ``Elan3_PIII700`` all resolve.  Unknown names raise ``ValueError``
    listing the canonical choices.
    """
    profile = PROFILES.get(name)
    if profile is not None:
        return profile
    folded = name.lower().replace("-", "").replace("_", "")
    for key, candidate in PROFILES.items():
        if key.replace("_", "") == folded:
            return candidate
    raise ValueError(
        f"unknown profile {name!r}; choose from {sorted(PROFILES)}"
    )
