"""The barrier experiment runner (the paper's measurement loop, §8).

Mirrors the paper's methodology: the processes execute consecutive
barrier operations; a warm-up prefix is discarded; the latency is the
average over the timed iterations.  Node order is randomly permuted by
default ("to avoid any possible impact from the network topology and
the allocation of nodes, our tests were performed with random
permutation of the nodes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.builder import MyrinetCluster, QuadricsCluster
from repro.collectives import (
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    ProcessGroup,
    QuadricsChainedBarrier,
    host_barrier,
    nic_barrier,
    prearm_chained_group,
)
from repro.quadrics import elan_gsync, elan_hgsync
from repro.sim import DeterministicRng

MYRINET_BARRIERS = ("host", "nic-direct", "nic-collective")
QUADRICS_BARRIERS = ("gsync", "hgsync", "nic-chained")


@dataclass
class BarrierResult:
    """Outcome of one barrier experiment (one point on a paper figure)."""

    profile: str
    barrier: str
    algorithm: str
    nodes: int
    iterations: int
    warmup: int
    mean_latency_us: float
    min_iteration_us: float
    max_iteration_us: float
    total_us: float
    node_permutation: tuple[int, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    # When each timed iteration's last rank exited its barrier, plus the
    # timed-region start: the windows the trace tools decompose.
    timed_start_us: float = 0.0
    iteration_ends_us: tuple[float, ...] = ()

    def iteration_window(self, index: int = -1) -> tuple[float, float]:
        """The ``[start, end]`` sim-time window of one timed iteration."""
        ends = (self.timed_start_us, *self.iteration_ends_us)
        if not self.iteration_ends_us:
            raise ValueError("no timed iterations recorded")
        index = range(len(self.iteration_ends_us))[index]  # normalize
        return ends[index], ends[index + 1]

    def __str__(self) -> str:
        return (
            f"{self.profile}/{self.barrier}/{self.algorithm} "
            f"N={self.nodes}: {self.mean_latency_us:.2f}us "
            f"({self.iterations} iters)"
        )


class _IterationTracker:
    """Records when each iteration's last rank exits its barrier."""

    def __init__(self, cluster, n_ranks: int, total_iters: int, warmup: int):
        self.cluster = cluster
        self.n_ranks = n_ranks
        self.warmup = warmup
        self.pending = [n_ranks] * total_iters
        self.iter_end = [0.0] * total_iters
        self.timed_start: Optional[float] = None
        self.counter_base: dict[str, int] = {}

    def rank_done(self, seq: int) -> None:
        self.pending[seq] -= 1
        if self.pending[seq] == 0:
            now = self.cluster.sim.now
            self.iter_end[seq] = now
            tracer = self.cluster.tracer
            if tracer.enabled:
                start = self.iter_end[seq - 1] if seq > 0 else 0.0
                tracer.add_span(start, now, "run", f"barrier[{seq}]", seq=seq)
            if seq == self.warmup - 1:
                self.timed_start = now
                self.counter_base = tracer.snapshot()


def _barrier_step(
    cluster,
    kind: str,
    group: ProcessGroup,
    drivers,
    hw,
    node: int,
    seq: int,
    hw_fallback: bool = True,
):
    """One barrier call at one node, by experiment kind."""
    if kind == "host":
        yield from host_barrier(cluster.ports[node], group, seq)
    elif kind in ("nic-direct", "nic-collective"):
        yield from nic_barrier(cluster.ports[node], group, seq)
    elif kind == "gsync":
        yield from elan_gsync(cluster.ports[node], group.node_ids, seq)
    elif kind == "hgsync":
        yield from elan_hgsync(
            cluster.ports[node], hw, group.node_ids, seq, fallback=hw_fallback
        )
    elif kind == "nic-chained":
        yield from drivers[node].barrier(seq)
    else:  # pragma: no cover - guarded earlier
        raise ValueError(kind)


def _setup_scheme(cluster, barrier: str, group: ProcessGroup):
    """Instantiate the per-scheme machinery (engines / drivers / HW
    barrier) for one experiment; returns ``(drivers, hw)`` for
    :func:`_barrier_step`."""
    drivers = None
    hw = None
    if barrier == "nic-collective":
        for rank, node in enumerate(group.node_ids):
            NicCollectiveBarrierEngine(cluster.nics[node], group, rank)
    elif barrier == "nic-direct":
        for rank, node in enumerate(group.node_ids):
            NicDirectBarrierEngine(cluster.nics[node], group, rank)
    elif barrier == "nic-chained":
        drivers = {
            node: QuadricsChainedBarrier(cluster.ports[node], group)
            for node in group.node_ids
        }
    elif barrier == "hgsync":
        hw = cluster.hardware_barrier(group.node_ids)
    return drivers, hw


def run_barrier_experiment(
    cluster,
    barrier: str,
    algorithm: str = "dissemination",
    iterations: int = 200,
    warmup: int = 30,
    permute_nodes: bool = True,
    seed: int = 0,
    nodes: Optional[int] = None,
) -> BarrierResult:
    """Run consecutive barriers and measure the average latency.

    Parameters mirror the paper's loop: ``warmup`` discarded
    iterations, then ``iterations`` timed ones.  ``nodes`` restricts
    the barrier to the first N nodes of the cluster (after
    permutation), letting one cluster serve a whole sweep.
    """
    if isinstance(cluster, MyrinetCluster):
        valid = MYRINET_BARRIERS
    elif isinstance(cluster, QuadricsCluster):
        valid = QUADRICS_BARRIERS
    else:
        raise TypeError(f"not a cluster: {cluster!r}")
    if barrier not in valid:
        raise ValueError(f"barrier {barrier!r} invalid for this cluster; use {valid}")
    if warmup < 1:
        raise ValueError("need at least one warm-up iteration")
    if iterations < 1:
        raise ValueError("need at least one timed iteration")

    n = cluster.n if nodes is None else nodes
    if not 1 < n <= cluster.n:
        raise ValueError(f"nodes must be in [2, {cluster.n}], got {n}")

    rng = DeterministicRng(seed, f"runner/{cluster.profile.name}/{barrier}/{n}")
    order = rng.permutation(cluster.n)[:n] if permute_nodes else list(range(n))
    group = ProcessGroup(
        order,
        algorithm=algorithm,
        id_allocator=getattr(cluster, "group_ids", None),
    )

    drivers, hw = _setup_scheme(cluster, barrier, group)

    total = warmup + iterations
    if drivers is not None and not getattr(cluster, "reference", False):
        # Homogeneous-phase batching: arm every iteration's chain for
        # all ranks in one setup pass (bit-identical whenever it
        # applies; see prearm_chained_group).  Reference clusters keep
        # the per-iteration arm loop for the equivalence tests.
        prearm_chained_group(drivers, total)
    tracker = _IterationTracker(cluster, n, total, warmup)

    def program(node: int):
        for seq in range(total):
            yield from _barrier_step(cluster, barrier, group, drivers, hw, node, seq)
            tracker.rank_done(seq)

    procs = [
        cluster.sim.process(program(node), name=f"bench@{node}")
        for node in group.node_ids
    ]
    cluster.sim.run()
    for proc in procs:
        if not proc.completion.processed:
            raise RuntimeError(f"{proc.name} never finished its barriers")

    timed = tracker.iter_end[warmup:]
    assert tracker.timed_start is not None
    durations = [
        timed[0] - tracker.timed_start,
        *(b - a for a, b in zip(timed, timed[1:])),
    ]
    mean = (timed[-1] - tracker.timed_start) / iterations
    return BarrierResult(
        profile=cluster.profile.name,
        barrier=barrier,
        algorithm=algorithm,
        nodes=n,
        iterations=iterations,
        warmup=warmup,
        mean_latency_us=mean,
        min_iteration_us=min(durations),
        max_iteration_us=max(durations),
        total_us=timed[-1] - tracker.timed_start,
        node_permutation=tuple(order),
        counters=cluster.tracer.delta(tracker.counter_base),
        timed_start_us=tracker.timed_start,
        iteration_ends_us=tuple(timed),
    )
