"""Assemble a simulated cluster from a hardware profile."""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.profiles import HardwareProfile, get_profile
from repro.collectives.group import GroupIdAllocator
from repro.host import HostCpu
from repro.myrinet import GmPort, LanaiNic
from repro.network import Fabric, FaultInjector
from repro.pci import PciBus
from repro.quadrics import Elan3Nic, ElanPort, HardwareBarrier
from repro.sim import Simulator, Tracer
from repro.topology import ClosTopology, QuaternaryFatTree


class _ClusterBase:
    """Shared plumbing: one simulator, fabric, and per-node host stack."""

    def __init__(
        self,
        profile: HardwareProfile,
        nodes: int,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
        sim: Optional[Simulator] = None,
        reference: bool = False,
    ):
        if nodes < 1:
            raise ValueError("cluster needs at least one node")
        if nodes > profile.max_nodes:
            raise ValueError(
                f"profile {profile.name} supports at most {profile.max_nodes} nodes"
            )
        self.profile = profile
        self.n = nodes
        # An injected simulator lets tooling substitute kernel variants
        # (e.g. simlint's tie-break perturbation simulator).
        self.sim = sim if sim is not None else Simulator()
        self.tracer = tracer or Tracer()
        self.faults = faults
        # Reference mode disables the structurally-proven fast paths
        # (fabric link elision, chained-barrier prearming) so the
        # equivalence tests can compare batched vs. unbatched runs
        # bit for bit.
        self.reference = reference
        # Per-cluster group-id source: ids depend only on the order
        # groups are created on *this* cluster, never on process
        # history (see GroupIdAllocator).
        self.group_ids = GroupIdAllocator()
        self.topology = self._make_topology(nodes)
        self.fabric = Fabric(
            self.sim, self.topology, profile.wire, tracer=self.tracer, faults=faults,
            reference=reference,
        )
        self.pcis = [
            PciBus(self.sim, profile.pci, name=f"pci{i}", tracer=self.tracer)
            for i in range(nodes)
        ]
        self.cpus = [
            HostCpu(self.sim, profile.host, node_id=i, tracer=self.tracer)
            for i in range(nodes)
        ]

    def _make_topology(self, nodes: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.profile.name} n={self.n}>"


class MyrinetCluster(_ClusterBase):
    """A Myrinet/GM cluster: LANai NICs + MCP + GM ports."""

    def __init__(self, profile, nodes, tracer=None, faults=None, sim=None,
                 reference=False):
        super().__init__(profile, nodes, tracer, faults, sim, reference)
        self.nics = [
            LanaiNic(
                self.sim, i, profile.gm, self.fabric, self.pcis[i], tracer=self.tracer
            )
            for i in range(nodes)
        ]
        self.ports = [
            GmPort(self.sim, i, self.nics[i], self.cpus[i], self.pcis[i])
            for i in range(nodes)
        ]

    def _make_topology(self, nodes: int):
        return ClosTopology(nodes, radix=16)


class QuadricsCluster(_ClusterBase):
    """A QsNet cluster: Elan3 NICs + Elanlib ports + Elite HW barrier."""

    def __init__(self, profile, nodes, tracer=None, faults=None, sim=None,
                 reference=False):
        super().__init__(profile, nodes, tracer, faults, sim, reference)
        self.nics = [
            Elan3Nic(
                self.sim, i, profile.elan, self.fabric, self.pcis[i], tracer=self.tracer
            )
            for i in range(nodes)
        ]
        self.ports = [
            ElanPort(self.sim, i, self.nics[i], self.cpus[i], self.pcis[i])
            for i in range(nodes)
        ]

    def _make_topology(self, nodes: int):
        return QuaternaryFatTree(nodes)

    def hardware_barrier(self, ranks=None) -> HardwareBarrier:
        """The Elite test-and-set barrier over the given node set."""
        elan = self.profile.elan
        return HardwareBarrier(
            self.sim,
            self.topology,
            self.profile.wire,
            ranks if ranks is not None else range(self.n),
            t_flag_check_us=elan.t_hw_flag_check,
            retry_backoff_us=elan.hw_retry_backoff_us,
            tracer=self.tracer,
            max_rounds=elan.hw_max_rounds,
            backoff_factor=elan.hw_backoff_factor,
            backoff_cap_us=elan.hw_backoff_cap_us,
        )


# ----------------------------------------------------------------------
def _resolve(profile: Union[str, HardwareProfile]) -> HardwareProfile:
    return get_profile(profile) if isinstance(profile, str) else profile


def build_myrinet_cluster(
    profile: Union[str, HardwareProfile] = "lanai_xp_xeon2400",
    nodes: int = 8,
    tracer: Optional[Tracer] = None,
    faults: Optional[FaultInjector] = None,
    sim: Optional[Simulator] = None,
    reference: bool = False,
) -> MyrinetCluster:
    """Build a Myrinet cluster from a profile name or object."""
    resolved = _resolve(profile)
    if resolved.network != "myrinet":
        raise ValueError(f"profile {resolved.name} is not a Myrinet profile")
    return MyrinetCluster(resolved, nodes, tracer, faults, sim, reference)


def build_quadrics_cluster(
    profile: Union[str, HardwareProfile] = "elan3_piii700",
    nodes: int = 8,
    tracer: Optional[Tracer] = None,
    faults: Optional[FaultInjector] = None,
    sim: Optional[Simulator] = None,
    reference: bool = False,
) -> QuadricsCluster:
    """Build a Quadrics cluster from a profile name or object."""
    resolved = _resolve(profile)
    if resolved.network != "quadrics":
        raise ValueError(f"profile {resolved.name} is not a Quadrics profile")
    return QuadricsCluster(resolved, nodes, tracer, faults, sim, reference)


def build_cluster(
    profile: Union[str, HardwareProfile],
    nodes: int,
    tracer: Optional[Tracer] = None,
    faults: Optional[FaultInjector] = None,
    sim: Optional[Simulator] = None,
    reference: bool = False,
):
    """Build whichever cluster type the profile describes."""
    resolved = _resolve(profile)
    if resolved.network == "myrinet":
        return build_myrinet_cluster(resolved, nodes, tracer, faults, sim, reference)
    return build_quadrics_cluster(resolved, nodes, tracer, faults, sim, reference)
