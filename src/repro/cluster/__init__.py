"""Cluster assembly: hardware profiles, builders, experiment runner."""

from repro.cluster.profiles import PROFILES, HardwareProfile, get_profile
from repro.cluster.builder import (
    MyrinetCluster,
    QuadricsCluster,
    build_cluster,
    build_myrinet_cluster,
    build_quadrics_cluster,
)
from repro.cluster.runner import BarrierResult, run_barrier_experiment

__all__ = [
    "HardwareProfile",
    "PROFILES",
    "get_profile",
    "MyrinetCluster",
    "QuadricsCluster",
    "build_cluster",
    "build_myrinet_cluster",
    "build_quadrics_cluster",
    "BarrierResult",
    "run_barrier_experiment",
]
