"""Host CPU and host process model.

The host side of a barrier matters in two ways the paper measures:

- host-based barriers pay host send overhead, receive-queue polling and
  per-step software processing on *every* step;
- NIC-based barriers pay host cost only to start the barrier and to
  observe its completion.

The ratio of host CPU speed to NIC processor speed is what makes the
NIC offload win shrink on the 2.4 GHz Xeon cluster (paper §8.1) — the
profile constants carry that ratio.
"""

from repro.host.cpu import HostCpu, HostParams

__all__ = ["HostCpu", "HostParams"]
