"""Host processor model: per-operation software costs and polling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import ArbitratedResource, Simulator, Tracer


@dataclass(frozen=True)
class HostParams:
    """Host software costs (µs).

    ``send_overhead_us`` — building and posting one send descriptor
    (user-level library code, before the PIO doorbell).
    ``recv_overhead_us`` — consuming one receive event (buffer matching,
    callback dispatch).
    ``poll_us`` — one poll of the receive-event queue that finds nothing.
    ``poll_interval_us`` — gap between successive polls while waiting.
    ``barrier_call_us`` — fixed entry/exit software cost of the barrier
    library call itself.
    """

    send_overhead_us: float
    recv_overhead_us: float
    poll_us: float
    poll_interval_us: float
    barrier_call_us: float

    def __post_init__(self) -> None:
        for field_name in (
            "send_overhead_us",
            "recv_overhead_us",
            "poll_us",
            "poll_interval_us",
            "barrier_call_us",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


class HostCpu:
    """One node's host processor.

    A capacity-1 resource: host library code, polling loops and
    callbacks on the same node serialize (quad-SMP nodes ran one MPI
    process per node in the paper's tests, so one CPU per node is the
    faithful model).

    Same-instant compute requests from *different* processes (two jobs
    sharing the node in a multi-job workload) are arbitrated in
    canonical process-name order via :class:`ArbitratedResource` —
    plain FIFO granting would make the interleaving an event-heap race
    (simlint SL101).  With one process per node this is timing-identical
    to the plain resource: requests never contend.
    """

    def __init__(
        self,
        sim: Simulator,
        params: HostParams,
        node_id: int,
        name: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.name = name or f"host{node_id}"
        self.tracer = tracer or Tracer()
        self._cpu = ArbitratedResource(sim, capacity=1, name=f"{self.name}.cpu")
        self.busy_us = 0.0
        # Chaos-campaign host slowdown: every software cost on this node
        # is multiplied by this factor (1.0 = calibrated speed).  A slow
        # host is the paper's straggler scenario — it stretches barrier
        # skew without touching the network model.
        self.slowdown = 1.0

    def compute(self, us: float, label: Optional[str] = None):
        """Occupy the CPU for ``us`` microseconds (yield from a process).

        ``label`` names the software step on the host lane of a span
        timeline (e.g. ``barrier_call``, ``poll``); it costs nothing
        when tracing is disabled.
        """
        if us < 0:
            raise ValueError(f"negative compute time {us}")
        us = us * self.slowdown
        yield self._cpu.request()
        yield us
        self._cpu.release()
        self.busy_us += us
        tracer = self.tracer
        if tracer.enabled:
            now = self.sim.now
            tracer.add_span(now - us, now, self.name, label or "compute")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostCpu {self.name} busy={self.busy_us:.1f}us>"
