"""The paper's scalability model:

``T_barrier = T_init + (ceil(log2 N) - 1) * T_trig + T_adj``

where ``T_init`` is the two-node NIC-based barrier latency (each NIC
sends only the initial message), ``T_trig`` the time for each further
message a NIC triggers upon receiving an earlier one, and ``T_adj`` an
adjustment for secondary effects (reduced PCI traffic, bookkeeping).

The paper derives, "through mathematical analysis":

- Myrinet (2.4 GHz Xeon, LANai-XP):  ``3.60 + (ceil(log2 N)-1)*3.50 + 3.84``
- Quadrics (700 MHz, Elan3):         ``2.25 + (ceil(log2 N)-1)*2.32 - 1.00``

predicting 38.94 µs and 22.13 µs respectively at 1024 nodes.

Fitting: from latency measurements alone only the *slope* ``T_trig``
and the combined intercept ``T_init + T_adj`` are identifiable (both
are N-independent).  :func:`fit_barrier_model` therefore fits slope and
intercept by least squares and splits the intercept using a supplied
``t_init`` (by convention the measured N=2 latency, matching the
paper's definition), defaulting to the fitted intercept with
``t_adj = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _steps(n: int) -> int:
    """Dissemination steps for N ranks: ``ceil(log2 N)``."""
    if n < 2:
        raise ValueError(f"the model needs N >= 2, got {n}")
    return math.ceil(math.log2(n))


@dataclass(frozen=True)
class BarrierModel:
    """A fitted or paper-given (T_init, T_trig, T_adj) triple."""

    t_init: float
    t_trig: float
    t_adj: float
    name: str = "model"

    def predict(self, n: int) -> float:
        """Predicted barrier latency (µs) for an N-node cluster."""
        return self.t_init + (_steps(n) - 1) * self.t_trig + self.t_adj

    def predict_many(self, n_values: Sequence[int]) -> list[float]:
        return [self.predict(n) for n in n_values]

    @property
    def intercept(self) -> float:
        """The N-independent part, ``T_init + T_adj``."""
        return self.t_init + self.t_adj

    def __str__(self) -> str:
        sign = "+" if self.t_adj >= 0 else "-"
        return (
            f"T = {self.t_init:.2f} + (ceil(log2 N) - 1) * {self.t_trig:.2f} "
            f"{sign} {abs(self.t_adj):.2f}"
        )


#: §8.3's derived coefficients.
PAPER_MYRINET_XP = BarrierModel(3.60, 3.50, 3.84, name="paper-myrinet-lanai-xp")
PAPER_QUADRICS_ELAN3 = BarrierModel(2.25, 2.32, -1.00, name="paper-quadrics-elan3")


def fit_barrier_model(
    n_values: Sequence[int],
    latencies_us: Sequence[float],
    t_init: float | None = None,
    name: str = "fitted",
) -> BarrierModel:
    """Least-squares fit of the model to (N, latency) measurements.

    Parameters
    ----------
    n_values, latencies_us:
        Matched measurement arrays; at least two distinct step counts
        are needed to identify the slope.
    t_init:
        Optional known ``T_init`` (conventionally the N=2 latency) used
        to split the fitted intercept into ``T_init`` and ``T_adj``.
    """
    n_arr = list(n_values)
    y = np.asarray(latencies_us, dtype=float)
    if len(n_arr) != len(y):
        raise ValueError("n_values and latencies differ in length")
    if len(n_arr) < 2:
        raise ValueError("need at least two measurements")
    x = np.array([_steps(n) - 1 for n in n_arr], dtype=float)
    if len(set(x.tolist())) < 2:
        raise ValueError("need at least two distinct ceil(log2 N) step counts")
    design = np.column_stack([np.ones_like(x), x])
    (intercept, slope), *_ = np.linalg.lstsq(design, y, rcond=None)
    if t_init is None:
        return BarrierModel(float(intercept), float(slope), 0.0, name=name)
    return BarrierModel(
        float(t_init), float(slope), float(intercept - t_init), name=name
    )
