"""The paper's analytical barrier-latency model (§8.3) and fitting."""

from repro.model.analytical import (
    PAPER_MYRINET_XP,
    PAPER_QUADRICS_ELAN3,
    BarrierModel,
    fit_barrier_model,
)

__all__ = [
    "BarrierModel",
    "fit_barrier_model",
    "PAPER_MYRINET_XP",
    "PAPER_QUADRICS_ELAN3",
]
