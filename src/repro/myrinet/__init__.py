"""Myrinet: LANai NIC model + GM control program (MCP) + host GM API.

This models GM-2.0.3's architecture at the fidelity the paper reasons
about (§4.2):

Sending — the host posts a *send event* (PIO across PCI); the NIC
translates it into a *send token* appended to the per-destination send
queue; tokens to different destinations are serviced round-robin; a send
needs a *send packet* buffer from a finite pool; data is DMAed from host
memory into the packet; a per-packet *send record* (sequence number +
timestamp) is kept; unacknowledged packets are retransmitted on timeout.

Receiving — the host preposts receive buffers (receive tokens); the NIC
sequence-checks arriving packets (unexpected ⇒ dropped), DMAs payload to
host memory, generates a receive event for the host to poll, and returns
an ACK to the sender.

Every one of those steps runs as an explicit task on the (slow) LANai
processor, modeled as a capacity-1 resource — which is exactly the
processing the paper's collective protocol later bypasses.

Public pieces:

- :class:`~repro.myrinet.params.GmParams` — per-profile NIC task costs.
- :class:`~repro.myrinet.nic.LanaiNic` — NIC state + engine hooks.
- :class:`~repro.myrinet.mcp.ControlProgram` — the MCP processing loops.
- :class:`~repro.myrinet.gm_api.GmPort` — host-side GM API.
"""

from repro.myrinet.params import GmParams
from repro.myrinet.structures import RecvToken, SendRecord, SendToken
from repro.myrinet.nic import LanaiNic
from repro.myrinet.mcp import ControlProgram
from repro.myrinet.gm_api import GmPort, GmRecvEvent

__all__ = [
    "GmParams",
    "SendToken",
    "SendRecord",
    "RecvToken",
    "LanaiNic",
    "ControlProgram",
    "GmPort",
    "GmRecvEvent",
]
