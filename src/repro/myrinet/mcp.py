"""The Myrinet Control Program: the NIC's processing loops.

Five loops run concurrently on the (single) LANai processor, contending
for it through ``nic.cpu_task``:

- **SDMA loop** — host send events → send tokens → per-destination
  queues (§4.2 "the NIC translates the event to a send token, and
  appends it to the send queue for the desired destination").
- **Send scheduler** — round-robin over destination queues; for each
  token: wait for a send packet, DMA the data from host memory, build
  the packet, create the send record, inject (§4.2).
- **Receive loop** — sequence check (unexpected ⇒ drop), payload RDMA
  into a host receive buffer, receive event to host, ACK back to the
  sender; also dispatches barrier/collective packets to the registered
  engines.
- **Timeout loop** — retransmits packets whose send record timed out.
- **Engine command loop** — host barrier-start commands → engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network import Packet, PacketKind
from repro.myrinet.structures import SendRecord, SendToken
from repro.pci import DmaDirection

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.nic import LanaiNic


class ControlProgram:
    """Drives a :class:`~repro.myrinet.nic.LanaiNic`'s protocol loops."""

    def __init__(self, nic: "LanaiNic"):
        self.nic = nic
        sim = nic.sim
        sim.process(self._sdma_loop(), name=f"{nic.name}.sdma")
        sim.process(self._send_scheduler(), name=f"{nic.name}.sched")
        sim.process(self._rx_loop(), name=f"{nic.name}.rx")
        sim.process(self._timeout_loop(), name=f"{nic.name}.timeout")
        sim.process(self._engine_cmd_loop(), name=f"{nic.name}.engine")

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def _sdma_loop(self):
        nic = self.nic
        while True:
            token = yield nic.host_event_queue.get()
            yield from nic.cpu_task(nic.params.t_sdma_event, "sdma_event")
            nic.enqueue_send_token(token)

    def _send_scheduler(self):
        nic = self.nic
        while True:
            dst = yield nic.sched_work.get()
            nic.rr_ring.append(dst)
            while nic.rr_ring:
                # Fold in any destinations that got work meanwhile so the
                # rotation covers them this round.
                while True:
                    extra = nic.sched_work.try_get()
                    if extra is None:
                        break
                    nic.rr_ring.append(extra)
                dst = nic.rr_ring.popleft()
                queue = nic.send_queues[dst]
                yield from nic.cpu_task(nic.params.t_token_schedule, "token_schedule")
                token = queue.popleft()
                yield from self._transmit_token(token)
                if queue:
                    nic.rr_ring.append(dst)  # round-robin: go to the back
                else:
                    nic.pending_dsts.discard(dst)

    def _transmit_token(self, token: SendToken):
        """The per-packet p2p send path for one token."""
        nic = self.nic
        p = nic.params
        remaining = token.size_bytes
        while True:
            chunk = min(remaining, p.mtu_bytes)
            # Wait for a send packet buffer (held until the ACK arrives,
            # so a retransmission does not have to re-claim one).
            yield nic.packet_pool.request()
            yield from nic.cpu_task(p.t_packet_alloc, "packet_alloc")
            if token.notify_host:
                # Data lives in host memory: DMA it into the send packet.
                yield from nic.pci.dma(chunk, DmaDirection.HOST_TO_NIC)
            yield from nic.cpu_task(p.t_fill, "fill")
            seq = nic.next_seq[token.dst]
            nic.next_seq[token.dst] = seq + 1
            record = SendRecord(
                dst=token.dst,
                seq=seq,
                size_bytes=p.data_header_bytes + chunk,
                payload=token.payload,
                kind=token.kind,
                token=token,
                created_at=nic.sim.now,
            )
            nic.send_records[(token.dst, seq)] = record
            token.packets_outstanding += 1
            yield from nic.cpu_task(p.t_send_record, "send_record")
            nic.arm_record_timer(record)
            yield from nic.cpu_task(p.t_inject, "inject")
            nic.fabric.transmit(
                Packet(
                    src=nic.node_id,
                    dst=token.dst,
                    kind=token.kind,
                    size_bytes=record.size_bytes,
                    payload=token.payload,
                    seq=seq,
                )
            )
            remaining -= chunk
            if remaining <= 0:
                break
        token.all_packets_sent = True

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _rx_loop(self):
        nic = self.nic
        p = nic.params
        while True:
            packet = yield nic.rx_queue.get()
            yield from nic.cpu_task(p.t_rx_header, "rx_header")
            if packet.corrupted:
                # The CRC computed while the packet streamed in does not
                # match: discard silently.  The sender's timeout (p2p) or
                # the receiver's NACK timer (collective) recovers.
                nic.tracer.count("gm.rx_crc_drop")
                continue
            # Any clean packet is liveness evidence for its sender —
            # the failure detector piggybacks on protocol traffic and
            # only probes otherwise-silent links.
            nic.membership.observe_alive(packet.src, nic.sim.now)
            if packet.kind == PacketKind.DATA:
                yield from self._handle_data(packet)
            elif packet.kind == PacketKind.ACK:
                yield from self._handle_ack(packet)
            elif packet.kind == PacketKind.BARRIER:
                if packet.seq is not None:
                    # Direct scheme: the barrier message travelled the
                    # p2p path, so it gets the full reliability
                    # treatment (sequence check + ACK) before the
                    # engine sees it.
                    yield from self._handle_p2p_barrier(packet)
                else:
                    # Collective protocol: straight to the engine.
                    engine = nic.engine_for(packet.payload.group_id)
                    yield from engine.on_barrier_packet(packet)
            elif packet.kind == PacketKind.BCAST:
                engine = nic.engine_for(packet.payload.group_id)
                yield from engine.on_bcast_packet(packet)
            elif packet.kind == PacketKind.NACK:
                engine = nic.engine_for(packet.payload.group_id)
                yield from engine.on_nack(packet)
            elif packet.kind == PacketKind.HEARTBEAT:
                # Pure liveness probe; observe_alive above already
                # refreshed the sender's timestamp.
                nic.tracer.count("gm.heartbeat_rx")
            else:
                nic.tracer.count("gm.rx_unknown_kind")

    def _handle_data(self, packet: Packet):
        nic = self.nic
        p = nic.params
        expected = nic.expect_seq[packet.src]
        if packet.seq > expected:
            # Out of order: GM drops immediately; the sender retransmits.
            nic.tracer.count("gm.rx_unexpected")
            return
        if packet.seq < expected:
            # Duplicate of an already-delivered packet (its ACK was lost
            # or raced a timeout): re-ACK so the sender stops resending.
            nic.tracer.count("gm.rx_duplicate")
            yield from self._send_ack(packet)
            return
        if nic.recv_tokens_available <= 0:
            # No host receive buffer: drop; sender will retransmit.
            nic.tracer.count("gm.rx_no_token")
            return
        nic.recv_tokens_available -= 1
        nic.expect_seq[packet.src] = expected + 1
        payload_bytes = max(packet.size_bytes - p.data_header_bytes, 0)
        yield from nic.cpu_task(p.t_rdma_setup, "rdma_setup")
        yield from nic.pci.dma(payload_bytes, DmaDirection.NIC_TO_HOST)
        yield from nic.cpu_task(p.t_recv_event, "recv_event")
        from repro.myrinet.gm_api import GmRecvEvent

        yield from nic.notify_host(
            GmRecvEvent(src=packet.src, payload=packet.payload, size=payload_bytes)
        )
        yield from self._send_ack(packet)

    def _handle_p2p_barrier(self, packet: Packet):
        """Direct-scheme barrier message: p2p reliability, NIC consumption.

        Unlike host data, the payload never crosses the PCI bus — the
        NIC consumes it (that is the offload the prior work provides) —
        but the queueing/ACK overheads all still apply.
        """
        nic = self.nic
        expected = nic.expect_seq[packet.src]
        if packet.seq > expected:
            nic.tracer.count("gm.rx_unexpected")
            return
        if packet.seq < expected:
            nic.tracer.count("gm.rx_duplicate")
            yield from self._send_ack(packet)
            return
        nic.expect_seq[packet.src] = expected + 1
        yield from self._send_ack(packet)
        engine = nic.engine_for(packet.payload.group_id)
        yield from engine.on_barrier_packet(packet)

    def _send_ack(self, packet: Packet):
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_ack_gen, "ack_gen")
        nic.fabric.transmit(
            Packet(
                src=nic.node_id,
                dst=packet.src,
                kind=PacketKind.ACK,
                size_bytes=nic.params.ack_bytes,
                payload=None,
                seq=packet.seq,
            )
        )

    def _handle_ack(self, packet: Packet):
        nic = self.nic
        p = nic.params
        record = nic.send_records.pop((packet.src, packet.seq), None)
        if record is None or record.acked:
            nic.tracer.count("gm.ack_stale")
            return
        record.acked = True
        record.cancel_timer()
        nic.packet_pool.release()
        yield from nic.cpu_task(p.t_ack_process, "ack_process")
        token = record.token
        token.packets_outstanding -= 1
        if (
            token.packets_outstanding == 0
            and token.all_packets_sent
            and token.notify_host
        ):
            yield from nic.cpu_task(p.t_token_complete, "token_complete")
            if token.completion is not None:
                yield from nic.notify_host(token)
            # (Without a completion event the token is recycled silently.)

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------
    def _timeout_loop(self):
        nic = self.nic
        p = nic.params
        while True:
            record = yield nic.timeout_queue.get()
            if record.acked or record.abandoned:
                continue
            if record.retransmits >= p.max_retries:
                # GM declares the connection dead after the retry
                # budget; the record is abandoned (and the simulation
                # is guaranteed to drain).  The packet buffer and the
                # token's outstanding count are released like on an ACK
                # — otherwise a dead peer permanently leaks pool slots
                # and later sends to healthy peers starve.  The token's
                # host completion (if any) is deliberately left
                # untriggered: the send did fail.
                nic.tracer.count("gm.peer_dead")
                nic.membership.declare_dead(
                    record.dst,
                    nic.sim.now,
                    "retry-exhaustion",
                    detail=f"p2p seq {record.seq} kind {record.kind}",
                )
                record.abandoned = True
                nic.send_records.pop((record.dst, record.seq), None)
                nic.packet_pool.release()
                record.token.packets_outstanding -= 1
                payload = record.payload
                group_id = getattr(payload, "group_id", None)
                if (
                    record.kind == PacketKind.BARRIER
                    and group_id in nic.engines
                ):
                    # Direct-scheme barrier message: escalate to the
                    # engine so the barrier fails up to the host instead
                    # of silently missing one peer.
                    nic.post_engine_command((group_id, "peer-dead", payload.seq))
                continue
            record.retransmits += 1
            nic.tracer.count("gm.retransmit")
            yield from nic.cpu_task(p.t_retransmit, "retransmit")
            if record.abandoned:
                # Torn down (NIC restart) while we waited for the CPU:
                # re-arming would leak a timer for a dead record.
                continue
            nic.arm_record_timer(record)
            yield from nic.cpu_task(p.t_inject, "inject")
            nic.fabric.transmit(
                Packet(
                    src=nic.node_id,
                    dst=record.dst,
                    kind=record.kind,
                    size_bytes=record.size_bytes,
                    payload=record.payload,
                    seq=record.seq,
                )
            )

    # ------------------------------------------------------------------
    # Failure detector (started by nic.enable_failure_detector)
    # ------------------------------------------------------------------
    def heartbeat_loop(self, peers, period_us, timeout_us, horizon_us, offset_us):
        """The heartbeat/suspicion loop (bounded: exits at the horizon).

        Each period: any watched peer silent for longer than the
        suspicion timeout is declared dead (a typed ``PeerDead`` verdict
        in ``nic.membership``); any peer this NIC has not *transmitted*
        to within one period gets a probe.  Outgoing protocol traffic
        suppresses probes — every packet this NIC sends is a free
        heartbeat from the peer's point of view (their receive loop's
        ``observe_alive``) — so a busy link never carries one.  The
        send decision must key on the TX gap, not on receive evidence:
        suppressing my beat because I recently *heard* the peer would
        let their regular beats silence mine, and they would then
        convict me for the silence.  The loop's only randomness is the
        seeded phase ``offset_us``.
        """
        nic = self.nic
        sim = nic.sim
        p = nic.params
        membership = nic.membership
        start = sim.now
        if offset_us > 0:
            yield offset_us
        while sim.now < horizon_us:
            if getattr(nic, "crashed", False):
                yield period_us
                continue
            for peer in peers:
                if membership.is_dead(peer):
                    continue
                silent = membership.silent_for(peer, sim.now, start)
                if silent > timeout_us:
                    verdict = membership.declare_dead(
                        peer,
                        sim.now,
                        "heartbeat-timeout",
                        detail=f"silent {silent:.1f}us > {timeout_us:.1f}us",
                    )
                    if verdict is not None:
                        nic.tracer.count("gm.peer_dead_hb")
                    continue
                sent_gap = sim.now - membership.last_sent.get(peer, start)
                if sent_gap >= period_us:
                    yield from nic.cpu_task(p.t_inject, "hb_inject")
                    nic.fabric.transmit(
                        Packet(
                            src=nic.node_id,
                            dst=peer,
                            kind=PacketKind.HEARTBEAT,
                            size_bytes=p.heartbeat_bytes,
                            payload=None,
                        )
                    )
                    nic.tracer.count("gm.heartbeat_tx")
            yield period_us

    # ------------------------------------------------------------------
    # Collective engines
    # ------------------------------------------------------------------
    def _engine_cmd_loop(self):
        nic = self.nic
        while True:
            command = yield nic.engine_cmd_queue.get()
            engine = nic.engine_for(command[0])
            yield from engine.on_command(command[1:])
