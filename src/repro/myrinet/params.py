"""GM / LANai timing and sizing constants.

All times in microseconds.  The constants are calibrated per hardware
profile (see :mod:`repro.cluster.profiles`) so that the simulated
end-to-end barrier latencies land on the paper's anchors; the *relative*
structure (which steps exist on which path) is fixed by the protocol
implementation, not by these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class GmParams:
    """LANai control-program task costs and protocol sizing.

    Point-to-point path (all on the NIC processor):

    - ``t_sdma_event`` — fetch + parse one host send event, build the
      send token and append it to the destination queue.
    - ``t_token_schedule`` — round-robin queue scan + token dispatch.
    - ``t_packet_alloc`` — claim a send packet buffer from the pool.
    - ``t_fill`` — build the packet header / program the SDMA of data
      (the data DMA itself is a PCI transaction, priced by the bus).
    - ``t_inject`` — hand a ready packet to the wire.
    - ``t_send_record`` — create the per-packet send record + timestamp.
    - ``t_rx_header`` — parse an arriving packet, sequence check.
    - ``t_rdma_setup`` — set up the payload RDMA into a host buffer.
    - ``t_recv_event`` — build + DMA the receive event to the host.
    - ``t_ack_gen`` — generate an ACK into the static ACK packet.
    - ``t_ack_process`` — match an ACK to its send record, clear it.
    - ``t_token_complete`` — pass a completed send token back to host.
    - ``t_retransmit`` — requeue a timed-out packet.

    Collective protocol path (the paper's §3 / §6):

    - ``t_coll_start`` — process the host's barrier-start event (the
      group's token is already at the front of its dedicated queue).
    - ``t_coll_trigger`` — handle an arrived barrier packet: update the
      bit vector in the group's single send record and, if the schedule
      says so, fire the next barrier message from the static packet.
    - ``t_coll_complete`` — barrier done: DMA the completion event.
    - ``t_nack_gen`` / ``t_nack_process`` — receiver-driven reliability.

    Reliability:

    - ``ack_timeout_us`` — sender-side retransmission timeout (p2p),
      the *base* interval of an exponential backoff.
    - ``nack_timeout_us`` — receiver-side missing-message timeout
      (collective protocol), likewise the backoff base.
    - ``backoff_factor`` — per-retry timeout multiplier (GM-style
      adaptive retransmission; 1.0 restores fixed intervals).
    - ``backoff_cap_factor`` — the backoff saturates at
      ``base * backoff_cap_factor`` so a long outage retries at a
      bounded cadence.
    - ``max_retries`` / ``nack_max_rounds`` — retry budgets; exhausting
      one escalates a typed failure instead of retrying forever.
      Clean runs never retransmit, so the backoff fields cannot move
      the calibrated latency anchors.

    Sizing:

    - ``data_header_bytes`` — GM data packet header.
    - ``ack_bytes`` — the static ACK packet.
    - ``barrier_payload_bytes`` — "all the information a barrier message
      needs to carry along is an integer" (§3): the pad added to the
      static ACK packet.
    - ``send_packet_count`` — send packet pool size per NIC.
    - ``recv_token_count`` — receive buffers the host preposts.
    - ``recv_event_bytes`` — the completion/receive event record the
      NIC DMAs into the host's event queue.
    - ``coll_archive_depth`` — completed collective payload sets each
      engine retains in SRAM to answer stale NACKs (pruned FIFO).
    """

    t_sdma_event: float
    t_token_schedule: float
    t_packet_alloc: float
    t_fill: float
    t_inject: float
    t_send_record: float
    t_rx_header: float
    t_rdma_setup: float
    t_recv_event: float
    t_ack_gen: float
    t_ack_process: float
    t_token_complete: float
    t_retransmit: float
    t_coll_start: float
    t_coll_trigger: float
    t_coll_complete: float
    t_nack_gen: float
    t_nack_process: float
    ack_timeout_us: float
    nack_timeout_us: float
    #: retries before a sender/receiver declares the peer dead (GM
    #: drops the connection after a retry budget; this also guarantees
    #: simulations terminate even if a protocol stalls permanently).
    max_retries: int = 100
    #: receiver-side NACK rounds before the collective engine fails the
    #: barrier (separate budget: a NACK round covers many messages).
    nack_max_rounds: int = 100
    #: exponential backoff multiplier per retry; 1.0 = fixed interval.
    backoff_factor: float = 2.0
    #: the backed-off interval saturates at ``base * backoff_cap_factor``.
    backoff_cap_factor: float = 8.0
    data_header_bytes: int = 16
    ack_bytes: int = 8
    barrier_payload_bytes: int = 4
    send_packet_count: int = 8
    recv_token_count: int = 64
    mtu_bytes: int = 4096
    recv_event_bytes: int = 16
    coll_archive_depth: int = 8
    #: failure-detector heartbeat period; 0 disables the detector (the
    #: default — clean runs carry no probe traffic and stay bit-exact).
    heartbeat_period_us: float = 0.0
    #: silence longer than this declares the peer dead.  0 derives
    #: ``3 * heartbeat_period_us`` at detector start.
    heartbeat_timeout_us: float = 0.0
    #: the detector loop exits at this sim time so the event heap always
    #: drains; 0 derives ``64 * heartbeat_period_us``.
    heartbeat_horizon_us: float = 0.0
    #: a heartbeat probe is the static ACK packet.
    heartbeat_bytes: int = 8

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.startswith(("t_", "ack_timeout", "nack_timeout")):
                if value < 0:
                    raise ValueError(f"{f.name} must be non-negative, got {value}")
        if self.send_packet_count < 1:
            raise ValueError("need at least one send packet")
        if self.recv_token_count < 1:
            raise ValueError("need at least one receive token")
        if self.mtu_bytes < 64:
            raise ValueError("unrealistically small MTU")
        if self.recv_event_bytes < 1:
            raise ValueError("receive events must have positive size")
        if self.coll_archive_depth < 1:
            raise ValueError("need at least one archived collective payload")
        if self.ack_timeout_us <= 0 or self.nack_timeout_us <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 1:
            raise ValueError("need at least one retry")
        if self.nack_max_rounds < 1:
            raise ValueError("need at least one NACK round")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.backoff_cap_factor < 1.0:
            raise ValueError("backoff_cap_factor must be >= 1.0")
        if (
            self.heartbeat_period_us < 0
            or self.heartbeat_timeout_us < 0
            or self.heartbeat_horizon_us < 0
        ):
            raise ValueError("heartbeat intervals must be non-negative")
        if self.heartbeat_bytes < 1:
            raise ValueError("heartbeat packets must have positive size")

    @property
    def barrier_packet_bytes(self) -> int:
        """The padded static ACK packet used for barrier messages (§6.2)."""
        return self.ack_bytes + self.barrier_payload_bytes

    def _backoff(self, base_us: float, attempt: int) -> float:
        interval = base_us * self.backoff_factor**attempt
        return min(interval, base_us * self.backoff_cap_factor)

    def ack_backoff_us(self, retransmits: int) -> float:
        """The ACK-timeout interval after ``retransmits`` retries."""
        return self._backoff(self.ack_timeout_us, retransmits)

    def nack_backoff_us(self, rounds: int) -> float:
        """The NACK-timer interval after ``rounds`` NACK rounds."""
        return self._backoff(self.nack_timeout_us, rounds)

    @property
    def p2p_exhaustion_us(self) -> float:
        """Worst-case time from first injection to the sender declaring
        the peer dead (the sum of every backed-off timeout interval)."""
        return sum(self.ack_backoff_us(i) for i in range(self.max_retries + 1))

    @property
    def direct_barrier_deadline_us(self) -> float:
        """Receiver-side watchdog for the direct (ACK-based) scheme.

        The direct scheme has no receiver-driven reliability, so a rank
        whose expected message died with its sender would wait forever.
        The deadline is the sender-side exhaustion horizon plus one full
        capped interval of slack — orders of magnitude above any clean
        barrier, so it only ever fires after a genuine peer death.
        """
        return self.p2p_exhaustion_us + self._backoff(self.ack_timeout_us, self.max_retries)
