"""LANai NIC state: processor, queues, pools, connection state.

The NIC processor is a capacity-1 resource; *every* control-program task
(and every collective-engine task) runs through :meth:`LanaiNic.cpu_task`,
so processing serializes exactly as on the real single-core LANai.  The
processing *loops* that consume the queues live in
:class:`repro.myrinet.mcp.ControlProgram`.

Collective/barrier engines (the paper's contribution, and the prior-work
direct scheme) plug in via :meth:`register_engine`; the MCP's receive
loop dispatches ``BARRIER``/collective-``NACK`` packets to them, and the
engine command loop feeds them host commands.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Optional

from repro.network import Fabric, Packet, PacketKind
from repro.myrinet.params import GmParams
from repro.myrinet.structures import SendRecord, SendToken
from repro.pci import DmaDirection, PciBus
from repro.sim import ArbitratedResource, PriorityStore, Resource, Simulator, Store, Tracer

#: The MCP main loop's polling priority over its work sources: receive
#: DMA first (the wormhole fabric backpressures until rx drains), then
#: expired retransmission timers, then host send events, then the send
#: scheduler, then collective-engine commands.  Same-instant contention
#: for the LANai among the five service loops resolves in this order —
#: a fixed hardware property, not event-scheduling luck (simlint SL101).
_MCP_LOOP_PRIORITY = {
    "rx": 0,
    "timeout": 1,
    "sdma": 2,
    "sched": 3,
    "engine": 4,
    # The failure detector's probe loop runs at the lowest priority:
    # heartbeats ride whatever LANai cycles the protocol loops leave.
    "hb": 5,
}


def _cpu_arbitration_key(process_name: str) -> tuple:
    loop = process_name.rsplit(".", 1)[-1]
    return (_MCP_LOOP_PRIORITY.get(loop, len(_MCP_LOOP_PRIORITY)), process_name)


class LanaiNic:
    """One Myrinet NIC: LANai processor + SRAM-resident protocol state."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: GmParams,
        fabric: Fabric,
        pci: PciBus,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric = fabric
        self.pci = pci
        self.tracer = tracer or Tracer()
        self.name = f"lanai{node_id}"

        # The LANai processor.  Arbitrated: same-instant task requests
        # from different MCP loops grant in _MCP_LOOP_PRIORITY order.
        self.cpu = ArbitratedResource(
            sim, capacity=1, name=f"{self.name}.cpu", key_fn=_cpu_arbitration_key
        )
        self.busy_us = 0.0
        self._cpu_lane = f"{self.name}.cpu"

        # Host -> NIC work (arrive after the host's PIO doorbell).
        self.host_event_queue = Store(sim, name=f"{self.name}.host_events")
        self.engine_cmd_queue = PriorityStore(sim, name=f"{self.name}.engine_cmds")

        # Wire -> NIC.  Same-cycle arrivals are presented in port order
        # (src, then protocol ids), not event-heap insertion order: the
        # real LANai's receive DMA arbitrates deterministically, and the
        # model must not let scheduler tie-breaking pick the service
        # order (simlint SL101 catches exactly that divergence).
        self.rx_queue = PriorityStore(sim, name=f"{self.name}.rx")

        # P2P send path state.
        self.send_queues: dict[int, deque[SendToken]] = defaultdict(deque)
        self.sched_work = Store(sim, name=f"{self.name}.sched")
        self.pending_dsts: set[int] = set()
        self.rr_ring: deque[int] = deque()
        self.packet_pool = Resource(
            sim, capacity=params.send_packet_count, name=f"{self.name}.pktpool"
        )

        # Reliability state.
        self.send_records: dict[tuple[int, int], SendRecord] = {}
        self.timeout_queue = PriorityStore(sim, name=f"{self.name}.timeouts")
        self.next_seq: dict[int, int] = defaultdict(int)
        self.expect_seq: dict[int, int] = defaultdict(int)

        # Receive side.
        self.recv_tokens_available = 0
        self.recv_event_queue = Store(sim, name=f"{self.name}.recv_events")

        # Collective / barrier engines by group id.
        self.engines: dict[int, Any] = {}

        # Failure detection: every received packet refreshes the
        # sender's liveness for free; the active heartbeat loop is
        # opt-in via enable_failure_detector.
        from repro.collectives.membership import MembershipView

        self.membership = MembershipView(node_id)
        self.crashed = False

        fabric.attach(node_id, self._on_wire_packet)

        # Start the control program loops.
        from repro.myrinet.mcp import ControlProgram

        self.mcp = ControlProgram(self)

    # ------------------------------------------------------------------
    # NIC processor
    # ------------------------------------------------------------------
    def cpu_task(self, cost: float, label: Optional[str] = None):
        """Run one control-program task of ``cost`` µs on the LANai.

        ``label`` names the protocol step on the NIC lane of a span
        timeline; it costs nothing when tracing is disabled.
        """
        yield self.cpu.request()
        yield cost
        self.cpu.release()
        self.busy_us += cost
        tracer = self.tracer
        if tracer.enabled:
            now = self.sim.now
            tracer.add_span(now - cost, now, self._cpu_lane, label or "task")

    # ------------------------------------------------------------------
    # Host-facing entry points (called from host-side code)
    # ------------------------------------------------------------------
    def post_send_event(self, token: SendToken) -> None:
        """A host send event has crossed the PCI bus."""
        self.host_event_queue.put(token)

    def post_engine_command(self, command: tuple) -> None:
        """A host command for a collective engine crossed the bus.

        Same-instant commands (e.g. a NACK-timer pop racing a host
        start) are ordered by ``(group, kind, seq)``, not by scheduler
        tie-breaking.
        """
        self.engine_cmd_queue.put_item(
            command, (self.sim.now, command[0], command[1], command[2])
        )

    def provide_recv_tokens(self, count: int = 1) -> None:
        self.recv_tokens_available += count

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def register_engine(self, group_id: int, engine: Any) -> None:
        if group_id in self.engines:
            raise ValueError(f"group {group_id} already has an engine on {self.name}")
        self.engines[group_id] = engine

    def engine_for(self, group_id: int) -> Any:
        engine = self.engines.get(group_id)
        if engine is None:
            raise KeyError(f"no engine for group {group_id} on {self.name}")
        return engine

    # ------------------------------------------------------------------
    # Failure detector
    # ------------------------------------------------------------------
    def enable_failure_detector(
        self,
        peers,
        rng=None,
        period_us: float = 0.0,
        timeout_us: float = 0.0,
        horizon_us: float = 0.0,
    ) -> None:
        """Start the heartbeat/suspicion loop watching ``peers``.

        Off by default — parameters fall back to ``GmParams`` and the
        loop refuses to start with a zero period, so clean runs carry no
        probe traffic.  ``rng`` (a ``DeterministicRng``) seeds the
        per-node phase offset; without one the offset is zero.  The loop
        exits at the horizon so the event heap always drains.
        """
        params = self.params
        period = period_us or params.heartbeat_period_us
        if period <= 0:
            raise ValueError("failure detector needs a positive heartbeat period")
        timeout = timeout_us or params.heartbeat_timeout_us or 3.0 * period
        horizon = horizon_us or params.heartbeat_horizon_us or 64.0 * period
        offset = 0.0
        if rng is not None:
            offset = rng.substream(f"hb/{self.node_id}").uniform(0.0, period)
        watched = tuple(sorted(p for p in peers if p != self.node_id))
        # Every outgoing packet (any kind) proves this node's liveness
        # to its destination, so the beat decision keys on the TX gap.
        self.fabric.observe_tx(self.node_id, self.membership.observe_sent)
        self.sim.process(
            self.mcp.heartbeat_loop(watched, period, timeout, horizon, offset),
            name=f"{self.name}.hb",
        )

    # ------------------------------------------------------------------
    # Wire-facing
    # ------------------------------------------------------------------
    def _on_wire_packet(self, packet: Packet) -> None:
        self.rx_queue.put_item(packet, self._arrival_key(packet))

    def _arrival_key(self, packet: Packet) -> tuple:
        """Canonical receive-arbitration key: arrival time, then port
        order, then protocol identifiers (so two same-cycle packets from
        one source — e.g. an original and a NACKed retransmit for
        different phases — also order deterministically)."""
        payload = packet.payload
        return (
            self.sim.now,
            packet.src,
            packet.kind,
            packet.seq if packet.seq is not None else -1,
            getattr(payload, "seq", -1),
            getattr(payload, "phase", -1),
            getattr(payload, "requester", -1),
        )

    def fast_inject(self, dst: int, payload: Any, kind: str = PacketKind.BARRIER):
        """Collective-protocol send: the padded static packet (§6.2).

        No queue traversal, no packet allocation, no per-packet send
        record, no ACK — only the injection task and the wire.
        """
        yield from self.cpu_task(self.params.t_inject, "coll_inject")
        packet = Packet(
            src=self.node_id,
            dst=dst,
            kind=kind,
            size_bytes=self.params.barrier_packet_bytes,
            payload=payload,
        )
        self.fabric.transmit(packet)

    def coll_inject(self, dst: int, payload: Any, data_bytes: int):
        """Data-collective send: one injection on the collective fast
        path carrying ``data_bytes`` of payload behind the data header.

        The data-bearing sibling of :meth:`fast_inject` — same
        dedicated-queue dispatch (no p2p tokens/records/ACKs), but the
        packet is sized by the collective's data instead of the barrier
        pad.  Every engine send and NACK retransmission goes through
        here, so the wire-cost model lives in exactly one place.
        """
        yield from self.cpu_task(self.params.t_inject, "coll_inject")
        self.fabric.transmit(
            Packet(
                src=self.node_id,
                dst=dst,
                kind=PacketKind.BCAST,
                size_bytes=self.params.data_header_bytes + data_bytes,
                payload=payload,
            )
        )

    def send_nack(self, dst: int, payload: Any):
        """Receiver-driven reliability: request a retransmission (§6.3)."""
        yield from self.cpu_task(self.params.t_nack_gen, "nack_gen")
        packet = Packet(
            src=self.node_id,
            dst=dst,
            kind=PacketKind.NACK,
            size_bytes=self.params.ack_bytes,
            payload=payload,
        )
        self.tracer.count("coll.nack_sent")
        self.fabric.transmit(packet)

    def notify_host(self, event: Any):
        """DMA a completion/receive event into host memory."""
        yield from self.pci.dma(self.params.recv_event_bytes, DmaDirection.NIC_TO_HOST)
        self.recv_event_queue.put(event)

    # ------------------------------------------------------------------
    # P2P send path entry (from the SDMA loop or a NIC-resident engine)
    # ------------------------------------------------------------------
    def enqueue_send_token(self, token: SendToken) -> None:
        """Append a token to its destination queue; wake the scheduler.

        The caller has already paid the NIC CPU cost of building the
        token (``t_sdma_event`` on the host path).
        """
        token.enqueued_at = self.sim.now
        self.send_queues[token.dst].append(token)
        if token.dst not in self.pending_dsts:
            self.pending_dsts.add(token.dst)
            self.sched_work.put(token.dst)

    # ------------------------------------------------------------------
    # Reliability timers
    # ------------------------------------------------------------------
    def arm_record_timer(self, record: SendRecord) -> None:
        # Exponential backoff: each retry waits longer (capped), so a
        # transient outage is probed densely and a long one cheaply.
        record.timer = self.sim.schedule(
            self.params.ack_backoff_us(record.retransmits),
            self._on_record_timeout,
            record,
        )

    def _on_record_timeout(self, record: SendRecord) -> None:
        record.timer = None
        if not record.acked and not record.abandoned:
            # Timers armed at the same instant expire together; retry in
            # record-table order, not timer-heap tie-break order.
            self.timeout_queue.put_item(
                record, (self.sim.now, record.dst, record.seq)
            )

    # ------------------------------------------------------------------
    # Crash / restart (chaos campaign)
    # ------------------------------------------------------------------
    def schedule_crash(self, at_us: float, restart_delay_us: float) -> None:
        """Crash the control program at ``at_us``; restart after
        ``restart_delay_us``.

        The wire side of the crash (the NIC neither sends nor receives
        while down) is modeled by the fault injector's matching
        :meth:`~repro.network.faults.FaultInjector.crash_window` — the
        NIC side modeled here is the *volatile state loss*: at restart
        the LANai's SRAM-resident send records and collective engine
        states are gone, so every in-flight operation is abandoned (its
        resources released) and in-flight barriers are failed up to the
        host.  Host-memory-backed queues (send events, receive tokens)
        survive: the driver re-hands them to the restarted firmware.
        """
        if restart_delay_us <= 0:
            raise ValueError("restart_delay_us must be positive")
        self.crashed = False
        self.sim.schedule(at_us, self._crash)
        self.sim.schedule(at_us + restart_delay_us, self._restart)

    def _crash(self) -> None:
        self.crashed = True
        self.tracer.count("gm.nic_crash")

    def _restart(self) -> None:
        self.crashed = False
        self.tracer.count("gm.nic_restart")
        for key in sorted(self.send_records):
            record = self.send_records.pop(key)
            record.abandoned = True
            record.cancel_timer()
            self.packet_pool.release()
            record.token.packets_outstanding -= 1
            self.tracer.count("gm.crash_record_lost")
        for group_id in sorted(self.engines):
            handler = getattr(self.engines[group_id], "on_nic_restart", None)
            if handler is not None:
                self.sim.process(
                    handler(), name=f"{self.name}.engine_restart"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LanaiNic {self.name} busy={self.busy_us:.1f}us>"
