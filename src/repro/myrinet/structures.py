"""GM bookkeeping structures: tokens and send records."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import SimEvent

_token_ids = itertools.count()


@dataclass
class SendToken:
    """The NIC-side form of a send request.

    Host send events are translated into send tokens; NIC-initiated
    sends (the direct barrier scheme) create tokens directly.
    ``notify_host`` selects whether the completed token is passed back
    to the host (a PCI crossing) — true for host sends, false for
    NIC-originated barrier traffic.
    """

    dst: int
    size_bytes: int
    payload: Any = None
    kind: str = "data"
    notify_host: bool = True
    completion: Optional[SimEvent] = None
    token_id: int = field(default_factory=lambda: next(_token_ids))
    enqueued_at: Optional[float] = None
    # Per-packet reliability progress, maintained by the MCP send path.
    packets_outstanding: int = 0
    all_packets_sent: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")


@dataclass
class SendRecord:
    """Per-packet reliability state (p2p path).

    One record per transmitted packet: sequence number, creation
    timestamp, and the pending retransmission timer.  The collective
    protocol replaces *all* of these for a barrier with a single record
    holding a bit vector (see
    :class:`repro.collectives.protocol.CollectiveSendRecord`).
    """

    dst: int
    seq: int
    size_bytes: int
    payload: Any
    kind: str
    token: SendToken
    created_at: float
    timer: Any = None  # ScheduledCall handle
    retransmits: int = 0
    acked: bool = False
    # Set when the record is torn down without an ACK (retry budget
    # exhausted, NIC restart): in-flight timeout/retransmit work must
    # drop it instead of resurrecting it and double-releasing its
    # packet buffer.
    abandoned: bool = False

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


@dataclass
class RecvToken:
    """A host-posted receive buffer registration."""

    buffer_bytes: int = 4096
    token_id: int = field(default_factory=lambda: next(_token_ids))
