"""Host-side GM API: ports, sends, receive-event polling.

Mirrors the GM user-level interface shape the paper describes:
``gm_send_with_callback`` posts a send event across the PCI bus;
``gm_provide_receive_buffer`` preposts receive buffers; the host polls a
receive-event queue that the NIC DMAs events into.

Host costs (library overhead, polling) come from
:class:`repro.host.HostParams`; bus costs from :class:`repro.pci.PciBus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.host import HostCpu
from repro.myrinet.nic import LanaiNic
from repro.myrinet.structures import SendToken
from repro.network import PacketKind
from repro.pci import PciBus
from repro.sim import ArbitratedResource, SimEvent, Simulator


@dataclass(frozen=True)
class GmRecvEvent:
    """A receive event the NIC DMAed into host memory."""

    src: int
    payload: Any
    size: int


class GmPort:
    """One host process's GM port.

    All methods that consume time are generators — call them with
    ``yield from`` inside a host process.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        nic: LanaiNic,
        cpu: HostCpu,
        pci: PciBus,
    ):
        self.sim = sim
        self.node_id = node_id
        self.nic = nic
        self.cpu = cpu
        self.pci = pci
        self._pending: list[Any] = []  # events popped but not yet matched
        # Poller seat: at most one waiter sits on the NIC event queue;
        # co-waiters queue here.  Arbitrated, so which of two
        # same-instant waiters polls (and pays the poll-lag and poll
        # costs) is canonical, not event-heap order (SL101).
        self._poll_seat = ArbitratedResource(
            sim, 1, name=f"gm{node_id}.poll.seat"
        )
        # Prepost the configured number of receive buffers.
        nic.provide_recv_tokens(nic.params.recv_token_count)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        size_bytes: int,
        payload: Any = None,
        wait_completion: bool = False,
    ):
        """``gm_send_with_callback``: post a send event to the NIC.

        Returns (via generator return value) the token's completion
        event when ``wait_completion`` is requested, after blocking on
        it; otherwise returns immediately after the doorbell.
        """
        yield from self.cpu.compute(self.cpu.params.send_overhead_us, "send_overhead")
        completion: Optional[SimEvent] = None
        if wait_completion:
            completion = SimEvent(self.sim, name=f"send_done@{self.node_id}")
        token = SendToken(
            dst=dst,
            size_bytes=size_bytes,
            payload=payload,
            kind=PacketKind.DATA,
            notify_host=True,
            completion=completion,
        )
        yield from self.pci.pio_write()
        self.nic.post_send_event(token)
        if wait_completion:
            yield from self.recv_matching(
                lambda ev: isinstance(ev, SendToken) and ev is token
            )
        return token

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def provide_receive_buffer(self):
        """``gm_provide_receive_buffer``: repost one receive buffer."""
        yield from self.pci.pio_write()
        self.nic.provide_recv_tokens(1)

    def _next_event(self):
        """Pop the next host-visible event, modeling the polling loop.

        If an event is already queued the poll finds it immediately;
        otherwise the host blocks and discovers the event half a poll
        interval (the mean phase lag) after the NIC posts it.  An event
        posted at the very instant polling begins is caught by the first
        poll — charging the lag there would make the cost depend on
        put-vs-get scheduling order (simlint SL101).
        """
        params = self.cpu.params
        queue = self.nic.recv_event_queue
        if len(queue) > 0 and queue.getters_waiting == 0:
            event = queue.try_get()
        else:
            blocked_at = self.sim.now
            event = yield queue.get()
            if self.sim.now > blocked_at:
                yield params.poll_interval_us / 2.0
        yield from self.cpu.compute(params.poll_us, "poll")
        return event

    def _consume(self, event):
        """Pay the host costs of consuming one matched event."""
        yield from self.cpu.compute(
            self.cpu.params.recv_overhead_us, "recv_overhead"
        )
        if isinstance(event, GmRecvEvent):
            yield from self.provide_receive_buffer()

    def recv_matching(self, matches: Callable[[Any], bool]):
        """Block until an event satisfying ``matches`` arrives.

        Non-matching events are buffered and re-offered on later calls
        (barrier messages from a future iteration can arrive early).
        Consuming a data receive event pays the host receive overhead
        and reposts the receive buffer.

        Multiple waiters may block on one port concurrently (two jobs
        sharing a node each park a collective wait here).  Only the
        *seat holder* sits on the NIC event queue; co-waiters queue on
        the seat.  Whenever the holder pops an event it does not want,
        it buffers the event and releases the seat, so the next waiter
        (in canonical order) re-scans the buffer and takes over
        polling.  Without this hand-off the queue's FIFO getter order
        can deliver waiter B's event to waiter A, which buffers it
        while B stays blocked forever.  The seat is arbitrated: which
        of two same-instant waiters polls — and therefore pays the
        poll-lag and poll costs — must not depend on event-heap pop
        order (simlint SL101).
        """
        while True:
            for i, ev in enumerate(self._pending):
                if matches(ev):
                    self._pending.pop(i)
                    yield from self._consume(ev)
                    return ev
            yield self._poll_seat.request()
            # The buffer may have grown while we queued for the seat.
            matched = None
            for i, ev in enumerate(self._pending):
                if matches(ev):
                    matched = self._pending.pop(i)
                    break
            if matched is not None:
                self._poll_seat.release()
                yield from self._consume(matched)
                return matched
            event = yield from self._next_event()
            self._poll_seat.release()
            if isinstance(event, SendToken) and event.completion is not None:
                if not event.completion.triggered:
                    event.completion.succeed(event)
            if matches(event):
                yield from self._consume(event)
                return event
            self._pending.append(event)

    def poll_matching(self, matches: Callable[[Any], bool]):
        """One non-blocking poll for an event satisfying ``matches``.

        Drains whatever the NIC has already posted (paying the poll
        cost once), then returns the matching event or ``None`` —
        never blocks.  Non-matching events are buffered exactly as in
        :meth:`recv_matching`; this is the ``test`` half of the
        non-blocking collective requests.
        """
        params = self.cpu.params
        queue = self.nic.recv_event_queue
        yield from self.cpu.compute(params.poll_us, "poll")
        while len(queue) > 0 and queue.getters_waiting == 0:
            ev = queue.try_get()
            if isinstance(ev, SendToken) and ev.completion is not None:
                if not ev.completion.triggered:
                    ev.completion.succeed(ev)
            self._pending.append(ev)
        for i, ev in enumerate(self._pending):
            if matches(ev):
                self._pending.pop(i)
                yield from self.cpu.compute(params.recv_overhead_us, "recv_overhead")
                if isinstance(ev, GmRecvEvent):
                    yield from self.provide_receive_buffer()
                return ev
        return None

    def recv_from(self, src: int):
        """Receive the next data message from ``src``."""
        event = yield from self.recv_matching(
            lambda ev: isinstance(ev, GmRecvEvent) and ev.src == src
        )
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GmPort node={self.node_id} pending={len(self._pending)}>"
