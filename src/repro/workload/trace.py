"""Job traces: the workload layer's input format and generators.

A trace is JSON lines, one job per line::

    {"name": "job0", "arrival_us": 0.0, "nodes": [0, 1, 2, 3],
     "mix": {"barrier": 3, "bcast": 1}, "payload_bytes": 64,
     "iterations": 40, "warmup": 4}

``mix`` maps collective names to integer weights; the driver expands
it into a per-iteration op sequence with seeded draws, so the same
trace always runs the same ops.  ``nodes`` may overlap between jobs —
that is the point: the APENet/LQCD deployments that motivated the
paper's protocol run many jobs on shared allocations, and the fabric
links under a barrier are never silent.

Synthetic generators (:func:`generate_trace`) produce the three
arrival/allocation shapes the contention experiments use:

- ``uniform``: equal-size jobs, arrivals evenly spread over a window;
- ``bursty``: equal-size jobs all arriving in the first tenth of the
  window (the gang-scheduling worst case);
- ``skewed``: one large job plus small jobs, staggered arrivals (the
  "big training job vs. background batch" shape).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence, Union

from repro.sim import DeterministicRng

#: Collectives each transport's communicator offers.
MYRINET_COLLECTIVES = ("barrier", "bcast", "allgather", "alltoall", "allreduce")
QUADRICS_COLLECTIVES = ("barrier", "bcast")

TRACE_PATTERNS = ("uniform", "bursty", "skewed")


@dataclass(frozen=True)
class JobSpec:
    """One job of a workload: who runs, when, and what it calls."""

    name: str
    arrival_us: float
    nodes: tuple[int, ...]
    mix: tuple[tuple[str, int], ...]  # (collective, weight), weight > 0
    payload_bytes: int = 0
    iterations: int = 20
    warmup: int = 2

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"job {self.name}: empty node set")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"job {self.name}: duplicate nodes")
        if len(self.nodes) < 2:
            raise ValueError(f"job {self.name}: needs at least two nodes")
        if self.arrival_us < 0:
            raise ValueError(f"job {self.name}: negative arrival")
        if self.iterations < 1:
            raise ValueError(f"job {self.name}: needs at least one iteration")
        if self.warmup < 0:
            raise ValueError(f"job {self.name}: negative warmup")
        if not self.mix:
            raise ValueError(f"job {self.name}: empty collective mix")
        for op, weight in self.mix:
            if weight <= 0:
                raise ValueError(f"job {self.name}: weight {weight} for {op!r}")

    @property
    def total_iterations(self) -> int:
        return self.warmup + self.iterations

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "arrival_us": self.arrival_us,
            "nodes": list(self.nodes),
            "mix": {op: weight for op, weight in self.mix},
            "payload_bytes": self.payload_bytes,
            "iterations": self.iterations,
            "warmup": self.warmup,
        }

    @classmethod
    def from_json(cls, record: dict) -> "JobSpec":
        mix = record.get("mix", {"barrier": 1})
        return cls(
            name=str(record["name"]),
            arrival_us=float(record.get("arrival_us", 0.0)),
            nodes=tuple(int(n) for n in record["nodes"]),
            mix=tuple(sorted((str(op), int(w)) for op, w in mix.items())),
            payload_bytes=int(record.get("payload_bytes", 0)),
            iterations=int(record.get("iterations", 20)),
            warmup=int(record.get("warmup", 2)),
        )


def render_trace(jobs: Sequence[JobSpec]) -> str:
    """Serialize jobs as JSON lines (stable key order)."""
    return "".join(
        json.dumps(job.to_json(), sort_keys=True) + "\n" for job in jobs
    )


def parse_trace(text: str) -> list[JobSpec]:
    """Parse a JSON-lines trace; blank lines and ``#`` comments skipped."""
    jobs = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON: {exc}") from None
        jobs.append(JobSpec.from_json(record))
    if not jobs:
        raise ValueError("trace contains no jobs")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names in trace: {names}")
    return jobs


def load_trace(path: Union[str, Path]) -> list[JobSpec]:
    return parse_trace(Path(path).read_text())


def dump_trace(jobs: Sequence[JobSpec], path: Union[str, Path]) -> None:
    Path(path).write_text(render_trace(jobs))


def validate_trace(
    jobs: Sequence[JobSpec], network: str, cluster_nodes: int
) -> None:
    """Reject jobs a given transport/cluster cannot run."""
    supported = (
        MYRINET_COLLECTIVES if network == "myrinet" else QUADRICS_COLLECTIVES
    )
    for job in jobs:
        bad = [op for op, _w in job.mix if op not in supported]
        if bad:
            raise ValueError(
                f"job {job.name}: collectives {bad} unsupported on "
                f"{network} (supported: {supported})"
            )
        out = [n for n in job.nodes if not 0 <= n < cluster_nodes]
        if out:
            raise ValueError(
                f"job {job.name}: nodes {out} outside cluster of "
                f"{cluster_nodes}"
            )


def _job_nodes(start: int, size: int, cluster_nodes: int) -> tuple[int, ...]:
    """A contiguous (wrapped) allocation — neighbouring jobs overlap."""
    return tuple((start + k) % cluster_nodes for k in range(size))


def generate_trace(
    pattern: str,
    jobs: int,
    cluster_nodes: int,
    seed: int = 0,
    iterations: int = 20,
    warmup: int = 2,
    payload_bytes: int = 64,
    window_us: float = 200.0,
) -> list[JobSpec]:
    """Build a synthetic trace with overlapping allocations.

    All draws come from seeded substreams, so the same arguments always
    yield the same trace.  Allocations are contiguous wrapped ranges
    whose starts are spread around the ring; with total allocated size
    exceeding the cluster, neighbouring jobs share nodes.
    """
    if pattern not in TRACE_PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; use {TRACE_PATTERNS}")
    if jobs < 1:
        raise ValueError("need at least one job")
    if cluster_nodes < 4:
        raise ValueError("need at least four nodes for overlapping jobs")
    rng = DeterministicRng(seed, f"workload/trace/{pattern}")
    arrivals_rng = rng.substream("arrivals")
    specs = []
    base_mix = (("barrier", 3), ("bcast", 1))
    for j in range(jobs):
        if pattern == "skewed":
            size = (3 * cluster_nodes) // 4 if j == 0 else max(2, cluster_nodes // 4)
        else:
            size = max(2, cluster_nodes // 2)
        # Starts spread evenly; the sizes guarantee neighbour overlap.
        start = (j * cluster_nodes) // max(jobs, 1)
        if pattern == "uniform":
            arrival = (j * window_us) / jobs + arrivals_rng.uniform(
                0.0, window_us / (4 * jobs)
            )
        elif pattern == "bursty":
            arrival = arrivals_rng.uniform(0.0, window_us / 10.0)
        else:  # skewed: the big job first, stragglers trickle in
            arrival = 0.0 if j == 0 else arrivals_rng.exponential(
                window_us / jobs
            )
        mix = (("barrier", 1),) if pattern == "skewed" and j == 0 else base_mix
        specs.append(
            JobSpec(
                name=f"job{j}",
                arrival_us=round(arrival, 3),
                nodes=_job_nodes(start, size, cluster_nodes),
                mix=mix,
                payload_bytes=payload_bytes,
                iterations=iterations,
                warmup=warmup,
            )
        )
    return specs
