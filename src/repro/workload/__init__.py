"""Multi-job workloads: overlapping jobs, cross-traffic, tail metrics.

The paper measured its NIC-based collectives on a silent, single-job
machine; the clusters that motivated it (APENet/LQCD) run many jobs
with overlapping allocations and background point-to-point traffic on
the same links.  This layer expresses that: a job trace
(:mod:`~repro.workload.trace`) feeds a driver
(:mod:`~repro.workload.driver`) that runs every job on its own
communicator over one shared fabric, with a seeded cross-traffic
injector (:mod:`~repro.workload.crosstraffic`) congesting the links,
and rolls per-job iteration latencies into tail metrics
(:mod:`~repro.workload.metrics`).
"""

from repro.workload.crosstraffic import (
    CrossTrafficInjector,
    CrossTrafficSpec,
    build_schedule,
)
from repro.workload.driver import (
    DEFAULT_PROFILE,
    KillSpec,
    run_workload,
    run_workload_cached,
    verify_workload_determinism,
)
from repro.workload.metrics import (
    JobMetrics,
    format_job_table,
    jain_fairness,
    percentile,
    summarize_job,
)
from repro.workload.trace import (
    MYRINET_COLLECTIVES,
    QUADRICS_COLLECTIVES,
    TRACE_PATTERNS,
    JobSpec,
    dump_trace,
    generate_trace,
    load_trace,
    parse_trace,
    render_trace,
    validate_trace,
)

__all__ = [
    "CrossTrafficInjector",
    "CrossTrafficSpec",
    "build_schedule",
    "DEFAULT_PROFILE",
    "KillSpec",
    "run_workload",
    "run_workload_cached",
    "verify_workload_determinism",
    "JobMetrics",
    "format_job_table",
    "jain_fairness",
    "percentile",
    "summarize_job",
    "MYRINET_COLLECTIVES",
    "QUADRICS_COLLECTIVES",
    "TRACE_PATTERNS",
    "JobSpec",
    "dump_trace",
    "generate_trace",
    "load_trace",
    "parse_trace",
    "render_trace",
    "validate_trace",
]
