"""The workload driver: overlapping jobs + cross-traffic on one fabric.

One :func:`run_workload` call builds a cluster, gives every job of the
trace its own communicator (many concurrent process groups on the
shared NICs), launches the cross-traffic injector, runs everything to
quiescence, and rolls per-job iteration latencies into tail metrics
(p50/p99/p999, slowdown vs. a silent-machine baseline, Jain fairness).

Determinism: every stochastic input — the trace, the per-iteration
collective choices, the cross-traffic schedule — is pre-drawn at setup
from seeded substreams; nothing draws randomness in simulation event
order.  The whole result dict is the SL101 observable: it must be
bit-identical under tie-break permutation (see
:func:`verify_workload_determinism`) and on warm cache re-runs.

Chaos composition: a :class:`KillSpec` kills one node mid-workload.
Jobs whose allocation contains the victim are revoked, repaired onto
the survivor epoch (ULFM-style, same machinery as ``repro chaos``) and
prove the repaired epoch with a tail of barriers; jobs that do not
contain the victim run to completion untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.cluster.builder import build_cluster
from repro.cluster.profiles import get_profile
from repro.collectives import BarrierFailure, Revoked
from repro.collectives.data_engine import CollectiveFailure
from repro.mpi import create_communicators, repair_quadrics
from repro.network.faults import FaultInjector
from repro.sim import DeterministicRng, Simulator
from repro.tools.runcache import (
    cached_call,
    jsonable,
    resolve_cache,
    run_request,
)
from repro.workload.crosstraffic import (
    CrossTrafficInjector,
    CrossTrafficSpec,
    build_schedule,
)
from repro.workload.metrics import (
    JobMetrics,
    attach_baseline,
    jain_fairness,
    summarize_job,
)
from repro.workload.trace import JobSpec, render_trace, validate_trace

DEFAULT_PROFILE = {
    "myrinet": "lanai_xp_xeon2400",
    "quadrics": "elan3_piii700",
}

_POLL_US = 25.0


@dataclass(frozen=True)
class KillSpec:
    """One mid-workload node kill (chaos composition)."""

    node: int
    at_us: float
    tail_iterations: int = 5
    detect_deadline_us: float = 5000.0
    hb_period_us: float = 200.0
    hb_timeout_us: float = 600.0
    horizon_us: float = 30000.0

    def to_json(self) -> dict:
        return jsonable(self)


def _draw_ops(job: JobSpec, seed: int) -> tuple[str, ...]:
    """The job's per-iteration collective sequence, pre-drawn from the
    job's own substream — identical in silent and contended runs, and
    independent of every other job."""
    rng = DeterministicRng(seed, f"workload/ops/{job.name}")
    names = [op for op, _w in job.mix]
    weights = [w for _op, w in job.mix]
    total = sum(weights)
    ops = []
    for _ in range(job.total_iterations):
        r = rng.uniform(0.0, float(total))
        acc = 0.0
        chosen = names[-1]
        for name, weight in zip(names, weights):
            acc += weight
            if r < acc:
                chosen = name
                break
        ops.append(chosen)
    return tuple(ops)


class _JobTracker:
    """Per-job iteration completion times (last rank out)."""

    def __init__(self, sim, job: JobSpec):
        self.sim = sim
        self.job = job
        total = job.total_iterations
        self.pending = [len(job.nodes)] * total
        self.end = [0.0] * total

    def rank_done(self, iteration: int) -> None:
        self.pending[iteration] -= 1
        if self.pending[iteration] == 0:
            self.end[iteration] = self.sim.now

    def rank_dead(self, from_iteration: int) -> None:
        """A rank died; its remaining iterations will never complete."""
        for it in range(from_iteration, len(self.pending)):
            if self.pending[it] > 0:
                self.pending[it] -= 1

    def completed(self) -> int:
        """Leading iterations every rank finished."""
        count = 0
        for pending, end in zip(self.pending, self.end):
            if pending == 0 and end > 0.0:
                count += 1
            else:
                break
        return count

    def latencies(self) -> list[float]:
        """Per-iteration latency: consecutive completion deltas anchored
        at the job's arrival."""
        done = self.completed()
        anchor = self.job.arrival_us
        out = []
        for it in range(done):
            out.append(self.end[it] - anchor)
            anchor = self.end[it]
        return out


def _run_myrinet_op(comm, op: str, payload_bytes: int, token):
    if op == "barrier":
        yield from comm.barrier()
        return None
    if op == "bcast":
        value = token if comm.rank == 0 else None
        result = yield from comm.bcast(
            value=value, size_bytes=max(4, payload_bytes), root=0
        )
        return ("bcast", result)
    if op == "allreduce":
        result = yield from comm.allreduce(comm.rank + 1)
        return ("allreduce", result)
    if op == "allgather":
        result = yield from comm.allgather(comm.rank)
        return ("allgather", result)
    if op == "alltoall":
        blocks = {dst: (comm.rank, dst) for dst in range(comm.size)}
        result = yield from comm.alltoall(blocks)
        return ("alltoall", result)
    raise ValueError(f"unsupported Myrinet collective {op!r}")


def _run_quadrics_op(comm, op: str, payload_bytes: int, token):
    if op == "barrier":
        yield from comm.barrier()
        return None
    if op == "bcast":
        value = token if comm.rank == 0 else None
        result = yield from comm.bcast(
            value=value, size_bytes=max(4, payload_bytes)
        )
        return ("bcast", result)
    raise ValueError(f"unsupported Quadrics collective {op!r}")


class _JobRun:
    """Everything one job needs at run time."""

    def __init__(self, cluster, network: str, job: JobSpec, ops, affected: bool):
        self.cluster = cluster
        self.network = network
        self.job = job
        self.ops = ops
        self.affected = affected  # contains the kill victim
        self.tracker = _JobTracker(cluster.sim, job)
        self.gate = {"repaired": False}
        self.violations: list[str] = []
        self.tail_ok = 0
        self.status = "completed"
        self.comms = create_communicators(cluster, nodes=list(job.nodes))
        if network == "myrinet":
            self.ctx = self.comms[0]._ctx
            # Pre-warm the root-0 broadcast context so group creation
            # order is a setup-time property, never a race between
            # jobs' first bcast calls.
            if any(op == "bcast" for op in ops):
                self.ctx.bcast_group(0)
        else:
            self.ctx = None

    def comm_for_node(self, node: int):
        for comm in self.comms:
            if comm.node == node:
                return comm
        return None

    def audit_specs(self) -> list[tuple]:
        """(group, collective, count[, payload]) specs for the per-group
        flow audit — exact only for a clean (fault-free) run."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op] = counts.get(op, 0) + 1
        specs = []
        if self.network == "myrinet":
            by_op = {
                "barrier": self.ctx.barrier_group,
                "allreduce": self.ctx.allreduce_group,
                "allgather": self.ctx.allgather_group,
                "alltoall": self.ctx.alltoall_group,
            }
            for op, count in sorted(counts.items()):
                if op == "bcast":
                    specs.append(
                        (self.ctx.bcast_group(0), "bcast", count,
                         max(4, self.job.payload_bytes))
                    )
                else:
                    payload = (
                        0 if op == "barrier" else self.job.payload_bytes
                    )
                    specs.append((by_op[op], op, count, payload))
        else:
            # Quadrics bcast is the hardware broadcast (replicated in
            # the switches, not per-flow accounted); audit the chained
            # barrier's RDMA flow only.
            if counts.get("barrier"):
                specs.append(
                    (self.comms[0]._group, "barrier", counts["barrier"])
                )
        return specs

    def program(self, rank: int):
        job = self.job
        run_op = (
            _run_myrinet_op if self.network == "myrinet" else _run_quadrics_op
        )
        if job.arrival_us > 0:
            yield job.arrival_us
        node = job.nodes[rank]
        token = f"{job.name}/tok"
        abandoned_at: Optional[int] = None
        for it, op in enumerate(self.ops):
            if self.gate["repaired"]:
                abandoned_at = it
                break
            if self.cluster.nics[node].crashed:
                self.tracker.rank_dead(it)
                self.status = "repaired"
                return
            comm = (
                self.comm_for_node(node)
                if self.network == "quadrics"
                else self.comms[rank]
            )
            try:
                result = yield from run_op(comm, op, job.payload_bytes, token)
            except (Revoked, BarrierFailure, CollectiveFailure):
                abandoned_at = it
                break
            if result is not None:
                self._check(rank, op, result, token)
            self.tracker.rank_done(it)
        if abandoned_at is None:
            return
        # Revoked mid-workload: wait for the repaired epoch, then prove
        # it with a tail of barriers on the survivor group.
        self.tracker.rank_dead(abandoned_at)
        self.status = "repaired"
        while not self.gate["repaired"]:
            yield _POLL_US
        if self.cluster.nics[node].crashed:
            return
        comm = self.comm_for_node(node)
        if comm is None:
            return
        kill = self.gate.get("kill")
        tail = kill.tail_iterations if kill is not None else 0
        for _ in range(tail):
            yield from comm.barrier()
        self.tail_ok += 1

    def _check(self, rank: int, op: str, result, token) -> None:
        kind, value = result
        size = len(self.job.nodes)
        ok = True
        if kind == "bcast":
            ok = value == token
        elif kind == "allreduce":
            ok = value == size * (size + 1) // 2
        elif kind == "allgather":
            ok = value == {r: r for r in range(size)}
        elif kind == "alltoall":
            ok = value == {src: (src, rank) for src in range(size)}
        if not ok:
            self.violations.append(
                f"{self.job.name} rank {rank}: wrong {op} result {value!r}"
            )


def _launch_chaos(cluster, network: str, runs, kill: KillSpec, rng):
    """Killer + controller processes (the ``repro chaos`` idiom)."""
    n = cluster.n
    hb_rng = rng.substream("hb")
    for node in range(n):
        cluster.nics[node].enable_failure_detector(
            range(n),
            rng=hb_rng,
            period_us=kill.hb_period_us,
            timeout_us=kill.hb_timeout_us,
            horizon_us=kill.horizon_us,
        )

    def killer():
        yield kill.at_us
        cluster.nics[kill.node].crashed = True

    def controller():
        if cluster.sim.now < kill.at_us:
            yield kill.at_us - cluster.sim.now
        deadline = kill.at_us + kill.detect_deadline_us
        while not all(
            cluster.nics[s].membership.is_dead(kill.node)
            for s in range(n)
            if s != kill.node and not cluster.nics[s].crashed
        ):
            if cluster.sim.now > deadline:
                for run in runs:
                    if run.affected:
                        run.violations.append(
                            f"victim n{kill.node} not convicted within "
                            f"{kill.detect_deadline_us:.0f}us"
                        )
                return
            yield _POLL_US
        # Repair every affected job and open its gate in one event: no
        # survivor may start a new-epoch op before the gate moves.
        for run in runs:
            if not run.affected:
                continue
            try:
                if network == "myrinet":
                    run.ctx.repair([kill.node])
                else:
                    run.comms = repair_quadrics(
                        cluster, run.comms, [kill.node]
                    )
            except Exception as exc:  # noqa: BLE001 - audited, not raised
                run.violations.append(f"repair failed: {exc!r}")
            run.gate["kill"] = kill
            run.gate["repaired"] = True

    return [
        cluster.sim.process(killer(), name=f"killer@{kill.node}"),
        cluster.sim.process(controller(), name="workload-controller"),
    ]


def _execute(
    network: str,
    cluster_nodes: int,
    jobs: Sequence[JobSpec],
    seed: int,
    xtraffic_schedule,
    xtraffic_bytes: int,
    kill: Optional[KillSpec],
    sim: Optional[Simulator],
    profile: Optional[str] = None,
):
    """Build one cluster, run the jobs (+ cross-traffic, + chaos), and
    return ``(job runs, diagnostics dict)``."""
    resolved = get_profile(profile or DEFAULT_PROFILE[network])
    faults = None
    if kill is not None:
        if network == "myrinet":
            # Shrunk retry budgets: dying-epoch ops must resolve within
            # the recovery window (the repro chaos fuzzer's settings).
            resolved = replace(resolved, gm=replace(
                resolved.gm, ack_timeout_us=200.0, max_retries=3,
                nack_timeout_us=300.0, nack_max_rounds=4,
            ))
        faults = FaultInjector()
        faults.kill_node(kill.node, at_us=kill.at_us)
    sim_obj = sim if sim is not None else Simulator()
    sim_obj.track_processes()
    cluster = build_cluster(resolved, cluster_nodes, faults=faults, sim=sim_obj)

    runs = [
        _JobRun(
            cluster,
            network,
            job,
            _draw_ops(job, seed),
            affected=kill is not None and kill.node in job.nodes,
        )
        for job in jobs
    ]

    injector = None
    procs = []
    if xtraffic_schedule:
        injector = CrossTrafficInjector(
            cluster, xtraffic_schedule, xtraffic_bytes
        )
        procs.append(injector.launch())
    for run in runs:
        for rank in range(len(run.job.nodes)):
            procs.append(
                cluster.sim.process(
                    run.program(rank), name=f"{run.job.name}@r{rank}"
                )
            )
    chaos_rng = DeterministicRng(seed, f"workload/chaos/{network}")
    if kill is not None:
        procs.extend(_launch_chaos(cluster, network, runs, kill, chaos_rng))

    sim_obj.run()

    hung = [p.name for p in procs if not p.completion.processed]
    diagnostics = {
        "profile": resolved.name,
        "cluster": cluster,
        "procs": procs,
        "hung": hung,
        "injector": injector,
        "sim_end_us": cluster.sim.now,
    }
    return runs, diagnostics


def _silent_baselines(
    network: str,
    cluster_nodes: int,
    jobs: Sequence[JobSpec],
    seed: int,
    profile: Optional[str] = None,
) -> dict[str, JobMetrics]:
    """Each job alone on a fresh, silent cluster of the same size —
    same node set, same op sequence, arrival pinned to zero."""
    baselines = {}
    for job in jobs:
        alone = replace(job, arrival_us=0.0)
        runs, diag = _execute(
            network, cluster_nodes, [alone], seed,
            xtraffic_schedule=(), xtraffic_bytes=0, kill=None, sim=None,
            profile=profile,
        )
        if diag["hung"]:
            raise RuntimeError(
                f"silent baseline for {job.name} hung: {diag['hung']}"
            )
        run = runs[0]
        lat = run.tracker.latencies()[job.warmup:]
        baselines[job.name] = summarize_job(
            job.name, len(job.nodes), 0.0, lat,
            end_us=run.tracker.end[run.tracker.completed() - 1],
        )
    return baselines


def run_workload(
    network: str,
    cluster_nodes: int,
    jobs: Sequence[JobSpec],
    seed: int = 0,
    xtraffic: Optional[CrossTrafficSpec] = None,
    kill: Optional[KillSpec] = None,
    baseline: bool = True,
    sim: Optional[Simulator] = None,
    profile: Optional[str] = None,
) -> dict:
    """Run a multi-job workload; returns the jsonable result dict.

    The dict is the canonical observable: bit-identical across
    tie-break permutations and warm cache re-runs.
    """
    if network not in DEFAULT_PROFILE:
        raise ValueError(f"unknown network {network!r}")
    validate_trace(jobs, network, cluster_nodes)
    if kill is not None and xtraffic is not None and xtraffic.horizon_us == 0:
        raise ValueError("chaos mode needs an explicit cross-traffic horizon")

    baselines: dict[str, JobMetrics] = {}
    horizon = xtraffic.horizon_us if xtraffic is not None else 0.0
    if baseline:
        baselines = _silent_baselines(
            network, cluster_nodes, jobs, seed, profile=profile
        )
        if xtraffic is not None and xtraffic.horizon_us == 0:
            # Auto horizon: cover every job's silent span with headroom
            # for the contention-stretched makespan.
            horizon = 2.0 * max(
                job.arrival_us + baselines[job.name].end_us for job in jobs
            )

    schedule = ()
    if xtraffic is not None and xtraffic.rate_per_ms > 0:
        schedule = build_schedule(
            xtraffic, cluster_nodes, horizon,
            DeterministicRng(seed, f"workload/xtraffic/{network}"),
        )

    runs, diag = _execute(
        network, cluster_nodes, jobs, seed,
        xtraffic_schedule=schedule,
        xtraffic_bytes=xtraffic.size_bytes if xtraffic is not None else 0,
        kill=kill, sim=sim, profile=profile,
    )
    if diag["hung"]:
        raise RuntimeError(f"workload hung: {diag['hung']}")
    cluster = diag["cluster"]

    job_metrics: list[JobMetrics] = []
    violations: list[str] = []
    for run in runs:
        job = run.job
        violations.extend(run.violations)
        lat = run.tracker.latencies()
        timed = lat[job.warmup:]
        if timed:
            done = run.tracker.completed()
            metrics = summarize_job(
                job.name, len(job.nodes), job.arrival_us, timed,
                end_us=run.tracker.end[done - 1], status=run.status,
            )
        else:
            metrics = JobMetrics(
                name=job.name, n_nodes=len(job.nodes),
                arrival_us=job.arrival_us, iterations=0, mean_us=0.0,
                p50_us=0.0, p99_us=0.0, p999_us=0.0, max_us=0.0,
                end_us=0.0, status=run.status,
            )
        if job.name in baselines and timed:
            attach_baseline(metrics, baselines[job.name])
        job_metrics.append(metrics)

    slowdowns = [m.slowdown for m in job_metrics if m.slowdown is not None]
    fairness = jain_fairness(slowdowns) if slowdowns else 1.0

    group_audit = []
    if kill is None:
        from repro.tools.audit import audit_group_flows

        specs = [s for run in runs for s in run.audit_specs()]
        for check in audit_group_flows(cluster.fabric, specs):
            group_audit.append(jsonable(check))
            if not check.ok:
                violations.append(
                    f"group {check.group_id} {check.collective}: expected "
                    f"{check.expected_packets} packets, saw "
                    f"{check.actual_packets}"
                )

    from repro.tools.simlint import check_quiescent

    report = check_quiescent(
        cluster, must_complete=[p.name for p in diag["procs"]]
    )

    return {
        "network": network,
        "profile": diag["profile"],
        "cluster_nodes": cluster_nodes,
        "seed": seed,
        "jobs": [m.to_json() for m in job_metrics],
        "fairness": fairness,
        "sim_end_us": diag["sim_end_us"],
        "xtraffic": (
            diag["injector"].stats() if diag["injector"] is not None else None
        ),
        "xtraffic_horizon_us": horizon if schedule else 0.0,
        "flow_counters": cluster.fabric.flow_counters(),
        "group_audit": group_audit,
        "quiescence": [f.render() for f in report.findings],
        "violations": violations,
        "kill": kill.to_json() if kill is not None else None,
    }


def run_workload_cached(
    network: str,
    cluster_nodes: int,
    jobs: Sequence[JobSpec],
    seed: int = 0,
    xtraffic: Optional[CrossTrafficSpec] = None,
    kill: Optional[KillSpec] = None,
    baseline: bool = True,
    cache="auto",
    profile: Optional[str] = None,
) -> dict:
    """Cache-aware :func:`run_workload` (keyed on the full trace text,
    cross-traffic config, and source digest)."""
    request = run_request(
        "workload",
        network=network,
        cluster_nodes=cluster_nodes,
        seed=seed,
        trace=render_trace(jobs),
        xtraffic=xtraffic.to_json() if xtraffic is not None else None,
        kill=kill.to_json() if kill is not None else None,
        baseline=baseline,
        profile=profile,
    )
    return cached_call(
        resolve_cache(cache),
        request,
        lambda: run_workload(
            network, cluster_nodes, jobs, seed=seed, xtraffic=xtraffic,
            kill=kill, baseline=baseline, profile=profile,
        ),
    )


def verify_workload_determinism(
    network: str,
    cluster_nodes: int,
    jobs: Sequence[JobSpec],
    seed: int = 0,
    xtraffic: Optional[CrossTrafficSpec] = None,
    rounds: int = 5,
):
    """SL101 harness: the full result dict must be bit-identical under
    tie-break permutation.  Returns the findings list (empty = clean).

    The baseline phase runs once on stock kernels (its metrics feed the
    horizon and slowdown fields deterministically); only the contended
    run itself is re-executed under each permuted simulator.
    """
    from repro.tools.simlint import compare_runs

    def build_and_run(sim):
        return run_workload(
            network, cluster_nodes, jobs, seed=seed, xtraffic=xtraffic,
            baseline=True, sim=sim,
        )

    return compare_runs(
        build_and_run, rounds=rounds, seed=seed,
        where=f"workload/{network}",
    )
