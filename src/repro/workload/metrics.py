"""Tail-latency metrics for multi-job workloads.

Per-job iteration latencies roll up into nearest-rank percentiles
(p50/p99/p999 — at small sample counts the high quantiles degenerate
to the max, which is deterministic and stated in the table), a
slowdown against the job's silent-machine baseline, and Jain's
fairness index over the per-job slowdowns (1.0 = perfectly even
suffering; 1/k = one of k jobs absorbs all the contention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100])."""
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    import math

    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2)."""
    xs = [x for x in values if x > 0]
    if not xs:
        return 1.0
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(x * x for x in xs)
    return square_of_sum / (len(xs) * sum_of_squares)


@dataclass
class JobMetrics:
    """Tail statistics for one job's timed iterations."""

    name: str
    n_nodes: int
    arrival_us: float
    iterations: int  # timed iterations the stats cover
    mean_us: float
    p50_us: float
    p99_us: float
    p999_us: float
    max_us: float
    end_us: float  # sim time the job's last iteration completed
    status: str = "completed"
    silent_mean_us: Optional[float] = None
    silent_p99_us: Optional[float] = None
    slowdown: Optional[float] = None
    p99_ratio: Optional[float] = None

    def to_json(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}


def summarize_job(
    name: str,
    n_nodes: int,
    arrival_us: float,
    latencies: Sequence[float],
    end_us: float,
    status: str = "completed",
) -> JobMetrics:
    """Roll one job's timed iteration latencies into a JobMetrics."""
    if not latencies:
        raise ValueError(f"job {name}: no timed iterations to summarize")
    return JobMetrics(
        name=name,
        n_nodes=n_nodes,
        arrival_us=arrival_us,
        iterations=len(latencies),
        mean_us=sum(latencies) / len(latencies),
        p50_us=percentile(latencies, 50),
        p99_us=percentile(latencies, 99),
        p999_us=percentile(latencies, 99.9),
        max_us=max(latencies),
        end_us=end_us,
        status=status,
    )


def attach_baseline(metrics: JobMetrics, silent: JobMetrics) -> None:
    """Fill the slowdown-vs-silent fields from the baseline run."""
    metrics.silent_mean_us = silent.mean_us
    metrics.silent_p99_us = silent.p99_us
    if silent.mean_us > 0:
        metrics.slowdown = metrics.mean_us / silent.mean_us
    if silent.p99_us > 0:
        metrics.p99_ratio = metrics.p99_us / silent.p99_us


@dataclass
class WorkloadTables:
    """Rendered per-job latency / slowdown tables."""

    lines: list[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(self.lines)


def format_job_table(jobs: Sequence[JobMetrics], fairness: float) -> str:
    """The per-job tail-latency + slowdown table, fixed-point formatted
    (bit-identical output for bit-identical metrics)."""
    header = (
        f"  {'job':<8} {'N':>4} {'arrive':>9} {'iters':>6} "
        f"{'p50us':>9} {'p99us':>9} {'p999us':>9} "
        f"{'silent':>9} {'slowdn':>7}  status"
    )
    lines = [header]
    for m in jobs:
        silent = f"{m.silent_mean_us:.2f}" if m.silent_mean_us is not None else "-"
        slowdown = f"{m.slowdown:.3f}" if m.slowdown is not None else "-"
        lines.append(
            f"  {m.name:<8} {m.n_nodes:>4} {m.arrival_us:>9.2f} "
            f"{m.iterations:>6} {m.p50_us:>9.2f} {m.p99_us:>9.2f} "
            f"{m.p999_us:>9.2f} {silent:>9} {slowdown:>7}  {m.status}"
        )
    lines.append(f"  fairness (Jain, over slowdowns): {fairness:.4f}")
    return "\n".join(lines)
