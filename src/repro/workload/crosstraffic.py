"""Seeded point-to-point cross-traffic over the shared fabric.

The injector streams ``xtraffic`` packets between random node pairs.
They are real worms: each claims its links through the arbiters and
holds bandwidth for its serialization time, so collective packets queue
behind them exactly as they would behind another job's point-to-point
traffic.  They terminate at a fabric-level sink (:meth:`Fabric.
attach_sink`) instead of the NIC protocol stack — cross-traffic must
congest links without perturbing NIC protocol state, and the sink keeps
the model quiescence-clean (SL102–SL107) at drain.

Everything is pre-drawn at setup from seeded substreams (inter-arrival
gaps, source/destination pairs): the injection schedule is a pure
function of the config, never of simulation event order (SL101).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network import Packet, PacketKind
from repro.sim import DeterministicRng


@dataclass(frozen=True)
class CrossTrafficSpec:
    """Cross-traffic shape: aggregate rate, packet size, time window."""

    rate_per_ms: float  # aggregate packets per millisecond, whole fabric
    size_bytes: int = 512
    horizon_us: float = 0.0  # 0 = derive from the silent baseline

    def __post_init__(self) -> None:
        if self.rate_per_ms < 0:
            raise ValueError("negative cross-traffic rate")
        if self.size_bytes < 1:
            raise ValueError("cross-traffic packets need at least one byte")
        if self.horizon_us < 0:
            raise ValueError("negative horizon")

    def to_json(self) -> dict:
        return {
            "rate_per_ms": self.rate_per_ms,
            "size_bytes": self.size_bytes,
            "horizon_us": self.horizon_us,
        }


class _XtFlow:
    """Payload marker: gives the packet a ``flow`` label for per-flow
    fabric accounting (and nothing else)."""

    __slots__ = ("flow",)

    def __init__(self, flow: str):
        self.flow = flow


_PAYLOAD = _XtFlow("xtraffic")


def build_schedule(
    spec: CrossTrafficSpec,
    n_nodes: int,
    horizon_us: float,
    rng: DeterministicRng,
) -> tuple[tuple[float, int, int], ...]:
    """Pre-draw the full injection schedule: (time, src, dst) tuples.

    Poisson arrivals (exponential gaps at the aggregate rate), uniform
    distinct node pairs.  Fully determined by the rng seed and args.
    """
    if spec.rate_per_ms == 0 or horizon_us <= 0 or n_nodes < 2:
        return ()
    gaps = rng.substream("gaps")
    pairs = rng.substream("pairs")
    mean_gap_us = 1000.0 / spec.rate_per_ms
    events = []
    t = 0.0
    while True:
        t += gaps.exponential(mean_gap_us)
        if t >= horizon_us:
            break
        src = pairs.randint(0, n_nodes - 1)
        dst = (src + 1 + pairs.randint(0, n_nodes - 2)) % n_nodes
        events.append((t, src, dst))
    return tuple(events)


class CrossTrafficInjector:
    """Streams a pre-drawn schedule of xtraffic packets over a cluster."""

    def __init__(self, cluster, schedule, size_bytes: int):
        self.cluster = cluster
        self.schedule = schedule
        self.size_bytes = size_bytes
        self.injected = 0
        self.delivered = 0
        for port in range(cluster.n):
            cluster.fabric.attach_sink(port, PacketKind.XTRAFFIC, self._sink)

    def _sink(self, packet: Packet) -> None:
        self.delivered += 1

    def _program(self):
        sim = self.cluster.sim
        fabric = self.cluster.fabric
        for i, (t, src, dst) in enumerate(self.schedule):
            if t > sim.now:
                yield t - sim.now
            fabric.transmit(
                Packet(
                    src=src,
                    dst=dst,
                    kind=PacketKind.XTRAFFIC,
                    size_bytes=self.size_bytes,
                    payload=_PAYLOAD,
                    seq=i,
                )
            )
            self.injected += 1

    def launch(self):
        """Start the injector; returns the process (for must_complete)."""
        return self.cluster.sim.process(self._program(), name="xtraffic")

    def stats(self) -> dict:
        return {
            "scheduled": len(self.schedule),
            "injected": self.injected,
            "delivered": self.delivered,
        }
