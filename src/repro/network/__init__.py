"""Physical network: packets, wormhole fabric, fault injection.

The fabric moves :class:`~repro.network.packet.Packet` objects between
NIC ports over a :class:`~repro.topology.base.Topology`.  Timing follows
the wormhole/cut-through model both Myrinet and QsNet use: a packet's
head ripples through switches at per-switch fall-through latency while
the body streams behind it, so

``delivery = inject + hops * switch_latency + links * propagation
+ size / bandwidth``

with contention modeled by holding each directional link for the
packet's serialization time, acquired in path order.

Myrinet provides *no* delivery guarantee (GM adds reliability in the
control program), so the fabric supports fault injection: probabilistic
drops, corruption, duplication, delay/jitter, scripted deterministic
drop plans, and (windowed) black-holes used by the reliability tests
and the chaos campaign.
"""

from repro.network.packet import Packet, PacketKind, canonical_packet_key
from repro.network.faults import Blackhole, DropPlan, FaultDecision, FaultInjector
from repro.network.fabric import Fabric, WireParams

__all__ = [
    "Packet",
    "PacketKind",
    "FaultInjector",
    "FaultDecision",
    "Blackhole",
    "DropPlan",
    "Fabric",
    "WireParams",
    "canonical_packet_key",
]
