"""The wormhole fabric: moves packets between NIC ports.

Timing model (cut-through / wormhole, used by both Myrinet and QsNet):

- the packet head leaves the source NIC after ``inject_us``;
- each switch adds ``switch_latency_us`` fall-through delay;
- each physical link adds ``propagation_us``;
- the tail arrives ``size / bandwidth`` after the head (serialization);
- contention: each directional link along the path is held for the
  serialization time, acquired in path order — back-to-back packets on
  the same link queue up, packets on disjoint paths don't interact.

Link grants are *arbitrated*, not first-come-first-served on the event
heap: every request and release lands in a per-link pool, and a
decision pass runs one delta phase later (:meth:`Simulator.
schedule_phase`), granting bandwidth in canonical packet order
(:func:`~repro.network.packet.canonical_packet_key`).  Real switch ports
arbitrate same-cycle heads deterministically (port order); resolving
them by event scheduling order instead makes delivery times depend on
same-timestamp tie-breaking — the schedule race simlint SL101 detects.

Dropped packets (fault injection) consume the send side's time but never
arrive — exactly how a wormhole network loses a packet whose CRC fails
at a switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Optional

from repro.network.faults import FaultInjector
from repro.network.packet import Packet, canonical_packet_key
from repro.sim import Simulator, Tracer
from repro.topology.base import Topology


@dataclass(frozen=True)
class WireParams:
    """Physical-layer constants (all µs / bytes-per-µs)."""

    inject_us: float
    switch_latency_us: float
    propagation_us: float
    bandwidth_bytes_per_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        for name in ("inject_us", "switch_latency_us", "propagation_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def head_latency(self, switch_hops: int, link_hops: int) -> float:
        return (
            self.inject_us
            + switch_hops * self.switch_latency_us
            + link_hops * self.propagation_us
        )

    def serialization(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth_bytes_per_us


DeliveryHandler = Callable[[Packet], None]


class LinkArbiter:
    """One directional link's bandwidth units with deterministic grants.

    Requests pool up; a decision pass runs one delta phase later and
    grants free units in ``(birth phase, canonical key)`` order.  The
    one-phase lag guarantees every same-instant contender has registered
    before any winner is picked, whatever order the scheduler popped
    their events in; it costs zero simulated time.  Requests born while
    a pass is deciding (a packet granted an earlier hop in that same
    pass) wait for the next phase — a structural, schedule-independent
    property of the route.
    """

    __slots__ = ("sim", "name", "capacity", "in_use", "_pending", "_n", "_pass_at")

    def __init__(self, sim: Simulator, capacity: int, name: str):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        # Heap of (birth_phase, canonical_key, n, grant_callback); ``n``
        # only separates requests identical in every protocol coordinate
        # (interchangeable packets) and keeps the comparison off the
        # callback.
        self._pending: list[tuple] = []
        self._n = 0
        self._pass_at: Optional[tuple[float, int]] = None

    def request(self, key: tuple, grant: Callable[[], None]) -> None:
        birth = self.sim.current_phase
        self._n += 1
        heappush(self._pending, (birth, key, self._n, grant))
        self._ensure_pass(birth + 1)

    def release(self) -> None:
        self.in_use -= 1
        if self._pending:
            self._ensure_pass(self.sim.current_phase + 1)

    def _ensure_pass(self, phase: int) -> None:
        # A pass already pending at this instant and this phase or later
        # will see the triggering state change; otherwise arm one.
        now = self.sim.now
        if self._pass_at is not None and self._pass_at >= (now, phase):
            return
        self._pass_at = (now, phase)
        self.sim.schedule_phase(phase, self._pass, phase)

    def _pass(self, phase: int) -> None:
        self._pass_at = None
        pending = self._pending
        while self.in_use < self.capacity and pending and pending[0][0] < phase:
            _birth, _key, _n, grant = heappop(pending)
            self.in_use += 1
            grant()
        if pending and self.in_use < self.capacity:
            # Only same-phase births remain; decide them next phase.
            self._ensure_pass(phase + 1)


class Fabric:
    """Connects NIC ports over a topology with wormhole timing."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: WireParams,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.params = params
        self.tracer = tracer or Tracer()
        self.faults = faults
        self._handlers: dict[int, DeliveryHandler] = {}
        self._links: dict[tuple[str, str], LinkArbiter] = {}
        # Topologies are immutable for the lifetime of a simulation, so
        # the route, its link resources, and the size-independent head
        # latency are memoized per (src, dst) pair.
        self._route_cache: dict[tuple[int, int], tuple] = {}
        self.delivered_count = 0

    # ------------------------------------------------------------------
    def attach(self, port: int, handler: DeliveryHandler) -> None:
        """Register the delivery callback for NIC ``port``."""
        if not 0 <= port < self.topology.n_nodes:
            raise ValueError(f"port {port} not in topology")
        if port in self._handlers:
            raise ValueError(f"port {port} already attached")
        self._handlers[port] = handler

    def _link(self, a: str, b: str) -> LinkArbiter:
        key = (a, b)
        res = self._links.get(key)
        if res is None:
            capacity = self.topology.link_capacity(a, b)
            res = LinkArbiter(self.sim, capacity, name=f"link:{a}->{b}")
            self._links[key] = res
        return res

    def _path_links(self, route) -> list[LinkArbiter]:
        nodes = [f"nic{route.src}", *route.hops, f"nic{route.dst}"]
        return [self._link(a, b) for a, b in zip(nodes, nodes[1:])]

    def _route_entry(self, src: int, dst: int) -> tuple:
        entry = self._route_cache.get((src, dst))
        if entry is None:
            route = self.topology.route(src, dst)
            links = self._path_links(route)
            head = self.params.head_latency(route.switch_count, route.link_count)
            entry = (route, links, head)
            self._route_cache[(src, dst)] = entry
        return entry

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Fire-and-forget: inject ``packet``; it arrives later (or not).

        The caller (NIC model) accounts for its own processing time; this
        method only models the wire.
        """
        if packet.dst not in self._handlers:
            raise ValueError(f"no NIC attached at port {packet.dst}")
        packet.sent_at = self.sim.now
        tracer = self.tracer
        tracer.count(f"wire.{packet.kind}")
        tracer.count("wire.packets")
        # Wormhole path: claim each directional link in order (a
        # callback chain through the per-link arbiters — no per-packet
        # Process), then let the whole worm drain.  Head latency accrues
        # after the claims, exactly as a worm stalled mid-path holds its
        # upstream channels.
        _route, links, head = self._route_entry(packet.src, packet.dst)
        if self.faults is not None:
            decision = self.faults.inspect(packet)
            if decision.drop:
                tracer.count("wire.dropped")
                if tracer.enabled:
                    tracer.record(
                        self.sim.now, "wire", f"nic{packet.src}", "DROPPED",
                        pkt=packet.wire_id,
                    )
                return
            if decision.corrupt:
                packet.corrupted = True
                tracer.count("wire.corrupted")
            if decision.duplicate:
                # A switch-level duplicate: an extra copy of the same
                # protocol packet travels the same path independently.
                tracer.count("wire.duplicated")
                self._claim(packet.clone(), links, head, 0)
            if decision.delay_us > 0.0:
                tracer.count("wire.delayed")
                self.sim.schedule_detached(
                    decision.delay_us, self._claim, packet, links, head, 0
                )
                return
        self._claim(packet, links, head, 0)

    def _claim(self, packet: Packet, links: list, head: float, idx: int) -> None:
        if idx == len(links):
            latency = head + self.params.serialization(packet.size_bytes)
            self.sim.schedule_detached(latency, self._complete, packet, links)
            return
        links[idx].request(
            canonical_packet_key(packet),
            lambda: self._claim(packet, links, head, idx + 1),
        )

    def _complete(self, packet: Packet, links: list) -> None:
        """Tail of a delivery: free the path, hand over."""
        for link in links:
            link.release()
        self._finish(packet)

    def _finish(self, packet: Packet) -> None:
        packet.delivered_at = self.sim.now
        self.delivered_count += 1
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "wire",
                f"nic{packet.src}",
                f"delivered {packet.kind} to nic{packet.dst}",
                pkt=packet.wire_id,
                kind=packet.kind,
                src=packet.src,
                dst=packet.dst,
                sent_at=packet.sent_at,
                size=packet.size_bytes,
            )
            self.tracer.add_span(
                packet.sent_at,
                self.sim.now,
                f"wire.n{packet.src}-n{packet.dst}",
                packet.kind,
                pkt=packet.wire_id,
                size=packet.size_bytes,
            )
        self._handlers[packet.dst](packet)

    # ------------------------------------------------------------------
    def broadcast(self, packet: Packet, targets: Iterable[int]) -> None:
        """Hardware broadcast (QsNet): replicate to every target port.

        The fat tree replicates in the switches, so every copy shares the
        same head latency (climb to the root, fan out down) — all
        deliveries occur simultaneously.  Myrinet has no hardware
        broadcast; callers must not use this on a Clos fabric.
        """
        from repro.topology.fat_tree import QuaternaryFatTree

        if not isinstance(self.topology, QuaternaryFatTree):
            raise TypeError("hardware broadcast requires a fat-tree topology")
        packet.sent_at = self.sim.now
        hops = self.topology.broadcast_hops()
        latency = self.params.head_latency(hops, hops + 1) + self.params.serialization(
            packet.size_bytes
        )
        self.tracer.count("wire.bcast")
        for port in targets:
            if port not in self._handlers:
                raise ValueError(f"no NIC attached at port {port}")
        self.sim.schedule(latency, self._deliver_broadcast, packet, tuple(targets))

    def _deliver_broadcast(self, packet: Packet, targets: tuple[int, ...]) -> None:
        packet.delivered_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.add_span(
                packet.sent_at,
                self.sim.now,
                f"wire.n{packet.src}-bcast",
                packet.kind,
                pkt=packet.wire_id,
                size=packet.size_bytes,
                targets=len(targets),
            )
        for port in targets:
            self._handlers[port](packet)
