"""The wormhole fabric: moves packets between NIC ports.

Timing model (cut-through / wormhole, used by both Myrinet and QsNet):

- the packet head leaves the source NIC after ``inject_us``;
- each switch adds ``switch_latency_us`` fall-through delay;
- each physical link adds ``propagation_us``;
- the tail arrives ``size / bandwidth`` after the head (serialization);
- contention: each directional link along the path is held for the
  serialization time, acquired in path order — back-to-back packets on
  the same link queue up, packets on disjoint paths don't interact.

Link grants are *arbitrated*, not first-come-first-served on the event
heap: every request and release lands in a per-link pool, and a
decision pass runs one delta phase later (:meth:`Simulator.
schedule_phase`), granting bandwidth in canonical packet order
(:func:`~repro.network.packet.canonical_packet_key`).  Real switch ports
arbitrate same-cycle heads deterministically (port order); resolving
them by event scheduling order instead makes delivery times depend on
same-timestamp tie-breaking — the schedule race simlint SL101 detects.

Dropped packets (fault injection) consume the send side's time but never
arrive — exactly how a wormhole network loses a packet whose CRC fails
at a switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Optional

from repro.network.faults import FaultInjector
from repro.network.packet import Packet, canonical_packet_key
from repro.sim import Simulator, Tracer
from repro.topology.base import Topology


@dataclass(frozen=True)
class WireParams:
    """Physical-layer constants (all µs / bytes-per-µs)."""

    inject_us: float
    switch_latency_us: float
    propagation_us: float
    bandwidth_bytes_per_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        for name in ("inject_us", "switch_latency_us", "propagation_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def head_latency(self, switch_hops: int, link_hops: int) -> float:
        return (
            self.inject_us
            + switch_hops * self.switch_latency_us
            + link_hops * self.propagation_us
        )

    def serialization(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth_bytes_per_us


DeliveryHandler = Callable[[Packet], None]


class ArbitrationDomain:
    """One decision event per (instant, delta phase), shared by all links.

    Each link arbiter used to arm its own :meth:`Simulator.
    schedule_phase` event per decision; at 4096+ nodes those events were
    a third of all kernel traffic.  The domain pools every arbiter that
    needs a phase-``p`` decision at the current instant into one list
    and runs them under a single kernel event.  Processing order within
    a pass is observationally irrelevant: a phase-``p`` pass only grants
    requests born in earlier phases, any request a grant causes is born
    in phase ``p`` and so decided at ``p+1`` regardless of which arbiter
    ran first, and releases only arrive from timed (phase-0) events — no
    arbiter's decision can observe another arbiter's position in the
    list.  The queues never leak across instants because every
    scheduled call at a timestamp drains before the clock advances.
    """

    __slots__ = ("sim", "_queues")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._queues: dict[int, list] = {}

    def mark(self, arbiter: "LinkArbiter", phase: int) -> None:
        q = self._queues.get(phase)
        if q is None:
            q = self._queues[phase] = []
            self.sim.schedule_phase(phase, self._run, phase)
        q.append(arbiter)

    def _run(self, phase: int) -> None:
        for arbiter in self._queues.pop(phase):
            arbiter._pass(phase)


class LinkArbiter:
    """One directional link's bandwidth units with deterministic grants.

    Requests pool up; a decision pass runs one delta phase later and
    grants free units in ``(birth phase, canonical key)`` order.  The
    one-phase lag guarantees every same-instant contender has registered
    before any winner is picked, whatever order the scheduler popped
    their events in; it costs zero simulated time.  Requests born while
    a pass is deciding (a packet granted an earlier hop in that same
    pass) wait for the next phase — a structural, schedule-independent
    property of the route.
    """

    __slots__ = (
        "sim", "domain", "name", "capacity", "in_use",
        "_pending", "_n", "_pass_phase",
    )

    def __init__(
        self, sim: Simulator, domain: ArbitrationDomain, capacity: int, name: str
    ):
        self.sim = sim
        self.domain = domain
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        # Heap of (birth_phase, canonical_key, n, grant_fn, grant_args);
        # ``n`` only separates requests identical in every protocol
        # coordinate (interchangeable packets) and keeps the comparison
        # off the callback.  Storing (fn, args) instead of a bound
        # closure saves one closure allocation per link per packet —
        # the single hottest allocation site at 1024+ nodes.
        self._pending: list[tuple] = []
        self._n = 0
        self._pass_phase = -1  # armed pass's phase; -1 when unarmed

    def request(self, key: tuple, fn: Callable, *args) -> None:
        birth = self.sim._phase
        self._n += 1
        heappush(self._pending, (birth, key, self._n, fn, args))
        if self._pass_phase <= birth:
            phase = birth + 1
            self._pass_phase = phase
            # Inlined ``domain.mark`` — this is the hottest arbitration
            # call site (one per link per packet).
            domain = self.domain
            q = domain._queues.get(phase)
            if q is None:
                domain._queues[phase] = [self]
                domain.sim.schedule_phase(phase, domain._run, phase)
            else:
                q.append(self)

    def release(self) -> None:
        self.in_use -= 1
        if self._pending:
            self._ensure_pass(self.sim._phase + 1)

    def _ensure_pass(self, phase: int) -> None:
        # A pass already armed at this phase or later will see the
        # triggering state change; otherwise arm one.  An armed pass
        # always fires at the instant it was armed (the domain's event
        # lands at the current timestamp, and every same-time call
        # drains before time advances), so the guard needs no time
        # component.
        if self._pass_phase >= phase:
            return
        self._pass_phase = phase
        self.domain.mark(self, phase)

    def _pass(self, phase: int) -> None:
        self._pass_phase = -1
        pending = self._pending
        capacity = self.capacity
        # ``in_use`` can be cached across the loop: a grant only ever
        # advances the *granted* worm (this link's next hops are other
        # links; releases arrive solely from timed events later).
        in_use = self.in_use
        while in_use < capacity and pending and pending[0][0] < phase:
            _birth, _key, _n, fn, args = heappop(pending)
            in_use += 1
            self.in_use = in_use
            fn(*args)
        if pending and in_use < capacity:
            # Only same-phase births remain; decide them next phase.
            self._ensure_pass(phase + 1)


class Fabric:
    """Connects NIC ports over a topology with wormhole timing."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: WireParams,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
        reference: bool = False,
    ):
        self.sim = sim
        self.topology = topology
        self.params = params
        self.tracer = tracer or Tracer()
        self.faults = faults
        self._handlers: dict[int, DeliveryHandler] = {}
        self._bandwidth = params.bandwidth_bytes_per_us
        self._domain = ArbitrationDomain(sim)
        self._links: dict[tuple[str, str], LinkArbiter] = {}
        # Topologies are immutable for the lifetime of a simulation, so
        # the route, its arbitrated link resources, the size-independent
        # head latency, and the elided delta-phase count are memoized
        # per (src, dst) pair.
        self._route_cache: dict[tuple[int, int], tuple] = {}
        # Contention-free up-edge elision (fat tree only): a worm holds
        # its capacity-1 injection link for its whole lifetime, so a
        # level-l stage group's up-edge sees at most its 4**l sources
        # concurrently — exactly its parallel-link capacity.  Those
        # claims can never block, so each is replaced by its structural
        # cost alone: one delta phase.  The proof needs every worm to
        # hold one injection slot (duplication creates two worms per
        # source; delay decouples the claim from the injection hold), so
        # any fault injection disables the fast path, as does reference
        # mode (the equivalence tests' unbatched baseline).
        self._elide_up_edges = (
            faults is None
            and not reference
            and hasattr(topology, "broadcast_hops")  # quaternary fat tree
        )
        # Per-kind counter labels, interned once: building
        # f"wire.{kind}" per packet shows up at millions of packets.
        self._kind_labels: dict[str, str] = {}
        self.delivered_count = 0
        # Per-source transmit observers: the failure detector's
        # heartbeat loop suppresses beats to peers the NIC has recently
        # transmitted *anything* to, and the workload layer's per-flow
        # telemetry watches the same stream.  Each port keeps an
        # *ordered list* of callbacks — a single-slot dict here silently
        # dropped the earlier subscriber on re-register, which would
        # have disabled liveness piggybacking the moment a second
        # observer appeared.  Invocation order is registration order.
        self._tx_observers: dict[int, list[Callable[[int, float], None]]] = {}
        # Per-flow transmit accounting: flow label -> [packets, bytes,
        # dropped].  The label comes from the payload's ``group_id``
        # (collective traffic), else its ``flow`` attribute (workload
        # cross-traffic), else the packet kind.
        self._flow_counters: dict[str, list[int]] = {}
        # Fabric-level sinks: (dst port, packet kind) -> handler.  A
        # sink terminates matching packets *instead of* the NIC protocol
        # stack — cross-traffic competes for links like any worm but
        # must not perturb NIC protocol state.
        self._sinks: dict[tuple[int, str], DeliveryHandler] = {}

    def observe_tx(self, port: int, callback: Callable[[int, float], None]) -> None:
        """Register ``callback(dst, now)`` for every packet ``port`` sends.

        Multiple observers per port coexist; they are invoked in
        registration order on every transmit.
        """
        self._tx_observers.setdefault(port, []).append(callback)

    def attach_sink(self, port: int, kind: str, handler: DeliveryHandler) -> None:
        """Terminate ``kind`` packets arriving at ``port`` in ``handler``.

        The sink replaces the NIC delivery for that (port, kind) pair
        only; all other traffic still reaches the attached NIC.
        """
        key = (port, kind)
        if key in self._sinks:
            raise ValueError(f"sink for {kind!r} already attached at port {port}")
        self._sinks[key] = handler

    def flow_counters(self) -> dict[str, dict[str, int]]:
        """Per-flow transmit totals, keyed by flow label, sorted.

        Each entry reports ``packets`` (transmits attempted), ``bytes``
        (sum of their sizes), and ``dropped`` (fault-injected losses).
        """
        return {
            label: {"packets": c[0], "bytes": c[1], "dropped": c[2]}
            for label, c in sorted(self._flow_counters.items())
        }

    def _flow_label(self, packet: Packet) -> str:
        payload = packet.payload
        group_id = getattr(payload, "group_id", None)
        if isinstance(group_id, int):
            return f"group:{group_id}"
        flow = getattr(payload, "flow", None)
        if isinstance(flow, str):
            return f"flow:{flow}"
        return f"kind:{packet.kind}"

    # ------------------------------------------------------------------
    def attach(self, port: int, handler: DeliveryHandler) -> None:
        """Register the delivery callback for NIC ``port``."""
        if not 0 <= port < self.topology.n_nodes:
            raise ValueError(f"port {port} not in topology")
        if port in self._handlers:
            raise ValueError(f"port {port} already attached")
        self._handlers[port] = handler

    def _link(self, a: str, b: str) -> LinkArbiter:
        key = (a, b)
        res = self._links.get(key)
        if res is None:
            capacity = self.topology.link_capacity(a, b)
            res = LinkArbiter(self.sim, self._domain, capacity, name=f"link:{a}->{b}")
            self._links[key] = res
        return res

    def _path_links(self, route) -> list[LinkArbiter]:
        nodes = [f"nic{route.src}", *route.hops, f"nic{route.dst}"]
        return [self._link(a, b) for a, b in zip(nodes, nodes[1:])]

    def _route_entry(self, src: int, dst: int) -> tuple:
        """Memoized ``(arbitrated links, head latency, elided phases)``.

        With up-edge elision on, the links between the ascent's switch
        stages (indices ``1..top-1``; the fat-tree route climbs ``top``
        switches before descending) are dropped from the arbitrated
        list: they can never block, and their delta-phase cost is
        re-added wholesale as ``skip`` so every surviving link sees the
        packet at exactly the phase it would have without elision.  The
        injection link (index 0) is always arbitrated — holding it is
        what makes the proof go through — as are the descent and
        ejection links, which genuinely contend.
        """
        entry = self._route_cache.get((src, dst))
        if entry is None:
            route = self.topology.route(src, dst)
            links = self._path_links(route)
            head = self.params.head_latency(route.switch_count, route.link_count)
            skip = 0
            if self._elide_up_edges and len(route.hops) > 1:
                top = (len(route.hops) + 1) // 2  # route climbs `top` stages
                skip = top - 1
                if skip:
                    links = [links[0], *links[1 + skip:]]
            entry = (links, head, skip)
            self._route_cache[(src, dst)] = entry
        return entry

    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Fire-and-forget: inject ``packet``; it arrives later (or not).

        The caller (NIC model) accounts for its own processing time; this
        method only models the wire.
        """
        if packet.dst not in self._handlers:
            raise ValueError(f"no NIC attached at port {packet.dst}")
        packet.sent_at = self.sim.now
        if self._tx_observers:
            observers = self._tx_observers.get(packet.src)
            if observers:
                for observer in observers:
                    observer(packet.dst, self.sim.now)
        tracer = self.tracer
        label = self._kind_labels.get(packet.kind)
        if label is None:
            label = self._kind_labels.setdefault(packet.kind, f"wire.{packet.kind}")
        tracer.count(label)
        tracer.count("wire.packets")
        flow_label = self._flow_label(packet)
        flow = self._flow_counters.get(flow_label)
        if flow is None:
            flow = self._flow_counters[flow_label] = [0, 0, 0]
        flow[0] += 1
        flow[1] += packet.size_bytes
        # Wormhole path: claim each directional link in order (a
        # callback chain through the per-link arbiters — no per-packet
        # Process), then let the whole worm drain.  Head latency accrues
        # after the claims, exactly as a worm stalled mid-path holds its
        # upstream channels.  The canonical arbitration key is hoisted
        # here: it is invariant along the path, and recomputing it per
        # link was ~700k redundant tuple builds per 1024-node point.
        # The worm's traversal state lives in one mutable record,
        # ``[packet, links, head, next_idx, key, skip]``, allocated once
        # per packet — rebuilding a six-element argument tuple per hop
        # was the next-hottest allocation site after the closures.
        links, head, skip = self._route_entry(packet.src, packet.dst)
        key = canonical_packet_key(packet)
        if self.faults is not None:
            decision = self.faults.inspect(packet)
            if decision.drop:
                tracer.count("wire.dropped")
                flow[2] += 1
                if tracer.enabled:
                    tracer.record(
                        self.sim.now, "wire", f"nic{packet.src}", "DROPPED",
                        pkt=packet.wire_id,
                    )
                return
            if decision.corrupt:
                packet.corrupted = True
                tracer.count("wire.corrupted")
            if decision.duplicate:
                # A switch-level duplicate: an extra copy of the same
                # protocol packet travels the same path independently.
                tracer.count("wire.duplicated")
                clone = packet.clone()
                self._claim([clone, links, head, 0, canonical_packet_key(clone), skip])
            if decision.delay_us > 0.0:
                tracer.count("wire.delayed")
                self.sim.schedule_detached(
                    decision.delay_us, self._claim,
                    [packet, links, head, 0, key, skip],
                )
                return
        self._claim([packet, links, head, 0, key, skip])

    def _claim(self, worm: list) -> None:
        links = worm[1]
        idx = worm[3]
        if idx == len(links):
            packet = worm[0]
            latency = worm[2] + packet.size_bytes / self._bandwidth
            self.sim.schedule_detached(latency, self._complete, packet, links)
            return
        links[idx].request(worm[4], self._hop_granted, worm)

    def _hop_granted(self, worm: list) -> None:
        skip = worm[5]
        if skip and worm[3] == 0:
            # The elided up-edges are free by construction; burn their
            # delta phases in a single event so downstream links see the
            # packet at exactly the unelided phase.
            worm[3] = 1
            worm[5] = 0
            sim = self.sim
            sim.schedule_phase(sim.current_phase + skip, self._claim, worm)
            return
        worm[3] += 1
        self._claim(worm)

    def _complete(self, packet: Packet, links: list) -> None:
        """Tail of a delivery: free the path, hand over."""
        for link in links:
            link.release()
        self._finish(packet)

    def _finish(self, packet: Packet) -> None:
        packet.delivered_at = self.sim.now
        self.delivered_count += 1
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "wire",
                f"nic{packet.src}",
                f"delivered {packet.kind} to nic{packet.dst}",
                pkt=packet.wire_id,
                kind=packet.kind,
                src=packet.src,
                dst=packet.dst,
                sent_at=packet.sent_at,
                size=packet.size_bytes,
            )
            self.tracer.add_span(
                packet.sent_at,
                self.sim.now,
                f"wire.n{packet.src}-n{packet.dst}",
                packet.kind,
                pkt=packet.wire_id,
                size=packet.size_bytes,
            )
        if self._sinks:
            sink = self._sinks.get((packet.dst, packet.kind))
            if sink is not None:
                sink(packet)
                return
        self._handlers[packet.dst](packet)

    # ------------------------------------------------------------------
    def broadcast(self, packet: Packet, targets: Iterable[int]) -> None:
        """Hardware broadcast (QsNet): replicate to every target port.

        The fat tree replicates in the switches, so every copy shares the
        same head latency (climb to the root, fan out down) — all
        deliveries occur simultaneously.  Myrinet has no hardware
        broadcast; callers must not use this on a Clos fabric.
        """
        from repro.topology.fat_tree import QuaternaryFatTree

        if not isinstance(self.topology, QuaternaryFatTree):
            raise TypeError("hardware broadcast requires a fat-tree topology")
        packet.sent_at = self.sim.now
        hops = self.topology.broadcast_hops()
        latency = self.params.head_latency(hops, hops + 1) + self.params.serialization(
            packet.size_bytes
        )
        self.tracer.count("wire.bcast")
        for port in targets:
            if port not in self._handlers:
                raise ValueError(f"no NIC attached at port {port}")
        if self._tx_observers:
            observers = self._tx_observers.get(packet.src)
            if observers:
                for observer in observers:
                    for port in targets:
                        observer(port, self.sim.now)
        self.sim.schedule(latency, self._deliver_broadcast, packet, tuple(targets))

    def _deliver_broadcast(self, packet: Packet, targets: tuple[int, ...]) -> None:
        packet.delivered_at = self.sim.now
        if self.tracer.enabled:
            self.tracer.add_span(
                packet.sent_at,
                self.sim.now,
                f"wire.n{packet.src}-bcast",
                packet.kind,
                pkt=packet.wire_id,
                size=packet.size_bytes,
                targets=len(targets),
            )
        for port in targets:
            self._handlers[port](packet)
