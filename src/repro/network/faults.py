"""Fault injection for the unreliable (Myrinet) wire.

Fault classes, composable:

- probabilistic loss: every packet is dropped with ``drop_probability``
  using a deterministic RNG stream;
- corruption: the packet is *delivered* but flagged corrupted — the
  receiving NIC's CRC check must discard it and let the sender's
  timeout (or the receiver-driven NACK) recover;
- duplication: the packet is delivered twice — receivers must suppress
  the second copy via their sequence machinery;
- delay/jitter: the packet is held at the injection point for a random
  extra delay before entering the wormhole path (switch buffering);
- scripted loss: a :class:`DropPlan` drops the *k*-th packet matching a
  predicate — lets reliability tests lose exactly the message they want
  (e.g. "drop the first barrier packet from node 3 to node 7 and verify
  the receiver-driven NACK recovers it");
- black-holes: a :class:`Blackhole` drops *every* matching packet,
  optionally only inside a sim-time window — dead links, link flaps
  (window + heal) and NIC crash windows are all expressed with it.

Probabilistic faults draw from *per-flow, per-class* substreams keyed
by ``(src, dst, kind)`` rather than one global stream: whether the k-th
packet of a flow is lost/corrupted/duplicated/delayed is then a pure
function of the flow, the fault class, and k.  A single global stream
consumed in wire-inspection order would make the fault pattern depend
on how same-timestamp transmissions happen to be ordered — exactly the
schedule-dependence the simlint perturbation runner exists to rule out.
(Within one flow the order is causal: a single NIC serializes its
injections, so occurrence indices are stable under tie-break
permutation.)  Every *enabled* class draws for every inspected packet,
whatever the scripted faults decide, so stream positions never depend
on blackhole windows or plan state.  Scripted :class:`DropPlan`
occurrences count in inspection order by design — their predicates are
expected to pin down the flow they target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class FaultDecision:
    """What the injector wants done with one inspected packet.

    ``drop`` wins over everything else; ``corrupt``/``duplicate``/
    ``delay_us`` compose (a duplicate of a corrupted packet carries the
    corruption on both copies).
    """

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay_us: float = 0.0


_DELIVER = FaultDecision()
_DROP = FaultDecision(drop=True)


@dataclass
class DropPlan:
    """Drop the ``occurrence``-th (1-based) packet matching ``matches``."""

    matches: Callable[[Packet], bool]
    occurrence: int = 1
    label: str = ""
    _seen: int = field(default=0, init=False)
    _armed: bool = field(default=True, init=False)

    def should_drop(self, packet: Packet) -> bool:
        if not self._armed or not self.matches(packet):
            return False
        self._seen += 1
        if self._seen == self.occurrence:
            self._armed = False
            return True
        return False

    @property
    def fired(self) -> bool:
        return not self._armed

    @property
    def seen(self) -> int:
        """Matching packets observed so far."""
        return self._seen

    def describe(self) -> str:
        name = self.label or "drop-plan"
        return (
            f"{name}: matched {self._seen} of {self.occurrence} "
            f"needed occurrences"
        )


class Blackhole:
    """A handle to one black-hole rule: drop every matching packet.

    Optionally windowed in sim time (``start_us`` inclusive,
    ``until_us`` exclusive, either side open) — a link flap is a
    windowed blackhole that "heals" when the window closes; a permanent
    link death has no window and can be ended early with :meth:`heal`.
    The handle counts its own drops for the chaos report.
    """

    __slots__ = (
        "matches", "start_us", "until_us", "label", "dropped", "healed",
        "healed_at",
    )

    def __init__(
        self,
        matches: Callable[[Packet], bool],
        start_us: Optional[float] = None,
        until_us: Optional[float] = None,
        label: str = "",
    ):
        self.matches = matches
        self.start_us = start_us
        self.until_us = until_us
        self.label = label
        self.dropped = 0
        self.healed = False
        self.healed_at: Optional[float] = None

    def active(self, now: float) -> bool:
        if self.healed:
            return False
        if self.start_us is not None and now < self.start_us:
            return False
        if self.until_us is not None and now >= self.until_us:
            return False
        return True

    def heal(self, now: Optional[float] = None) -> None:
        """Stop dropping, permanently (the link came back).

        Healing only changes what happens to packets *injected from now
        on*: everything the hole already dropped stays dropped, and a
        NACK-retransmit already in flight is delivered exactly once —
        the receiver engines suppress the extra copy a late retry round
        produces (counted ``*.rx_duplicate``), they never re-apply it.
        Idempotent; the first call's timestamp wins.
        """
        if not self.healed:
            self.healed = True
            self.healed_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        window = ""
        if self.start_us is not None or self.until_us is not None:
            window = f" [{self.start_us}, {self.until_us})"
        return f"<Blackhole {self.label or 'unnamed'}{window} dropped={self.dropped}>"


class FaultInjector:
    """Decides, per packet, what the wire does to it."""

    def __init__(
        self,
        rng: Optional[DeterministicRng] = None,
        drop_probability: float = 0.0,
        corrupt_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        delay_probability: float = 0.0,
        delay_jitter_us: float = 0.0,
    ):
        probabilities = {
            "drop_probability": drop_probability,
            "corrupt_probability": corrupt_probability,
            "duplicate_probability": duplicate_probability,
            "delay_probability": delay_probability,
        }
        for name, p in probabilities.items():
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} out of range: {p}")
        if any(probabilities.values()) and rng is None:
            raise ValueError("probabilistic faults need an rng")
        if delay_jitter_us < 0:
            raise ValueError(f"delay_jitter_us must be non-negative: {delay_jitter_us}")
        self.rng = rng
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self.duplicate_probability = duplicate_probability
        self.delay_probability = delay_probability
        self.delay_jitter_us = delay_jitter_us
        self.plans: list[DropPlan] = []
        self._blackholes: list[Blackhole] = []
        # (fault class, flow) -> substream.  The drop class keeps its
        # pre-existing "flow/..." stream names so seeded drop patterns
        # survive the addition of the other classes.
        self._flow_rngs: dict[tuple, DeterministicRng] = {}
        self._flow_drops: dict[tuple, int] = {}
        self.dropped: int = 0
        self.corrupted: int = 0
        self.duplicated: int = 0
        self.delayed: int = 0
        self.inspected: int = 0

    def _flow_rng(self, cls: str, packet: Packet) -> DeterministicRng:
        key = (cls, packet.src, packet.dst, packet.kind)
        stream = self._flow_rngs.get(key)
        if stream is None:
            stream = self.rng.substream(
                f"{cls}/{packet.src}->{packet.dst}/{packet.kind}"
            )
            self._flow_rngs[key] = stream
        return stream

    # -- scripted faults -------------------------------------------------
    def add_plan(self, plan: DropPlan) -> DropPlan:
        self.plans.append(plan)
        return plan

    def drop_nth_matching(
        self,
        matches: Callable[[Packet], bool],
        occurrence: int = 1,
        label: str = "",
    ) -> DropPlan:
        """Convenience: register and return a one-shot drop plan."""
        return self.add_plan(DropPlan(matches, occurrence, label))

    def drop_all_matching(
        self, matches: Callable[[Packet], bool], label: str = ""
    ) -> Blackhole:
        """Black-hole every packet matching ``matches`` (a dead link /
        dead peer scenario).  Returns the handle: call ``heal()`` to
        bring the link back, read ``dropped`` for its toll."""
        hole = Blackhole(matches, label=label)
        self._blackholes.append(hole)
        return hole

    def blackhole_window(
        self,
        matches: Callable[[Packet], bool],
        start_us: float,
        until_us: float,
        label: str = "",
    ) -> Blackhole:
        """Black-hole matching packets only inside a sim-time window."""
        if until_us <= start_us:
            raise ValueError(f"empty blackhole window [{start_us}, {until_us})")
        hole = Blackhole(matches, start_us=start_us, until_us=until_us, label=label)
        self._blackholes.append(hole)
        return hole

    def flap_link(
        self, a: int, b: int, start_us: float, until_us: float
    ) -> Blackhole:
        """Link flap: the a<->b pair black-holes for a window, then heals."""
        return self.blackhole_window(
            lambda p: p.src in (a, b) and p.dst in (a, b),
            start_us,
            until_us,
            label=f"flap:{a}<->{b}",
        )

    def kill_node(self, node: int, at_us: Optional[float] = None) -> Blackhole:
        """Permanent fail-stop node death: from ``at_us`` on (or
        immediately), the node neither sends nor receives, and the hole
        never heals on its own.  The NIC-side half of the kill (the
        ``crashed`` flag that silences its heartbeat loop) is the
        caller's job."""
        hole = Blackhole(
            lambda p: p.src == node or p.dst == node,
            start_us=at_us,
            label=f"kill:n{node}",
        )
        self._blackholes.append(hole)
        return hole

    def crash_window(self, node: int, start_us: float, until_us: float) -> Blackhole:
        """The wire-side half of a NIC crash: while down, the node
        neither sends nor receives.  The NIC-side half (volatile-state
        wipe at restart) is :meth:`LanaiNic.schedule_crash`."""
        return self.blackhole_window(
            lambda p: p.src == node or p.dst == node,
            start_us,
            until_us,
            label=f"crash:nic{node}",
        )

    def unfired_plans(self) -> tuple[DropPlan, ...]:
        """Plans still armed — fired plans are pruned on the spot, so
        anything left here at quiescence never matched enough packets
        (the quiescence auditor reports these as SL107)."""
        return tuple(self.plans)

    # -- the per-packet decision -----------------------------------------
    def inspect(self, packet: Packet) -> FaultDecision:
        """Decide what happens to ``packet`` (call once per transmit)."""
        self.inspected += 1
        # Draw every enabled probabilistic class before looking at the
        # scripted faults: the per-flow stream position then advances
        # once per inspected packet of that flow, unconditionally, so
        # the k-th packet's fate never depends on blackhole/plan state.
        p_drop = bool(
            self.drop_probability
            and self._flow_rng("flow", packet).bernoulli(self.drop_probability)
        )
        corrupt = bool(
            self.corrupt_probability
            and self._flow_rng("corrupt", packet).bernoulli(self.corrupt_probability)
        )
        duplicate = bool(
            self.duplicate_probability
            and self._flow_rng("dup", packet).bernoulli(self.duplicate_probability)
        )
        delay_us = 0.0
        if self.delay_probability:
            stream = self._flow_rng("delay", packet)
            if stream.bernoulli(self.delay_probability):
                delay_us = stream.uniform(0.0, self.delay_jitter_us)
            else:
                # Keep the draw count per packet constant within the
                # class stream whatever the bernoulli said.
                stream.uniform(0.0, self.delay_jitter_us)

        now = packet.sent_at if packet.sent_at is not None else 0.0
        dropped = False
        for hole in self._blackholes:
            if hole.active(now) and hole.matches(packet):
                hole.dropped += 1
                dropped = True
                break
        if not dropped:
            for plan in self.plans:
                if plan.should_drop(packet):
                    if plan.fired:
                        # One-shot plans never match again; pruning keeps
                        # the per-packet scan from growing with history.
                        self.plans.remove(plan)
                    dropped = True
                    break
        if dropped or p_drop:
            self.dropped += 1
            flow = (packet.src, packet.dst, packet.kind)
            self._flow_drops[flow] = self._flow_drops.get(flow, 0) + 1
            return _DROP
        if not (corrupt or duplicate or delay_us):
            return _DELIVER
        if corrupt:
            self.corrupted += 1
        if duplicate:
            self.duplicated += 1
        if delay_us:
            self.delayed += 1
        return FaultDecision(corrupt=corrupt, duplicate=duplicate, delay_us=delay_us)

    def should_drop(self, packet: Packet) -> bool:
        """Boolean-only view of :meth:`inspect` (legacy callers/tests)."""
        return self.inspect(packet).drop

    # -- reporting -------------------------------------------------------
    def stats(self) -> dict:
        """A serializable snapshot for the chaos report."""
        return {
            "inspected": self.inspected,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "per_flow_drops": {
                f"{src}->{dst}/{kind}": count
                for (src, dst, kind), count in sorted(self._flow_drops.items())
            },
            "blackholes": [
                {
                    "label": hole.label,
                    "dropped": hole.dropped,
                    "healed": hole.healed,
                    "healed_at": hole.healed_at,
                    "start_us": hole.start_us,
                    "until_us": hole.until_us,
                }
                for hole in self._blackholes
            ],
            "plans_armed": len(self.plans),
            "unfired_plans": [plan.describe() for plan in self.plans],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector p={self.drop_probability} plans={len(self.plans)}"
            f" dropped={self.dropped}/{self.inspected}>"
        )
