"""Fault injection for the unreliable (Myrinet) wire.

Two mechanisms, composable:

- probabilistic loss: every packet is dropped with ``drop_probability``
  using a deterministic RNG stream;
- scripted loss: a :class:`DropPlan` drops the *k*-th packet matching a
  predicate — lets reliability tests lose exactly the message they want
  (e.g. "drop the first barrier packet from node 3 to node 7 and verify
  the receiver-driven NACK recovers it").

Probabilistic drops draw from a *per-flow* substream keyed by
``(src, dst, kind)`` rather than one global stream: whether the k-th
packet of a flow is lost is then a pure function of the flow and k.
A single global stream consumed in wire-inspection order would make the
loss pattern depend on how same-timestamp transmissions happen to be
ordered — exactly the schedule-dependence the simlint perturbation
runner exists to rule out.  (Within one flow the order is causal: a
single NIC serializes its injections, so occurrence indices are stable
under tie-break permutation.)  Scripted :class:`DropPlan` occurrences
count in inspection order by design — their predicates are expected to
pin down the flow they target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng


@dataclass
class DropPlan:
    """Drop the ``occurrence``-th (1-based) packet matching ``matches``."""

    matches: Callable[[Packet], bool]
    occurrence: int = 1
    _seen: int = field(default=0, init=False)
    _armed: bool = field(default=True, init=False)

    def should_drop(self, packet: Packet) -> bool:
        if not self._armed or not self.matches(packet):
            return False
        self._seen += 1
        if self._seen == self.occurrence:
            self._armed = False
            return True
        return False

    @property
    def fired(self) -> bool:
        return not self._armed


class FaultInjector:
    """Decides, per packet, whether the wire loses it."""

    def __init__(
        self,
        rng: Optional[DeterministicRng] = None,
        drop_probability: float = 0.0,
    ):
        if drop_probability and rng is None:
            raise ValueError("probabilistic drops need an rng")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability out of range: {drop_probability}")
        self.rng = rng
        self.drop_probability = drop_probability
        self.plans: list[DropPlan] = []
        self._blackholes: list[Callable[[Packet], bool]] = []
        self._flow_rngs: dict[tuple, DeterministicRng] = {}
        self.dropped: int = 0
        self.inspected: int = 0

    def _flow_rng(self, packet: Packet) -> DeterministicRng:
        key = (packet.src, packet.dst, packet.kind)
        stream = self._flow_rngs.get(key)
        if stream is None:
            stream = self.rng.substream(f"flow/{packet.src}->{packet.dst}/{packet.kind}")
            self._flow_rngs[key] = stream
        return stream

    def add_plan(self, plan: DropPlan) -> DropPlan:
        self.plans.append(plan)
        return plan

    def drop_nth_matching(
        self, matches: Callable[[Packet], bool], occurrence: int = 1
    ) -> DropPlan:
        """Convenience: register and return a one-shot drop plan."""
        return self.add_plan(DropPlan(matches, occurrence))

    def drop_all_matching(self, matches: Callable[[Packet], bool]) -> None:
        """Black-hole every packet matching ``matches`` (a dead link /
        dead peer scenario)."""
        self._blackholes.append(matches)

    def should_drop(self, packet: Packet) -> bool:
        self.inspected += 1
        for blackhole in self._blackholes:
            if blackhole(packet):
                self.dropped += 1
                return True
        for plan in self.plans:
            if plan.should_drop(packet):
                self.dropped += 1
                if plan.fired:
                    # One-shot plans never match again; pruning keeps the
                    # per-packet scan from growing with test history.
                    self.plans.remove(plan)
                return True
        if self.drop_probability and self._flow_rng(packet).bernoulli(
            self.drop_probability
        ):
            self.dropped += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector p={self.drop_probability} plans={len(self.plans)}"
            f" dropped={self.dropped}/{self.inspected}>"
        )
