"""Fault injection for the unreliable (Myrinet) wire.

Two mechanisms, composable:

- probabilistic loss: every packet is dropped with ``drop_probability``
  using a deterministic RNG stream;
- scripted loss: a :class:`DropPlan` drops the *k*-th packet matching a
  predicate — lets reliability tests lose exactly the message they want
  (e.g. "drop the first barrier packet from node 3 to node 7 and verify
  the receiver-driven NACK recovers it").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng


@dataclass
class DropPlan:
    """Drop the ``occurrence``-th (1-based) packet matching ``matches``."""

    matches: Callable[[Packet], bool]
    occurrence: int = 1
    _seen: int = field(default=0, init=False)
    _armed: bool = field(default=True, init=False)

    def should_drop(self, packet: Packet) -> bool:
        if not self._armed or not self.matches(packet):
            return False
        self._seen += 1
        if self._seen == self.occurrence:
            self._armed = False
            return True
        return False

    @property
    def fired(self) -> bool:
        return not self._armed


class FaultInjector:
    """Decides, per packet, whether the wire loses it."""

    def __init__(
        self,
        rng: Optional[DeterministicRng] = None,
        drop_probability: float = 0.0,
    ):
        if drop_probability and rng is None:
            raise ValueError("probabilistic drops need an rng")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability out of range: {drop_probability}")
        self.rng = rng
        self.drop_probability = drop_probability
        self.plans: list[DropPlan] = []
        self._blackholes: list[Callable[[Packet], bool]] = []
        self.dropped: int = 0
        self.inspected: int = 0

    def add_plan(self, plan: DropPlan) -> DropPlan:
        self.plans.append(plan)
        return plan

    def drop_nth_matching(
        self, matches: Callable[[Packet], bool], occurrence: int = 1
    ) -> DropPlan:
        """Convenience: register and return a one-shot drop plan."""
        return self.add_plan(DropPlan(matches, occurrence))

    def drop_all_matching(self, matches: Callable[[Packet], bool]) -> None:
        """Black-hole every packet matching ``matches`` (a dead link /
        dead peer scenario)."""
        self._blackholes.append(matches)

    def should_drop(self, packet: Packet) -> bool:
        self.inspected += 1
        for blackhole in self._blackholes:
            if blackhole(packet):
                self.dropped += 1
                return True
        for plan in self.plans:
            if plan.should_drop(packet):
                self.dropped += 1
                if plan.fired:
                    # One-shot plans never match again; pruning keeps the
                    # per-packet scan from growing with test history.
                    self.plans.remove(plan)
                return True
        if self.drop_probability and self.rng.bernoulli(self.drop_probability):
            self.dropped += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector p={self.drop_probability} plans={len(self.plans)}"
            f" dropped={self.dropped}/{self.inspected}>"
        )
