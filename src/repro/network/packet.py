"""Packet representation shared by both interconnect models."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class PacketKind:
    """Wire-level packet kinds.

    ``DATA``/``ACK``/``NACK`` belong to GM's point-to-point protocol;
    ``BARRIER`` is the collective protocol's padded control packet;
    ``RDMA``/``EVENT``/``BCAST`` belong to the Quadrics model.
    ``HEARTBEAT`` is the failure detector's probe on both networks.
    ``XTRAFFIC`` is workload-layer cross-traffic: it competes for link
    bandwidth and arbitration like any other packet but terminates at a
    fabric-level sink instead of the NIC protocol stack.
    """

    DATA = "data"
    ACK = "ack"
    NACK = "nack"
    BARRIER = "barrier"
    RDMA = "rdma"
    EVENT = "event"
    BCAST = "bcast"
    HEARTBEAT = "heartbeat"
    XTRAFFIC = "xtraffic"

    ALL = (DATA, ACK, NACK, BARRIER, RDMA, EVENT, BCAST, HEARTBEAT, XTRAFFIC)


_wire_ids = itertools.count()


@dataclass
class Packet:
    """One network packet.

    ``size_bytes`` includes headers (set by the protocol layer).
    ``payload`` is protocol-defined (e.g. the barrier sequence integer —
    the paper notes "all the information a barrier message needs to
    carry along is an integer").
    """

    src: int
    dst: int
    kind: str
    size_bytes: int
    payload: Any = None
    seq: Optional[int] = None
    wire_id: int = field(default_factory=lambda: next(_wire_ids))
    sent_at: Optional[float] = None
    delivered_at: Optional[float] = None
    # Fault injection: a corrupted packet is delivered, but its CRC
    # check fails at the receiving NIC, which must discard it.
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.kind not in PacketKind.ALL:
            raise ValueError(f"unknown packet kind {self.kind!r}")
        if self.size_bytes < 0:
            raise ValueError(f"negative packet size {self.size_bytes}")

    def clone(self) -> "Packet":
        """A wire-level copy (fresh ``wire_id``) sharing every protocol
        coordinate — how the fabric models duplicate delivery.  The two
        copies are interchangeable under :func:`canonical_packet_key`."""
        dup = Packet(
            self.src,
            self.dst,
            self.kind,
            self.size_bytes,
            payload=self.payload,
            seq=self.seq,
        )
        dup.sent_at = self.sent_at
        dup.corrupted = self.corrupted
        return dup

    @property
    def latency(self) -> Optional[float]:
        """Wire latency, available once delivered."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.wire_id} {self.kind} {self.src}->{self.dst}"
            f" {self.size_bytes}B seq={self.seq}>"
        )


def _payload_id(payload: Any, attr: str) -> int:
    value = getattr(payload, attr, -1)
    return value if isinstance(value, int) else -1


def canonical_packet_key(packet: Packet) -> tuple:
    """A total order over packets by protocol coordinates, not identity.

    Used wherever same-instant packets must be sequenced deterministically
    (link arbitration, NIC receive arbitration): two packets tied on the
    simulation clock are ordered by port and protocol identifiers, never
    by scheduler tie-breaking or ``id()``.  Packets equal under this key
    are interchangeable on the wire.
    """
    payload = packet.payload
    return (
        packet.src,
        packet.dst,
        packet.kind,
        packet.seq if packet.seq is not None else -1,
        _payload_id(payload, "seq"),
        _payload_id(payload, "phase"),
        _payload_id(payload, "requester"),
    )
