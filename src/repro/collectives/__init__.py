"""The paper's contribution: NIC-based barriers and their baselines.

Layout:

- :mod:`~repro.collectives.algorithms` — the three barrier message
  schedules of §5: gather-broadcast, pairwise-exchange, dissemination.
- :mod:`~repro.collectives.group` — process groups (rank ↔ node maps).
- :mod:`~repro.collectives.messages` — barrier wire messages and host
  notifications.
- :mod:`~repro.collectives.protocol` — the collective protocol state:
  the single send record with a bit vector, and the receiver-driven
  retransmission bookkeeping (§3, §6.3).
- :mod:`~repro.collectives.myrinet_engines` — the two NIC-resident
  barrier engines for Myrinet: the **direct scheme** (prior work: NIC
  triggers messages through the p2p protocol) and the **collective
  protocol scheme** (this paper: dedicated queue, static packet, bit
  vector, NACKs).
- :mod:`~repro.collectives.host_barrier` — host-based barrier over GM
  send/recv (the baseline of Figs. 5-6).
- :mod:`~repro.collectives.quadrics_barrier` — NIC-based barrier over
  chained RDMA descriptors on Elan3 (§7).
- :mod:`~repro.collectives.schedule_ir` — the compiled collective
  schedule IR (ordered send/recv/reduce/dma ops per rank) the data
  engines replay; cached process-wide and per group.
- :mod:`~repro.collectives.nonblocking` — non-blocking host APIs
  (``nic_ibarrier`` & friends) returning request handles with
  ``test``/``wait``.
- :mod:`~repro.collectives.tuning` — persisted algorithm decision
  tables the auto-tuner emits and ``ProcessGroup`` consults.
"""

from repro.collectives.algorithms import (
    BarrierSchedule,
    Phase,
    configure_schedule_cache,
    dissemination,
    gather_broadcast,
    make_schedule,
    pairwise_exchange,
    schedule_cache_stats,
)
from repro.collectives.failures import (
    FailureReason,
    Revoked,
    ScheduleVerificationError,
    classify_reason,
    is_revocation,
)
from repro.collectives.group import (
    GroupIdAllocator,
    ProcessGroup,
    reset_group_ids,
)
from repro.collectives.membership import MembershipView, PeerDead
from repro.collectives.messages import (
    BarrierDone,
    BarrierFailed,
    BarrierFailure,
    BarrierMsg,
    BarrierNack,
)
from repro.collectives.protocol import (
    CollectiveGroupState,
    CollectiveScheduleLayout,
    CollectiveSendRecord,
)
from repro.collectives.data_engine import (
    CollectiveFailure,
    DataCollDone,
    DataCollFailed,
)
from repro.collectives.myrinet_engines import (
    NicCollectiveBarrierEngine,
    NicDirectBarrierEngine,
    nic_barrier,
    nic_barrier_teardown,
    nic_group_revoke,
)
from repro.collectives.host_barrier import host_barrier
from repro.collectives.quadrics_barrier import (
    QuadricsChainedBarrier,
    prearm_chained_group,
)
from repro.collectives.broadcast import (
    BcastDone,
    BcastMsg,
    NicBroadcastEngine,
    nic_broadcast_recv,
    nic_broadcast_root,
)
from repro.collectives.allgather import (
    AllgatherDone,
    NicAllgatherEngine,
    nic_allgather,
)
from repro.collectives.alltoall import (
    AlltoallDone,
    NicAlltoallEngine,
    nic_alltoall,
)
from repro.collectives.allreduce import (
    NicAllreduceEngine,
    nic_allreduce,
)
from repro.collectives.reduce import (
    NicReduceEngine,
    nic_reduce,
)
from repro.collectives.schedule_ir import (
    CollectiveSchedule,
    ScheduleOp,
    compile_schedule,
    reduce_safe,
)
from repro.collectives.nonblocking import (
    CollectiveRequest,
    nic_iallgather,
    nic_iallreduce,
    nic_ialltoall,
    nic_ibarrier,
    nic_ibcast,
    nic_ireduce,
)
from repro.collectives.tuning import (
    DecisionTable,
    install_decision_table,
    pick_algorithm,
)

__all__ = [
    "BarrierSchedule",
    "Phase",
    "dissemination",
    "pairwise_exchange",
    "gather_broadcast",
    "make_schedule",
    "ProcessGroup",
    "GroupIdAllocator",
    "reset_group_ids",
    "BarrierMsg",
    "BarrierNack",
    "BarrierDone",
    "BarrierFailed",
    "BarrierFailure",
    "CollectiveGroupState",
    "CollectiveScheduleLayout",
    "CollectiveSendRecord",
    "CollectiveFailure",
    "DataCollDone",
    "DataCollFailed",
    "NicCollectiveBarrierEngine",
    "NicDirectBarrierEngine",
    "nic_barrier",
    "nic_barrier_teardown",
    "nic_group_revoke",
    "host_barrier",
    "FailureReason",
    "Revoked",
    "ScheduleVerificationError",
    "classify_reason",
    "is_revocation",
    "MembershipView",
    "PeerDead",
    "QuadricsChainedBarrier",
    "NicBroadcastEngine",
    "BcastMsg",
    "BcastDone",
    "nic_broadcast_root",
    "nic_broadcast_recv",
    "NicAllgatherEngine",
    "AllgatherDone",
    "nic_allgather",
    "NicAlltoallEngine",
    "AlltoallDone",
    "nic_alltoall",
    "NicAllreduceEngine",
    "nic_allreduce",
    "NicReduceEngine",
    "nic_reduce",
    "CollectiveSchedule",
    "ScheduleOp",
    "compile_schedule",
    "reduce_safe",
    "CollectiveRequest",
    "nic_ibarrier",
    "nic_ibcast",
    "nic_iallgather",
    "nic_iallreduce",
    "nic_ireduce",
    "nic_ialltoall",
    "DecisionTable",
    "install_decision_table",
    "pick_algorithm",
    "configure_schedule_cache",
    "schedule_cache_stats",
]
