"""NIC-resident barrier engines for Myrinet.

Two engines share the same schedule-execution state machine and differ
exactly where the paper says they differ:

- :class:`NicDirectBarrierEngine` — the *direct scheme* of the prior
  work (Buntinas et al.): the NIC detects arrivals and triggers the next
  barrier messages, but every message travels the full point-to-point
  send path (token queue, round-robin scheduling, packet allocation,
  per-packet send record, ACK + timeout retransmission).
- :class:`NicCollectiveBarrierEngine` — this paper's scheme: the
  group's dedicated queue means a trigger goes straight to injection of
  the padded static packet; bookkeeping is one bit-vector send record;
  reliability is receiver-driven NACK retransmission with *no ACKs*,
  halving the packet count.

Both engines are driven by the MCP's receive loop (arrivals) and engine
command loop (host start commands + NACK timeouts), so all their
processing contends for the LANai processor like any other MCP task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.collectives.failures import FailureReason, Revoked
from repro.collectives.group import ProcessGroup
from repro.collectives.messages import (
    BarrierDone,
    BarrierFailed,
    BarrierFailure,
    BarrierMsg,
    BarrierNack,
)
from repro.collectives.protocol import CollectiveGroupState, CollectiveScheduleLayout
from repro.myrinet.structures import SendToken
from repro.network import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort
    from repro.myrinet.nic import LanaiNic


class _NicBarrierEngineBase:
    """Schedule execution shared by both NIC-based schemes."""

    #: subclasses set this: does the engine use receiver-driven NACKs?
    uses_nack_reliability = False

    def __init__(self, nic: "LanaiNic", group: ProcessGroup, rank: int):
        if group.node_of(rank) != nic.node_id:
            raise ValueError(
                f"rank {rank} of group {group.group_id} lives on node "
                f"{group.node_of(rank)}, not on {nic.name}"
            )
        self.nic = nic
        self.group = group
        self.rank = rank
        self.phases = group.schedule.phases(rank)
        # The schedule's bit maps are identical for every barrier this
        # rank runs: derive them once and share across sequences.
        self._layout = CollectiveScheduleLayout(self.phases)
        self.states: dict[int, CollectiveGroupState] = {}
        self.barriers_completed = 0
        # Per-seq retirement: non-blocking barriers can complete out of
        # order (a NACK-recovered seq finishing after a younger one), so
        # duplicate suppression tracks recently-retired sequences in a
        # bounded set (aligned with coll_archive_depth) plus the floor
        # the set has pruned past — not a single high-watermark.
        self.retired_recent: dict[int, None] = {}
        self.done_floor = -1
        # Escalation state: failed barriers (seq -> reason), armed
        # receiver-side watchdogs (direct scheme), and the teardown
        # latch a host sets after catching a BarrierFailure.
        self.failed: dict[int, str] = {}
        self._deadlines: dict[int, Any] = {}
        self.closed = False
        nic.register_engine(group.group_id, self)

    # ------------------------------------------------------------------
    def _retired(self, seq: int) -> bool:
        return (
            seq <= self.done_floor
            or seq in self.retired_recent
            or seq in self.failed
        )

    def _retire_seq(self, seq: int) -> None:
        self.retired_recent[seq] = None
        while len(self.retired_recent) > self.nic.params.coll_archive_depth:
            pruned = min(self.retired_recent)
            del self.retired_recent[pruned]
            self.done_floor = max(self.done_floor, pruned)

    def _state(self, seq: int) -> CollectiveGroupState:
        state = self.states.get(seq)
        if state is None:
            state = CollectiveGroupState(
                seq, self.phases, self.nic.sim.now, self._layout
            )
            self.states[seq] = state
        return state

    # ------------------------------------------------------------------
    # MCP dispatch targets
    # ------------------------------------------------------------------
    def on_command(self, command: tuple):
        kind = command[0]
        if kind == "start":
            yield from self._on_start(command[1])
        elif kind == "timeout":
            yield from self._on_nack_timeout(command[1])
        elif kind in ("deadline", "peer-dead"):
            yield from self._on_failure_signal(command[1], kind)
        elif kind == "teardown":
            yield from self._on_teardown()
        elif kind == "epoch":
            yield from self.on_epoch_change()
        else:
            raise ValueError(f"unknown engine command {command!r}")

    def _on_start(self, seq: int):
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_start, "coll_start")
        if self.closed:
            # The group's epoch died while this start crossed the bus:
            # resolve the host immediately instead of parking it on a
            # sequence no engine will ever run.
            nic.tracer.count("coll.start_after_revoke")
            self.failed[seq] = FailureReason.GROUP_REVOKED.value
            yield from nic.notify_host(
                BarrierFailed(
                    self.group.group_id,
                    seq,
                    FailureReason.GROUP_REVOKED.value,
                    failed_at=nic.sim.now,
                )
            )
            return
        state = self._state(seq)
        state.started = True
        state.start_time = nic.sim.now
        if self.uses_nack_reliability:
            self._arm_nack_timer(state)
        self._arm_deadline(state)
        yield from self._progress(seq)

    def on_barrier_packet(self, packet: Packet):
        msg: BarrierMsg = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_trigger, "coll_trigger")
        if self.closed:
            nic.tracer.count("coll.rx_after_teardown")
            return
        if msg.seq in self.failed:
            # The barrier failed here; stray retransmissions from peers
            # still fighting their own budgets are expected.
            nic.tracer.count("coll.rx_after_failure")
            return
        if self._retired(msg.seq):
            # Late duplicate (a retransmission that raced the original):
            # the barrier already completed here.
            nic.tracer.count("coll.rx_duplicate")
            return
        state = self._state(msg.seq)
        if not state.mark_arrived(msg.sender):
            if msg.sender in self._layout.bit_of:
                # A known sender whose bit is already set: a retransmit
                # (e.g. a NACK answered twice across a healed link)
                # raced the original.  Exactly-once delivery holds — the
                # duplicate is counted and discarded.
                nic.tracer.count("coll.rx_duplicate")
            else:
                nic.tracer.count("coll.rx_unexpected_sender")
            return
        if state.started and not state.complete:
            yield from self._progress(msg.seq)

    # ------------------------------------------------------------------
    # The schedule state machine
    # ------------------------------------------------------------------
    def _progress(self, seq: int):
        state = self._state(seq)
        if state.in_progress:
            # Another MCP loop is already driving this barrier; it will
            # re-check arrivals after its pending sends.
            return
        state.in_progress = True
        try:
            while state.phase < len(self.phases):
                phase = self.phases[state.phase]
                if phase.send_first and not state.sent_current_phase:
                    state.sent_current_phase = True
                    for dst in phase.sends:
                        yield from self._send_message(state, state.phase, dst)
                if not state.phase_recvs_complete(state.phase):
                    return
                if not phase.send_first and not state.sent_current_phase:
                    state.sent_current_phase = True
                    for dst in phase.sends:
                        yield from self._send_message(state, state.phase, dst)
                state.phase += 1
                state.sent_current_phase = False
            if not state.complete:
                state.complete = True
                yield from self._complete(state)
        finally:
            state.in_progress = False

    def _complete(self, state: CollectiveGroupState):
        nic = self.nic
        state.cancel_nack_timer()
        self._cancel_deadline(state.seq)
        yield from nic.cpu_task(nic.params.t_coll_complete, "coll_complete")
        self.barriers_completed += 1
        nic.tracer.count("coll.barrier_complete")
        del self.states[state.seq]
        self._retire_seq(state.seq)
        yield from nic.notify_host(
            BarrierDone(self.group.group_id, state.seq, completed_at=nic.sim.now)
        )

    # ------------------------------------------------------------------
    # Escalation: fail instead of hang
    # ------------------------------------------------------------------
    def _fail(self, seq: int, reason: str):
        """Tear down one barrier's state and surface the failure.

        Extends the retry-exhaustion leak fix: the engine state, its
        NACK timer, and any armed deadline are released *before* the
        host hears about the failure, so a failed barrier leaves the
        NIC quiescent.
        """
        nic = self.nic
        state = self.states.pop(seq)
        state.cancel_nack_timer()
        self._cancel_deadline(seq)
        self.failed[seq] = reason
        nic.tracer.count("coll.barrier_failed")
        yield from nic.notify_host(
            BarrierFailed(self.group.group_id, seq, reason, failed_at=nic.sim.now)
        )

    def _on_failure_signal(self, seq: int, origin: str):
        state = self.states.get(seq)
        if state is None or state.complete or not state.started:
            # Completed / already failed / not entered before the
            # signal landed: nothing to escalate.
            self.nic.tracer.count("coll.stale_failure_signal")
            return
        if origin == "deadline":
            self.nic.tracer.count("coll.deadline_exceeded")
            reason = FailureReason.BARRIER_DEADLINE.value
        else:
            self.nic.tracer.count("coll.peer_dead_escalation")
            reason = FailureReason.PEER_DEAD.value
        yield from self._fail(seq, reason)

    def _on_teardown(self):
        """Host closed the group after catching a failure: drop every
        remaining state (passive early arrivals included) and discard
        all future traffic for the group."""
        nic = self.nic
        self.closed = True
        for seq in sorted(self.states):
            state = self.states.pop(seq)
            state.cancel_nack_timer()
            nic.tracer.count("coll.teardown_state_dropped")
        for seq in sorted(self._deadlines):
            self._deadlines.pop(seq).cancel()
        return
        yield  # pragma: no cover - makes this a generator

    def on_epoch_change(self):
        """The group's epoch died (a peer was declared dead and the
        survivors repaired onto a new group): deterministically abort
        every in-flight sequence.

        Started, incomplete sequences fail up to the host with the
        typed ``group-revoked`` reason through the same ``_fail``
        machinery retry exhaustion uses, so waiting hosts (blocking or
        non-blocking) resolve instead of hanging; passive early-arrival
        states are dropped silently.  The engine then closes — late
        traffic and late starts for the dead epoch are discarded or
        refused with ``group-revoked``.
        """
        nic = self.nic
        self.closed = True
        for seq in sorted(self.states):
            state = self.states[seq]
            if state.started and not state.complete:
                yield from self._fail(seq, FailureReason.GROUP_REVOKED.value)
            else:
                state.cancel_nack_timer()
                del self.states[seq]
                nic.tracer.count("coll.epoch_state_dropped")
        for seq in sorted(self._deadlines):
            self._deadlines.pop(seq).cancel()

    def on_nic_restart(self):
        """The LANai restarted: engine SRAM state is gone.  Started,
        incomplete barriers fail up to the host (the driver sees the
        restart); passive early-arrival states are silently lost —
        peers recover them through their own reliability machinery."""
        nic = self.nic
        for seq in sorted(self.states):
            state = self.states[seq]
            if state.started and not state.complete:
                yield from self._fail(seq, FailureReason.NIC_RESTART.value)
            else:
                state.cancel_nack_timer()
                del self.states[seq]
                nic.tracer.count("coll.crash_state_dropped")

    # -- deadline plumbing (armed only by the direct scheme) -----------
    def _arm_deadline(self, state: CollectiveGroupState) -> None:
        pass

    def _cancel_deadline(self, seq: int) -> None:
        deadline = self._deadlines.pop(seq, None)
        if deadline is not None:
            deadline.cancel()

    # -- subclass hooks ----------------------------------------------------
    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        raise NotImplementedError

    def _arm_nack_timer(self, state: CollectiveGroupState) -> None:
        raise NotImplementedError

    def _on_nack_timeout(self, seq: int):
        raise NotImplementedError

    def on_nack(self, packet: Packet):
        raise NotImplementedError


class NicDirectBarrierEngine(_NicBarrierEngineBase):
    """Prior work: NIC-triggered barrier over the p2p protocol.

    Each barrier message is a regular GM send: the engine builds a send
    token (``t_sdma_event``), queues it to the destination's send queue,
    and the MCP send scheduler does the rest — packet allocation, a
    per-packet send record, injection, and ACK/timeout reliability.
    """

    uses_nack_reliability = False

    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        nic = self.nic
        state.send_record.mark_sent(phase, dst)
        yield from nic.cpu_task(nic.params.t_sdma_event, "build_token")
        token = SendToken(
            dst=self.group.node_of(dst),
            size_bytes=nic.params.barrier_payload_bytes,
            payload=BarrierMsg(self.group.group_id, state.seq, self.rank, phase),
            kind=PacketKind.BARRIER,
            notify_host=False,
        )
        nic.enqueue_send_token(token)

    def _arm_deadline(self, state: CollectiveGroupState) -> None:
        # The ACK-based scheme's receivers have no reliability of their
        # own: if an expected sender dies, nothing here would ever time
        # out.  A per-barrier watchdog sized from the sender-side
        # exhaustion horizon (so it cannot fire before a live peer's
        # retries are spent) converts that hang into a typed failure.
        nic = self.nic
        self._deadlines[state.seq] = nic.sim.schedule(
            nic.params.direct_barrier_deadline_us, self._deadline_fired, state.seq
        )

    def _deadline_fired(self, seq: int) -> None:
        self._deadlines.pop(seq, None)
        if seq in self.states:
            self.nic.post_engine_command((self.group.group_id, "deadline", seq))

    def on_nack(self, packet: Packet):
        # The direct scheme has no receiver-driven reliability; a NACK
        # arriving here indicates a misconfigured experiment.
        self.nic.tracer.count("coll.direct_unexpected_nack")
        return
        yield  # pragma: no cover - makes this a generator


class NicCollectiveBarrierEngine(_NicBarrierEngineBase):
    """This paper's scheme: the separate collective protocol (§3, §6).

    Sends bypass the p2p machinery entirely: the group's send token is
    permanently at the front of its dedicated queue and the message
    rides the padded static ACK packet, so a trigger costs only
    ``t_coll_trigger`` + injection.  Reliability is receiver-driven:
    no ACKs; a receiver missing a message after ``nack_timeout_us``
    NACKs the sender, which re-injects from its bit-vector record.
    """

    uses_nack_reliability = True

    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        nic = self.nic
        state.send_record.mark_sent(phase, dst)
        yield from nic.fast_inject(
            self.group.node_of(dst),
            BarrierMsg(self.group.group_id, state.seq, self.rank, phase),
        )

    # -- receiver-driven retransmission ---------------------------------
    def _arm_nack_timer(self, state: CollectiveGroupState) -> None:
        # The interval backs off with the round count: a straggler is
        # probed at the base cadence, a dead peer ever more cheaply.
        nic = self.nic
        state.nack_timer = nic.sim.schedule(
            nic.params.nack_backoff_us(state.nack_rounds),
            self._nack_timer_fired,
            state.seq,
        )

    def _nack_timer_fired(self, seq: int) -> None:
        if seq in self.states:
            self.nic.post_engine_command((self.group.group_id, "timeout", seq))

    def _on_nack_timeout(self, seq: int):
        state = self.states.get(seq)
        if state is None or state.complete or not state.started:
            return
        nic = self.nic
        state.nack_rounds += 1
        if state.nack_rounds > nic.params.nack_max_rounds:
            # Budget exhausted: the missing peers are dead.  Escalate a
            # typed failure instead of silently abandoning the barrier
            # (which left the host waiting forever).
            nic.tracer.count("coll.gave_up")
            yield from self._fail(seq, FailureReason.NACK_BUDGET.value)
            return
        for phase_idx, sender in state.missing_senders():
            nic.tracer.count("coll.nack_timeout")
            yield from nic.send_nack(
                self.group.node_of(sender),
                BarrierNack(
                    self.group.group_id, seq, phase_idx, sender, self.rank
                ),
            )
        self._arm_nack_timer(state)

    def on_nack(self, packet: Packet):
        """A peer is missing one of our messages: retransmit it."""
        nack: BarrierNack = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_nack_process, "nack_process")
        if self.closed or nack.seq in self.failed:
            # This barrier failed here; the requester is about to fail
            # (or already has) through its own budget.
            nic.tracer.count("coll.nack_after_failure")
            return
        state = self.states.get(nack.seq)
        if state is None:
            if not self._retired(nack.seq):
                # We have not entered this barrier at all yet: nothing
                # has been sent, so there is nothing to resend — the
                # message goes out through normal progress once the
                # host starts the barrier here.  (Conflating this with
                # "completed here" used to phantom-resend a message for
                # a barrier this rank never entered.)
                nic.tracer.count("coll.nack_premature")
                return
        elif not state.send_record.was_sent(nack.phase, nack.requester):
            # We genuinely have not sent it yet (we are behind, not the
            # wire); it will go out through normal progress.
            nic.tracer.count("coll.nack_premature")
            return
        # Either recorded as sent, or the barrier already completed here
        # (state pruned) — both mean the original left this NIC: resend.
        nic.tracer.count("coll.nack_retransmit")
        yield from nic.fast_inject(
            self.group.node_of(nack.requester),
            BarrierMsg(self.group.group_id, nack.seq, self.rank, nack.phase),
        )


# ----------------------------------------------------------------------
# Host-side entry points
# ----------------------------------------------------------------------
def barrier_matcher(group: ProcessGroup, seq: int):
    """Event matcher for one barrier's completion or failure."""
    return (
        lambda ev: isinstance(ev, (BarrierDone, BarrierFailed))
        and ev.group_id == group.group_id
        and ev.seq == seq
    )


def interpret_barrier(done, node_id: int):
    """Turn a barrier completion event into a result, raising typed
    failures (:class:`Revoked` when the epoch died, plain
    :class:`BarrierFailure` otherwise)."""
    if isinstance(done, BarrierFailed):
        if done.reason == FailureReason.GROUP_REVOKED.value:
            raise Revoked(done.group_id, done.seq, node=node_id,
                          failed_at=done.failed_at)
        raise BarrierFailure(done.group_id, done.seq, done.reason, node=node_id)
    return done


def post_barrier(port: "GmPort", group: ProcessGroup, seq: int):
    """Non-blocking half: one PIO starts the NIC engine; the host is
    free until it waits on the completion event."""
    yield from port.cpu.compute(port.cpu.params.barrier_call_us, "barrier_call")
    yield from port.pci.pio_write()
    port.nic.post_engine_command((group.group_id, "start", seq))


def wait_barrier(port: "GmPort", group: ProcessGroup, seq: int):
    """Blocking wait for a previously-posted barrier."""
    done = yield from port.recv_matching(barrier_matcher(group, seq))
    return interpret_barrier(done, port.nic.node_id)


def nic_barrier(port: "GmPort", group: ProcessGroup, seq: int):
    """Host side of a NIC-based barrier (either engine).

    One PIO to start, then the host is completely uninvolved until the
    completion (or failure) event appears in its receive-event queue —
    the entire point of NIC offload.  A failure event is raised as
    :class:`BarrierFailure`.
    """
    yield from post_barrier(port, group, seq)
    done = yield from wait_barrier(port, group, seq)
    return done


def nic_barrier_teardown(port: "GmPort", group: ProcessGroup):
    """Host side of closing a group's engine after a failure.

    One PIO; the engine drops all remaining per-barrier state and
    discards late traffic for the group, so an application that caught
    a :class:`BarrierFailure` and stopped using the group leaves a
    quiescent NIC behind.
    """
    yield from port.pci.pio_write()
    port.nic.post_engine_command((group.group_id, "teardown", -1))


def nic_group_revoke(port: "GmPort", group: ProcessGroup):
    """Host side of revoking a group's engine on an epoch change.

    One PIO; the engine aborts every started sequence with the typed
    ``group-revoked`` reason (resolving any parked waiter) and closes.
    """
    yield from port.pci.pio_write()
    port.nic.post_engine_command((group.group_id, "epoch", -1))
