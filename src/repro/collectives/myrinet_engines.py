"""NIC-resident barrier engines for Myrinet.

Two engines share the same schedule-execution state machine and differ
exactly where the paper says they differ:

- :class:`NicDirectBarrierEngine` — the *direct scheme* of the prior
  work (Buntinas et al.): the NIC detects arrivals and triggers the next
  barrier messages, but every message travels the full point-to-point
  send path (token queue, round-robin scheduling, packet allocation,
  per-packet send record, ACK + timeout retransmission).
- :class:`NicCollectiveBarrierEngine` — this paper's scheme: the
  group's dedicated queue means a trigger goes straight to injection of
  the padded static packet; bookkeeping is one bit-vector send record;
  reliability is receiver-driven NACK retransmission with *no ACKs*,
  halving the packet count.

Both engines are driven by the MCP's receive loop (arrivals) and engine
command loop (host start commands + NACK timeouts), so all their
processing contends for the LANai processor like any other MCP task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.collectives.group import ProcessGroup
from repro.collectives.messages import BarrierDone, BarrierMsg, BarrierNack
from repro.collectives.protocol import CollectiveGroupState
from repro.myrinet.structures import SendToken
from repro.network import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort
    from repro.myrinet.nic import LanaiNic


class _NicBarrierEngineBase:
    """Schedule execution shared by both NIC-based schemes."""

    #: subclasses set this: does the engine use receiver-driven NACKs?
    uses_nack_reliability = False

    def __init__(self, nic: "LanaiNic", group: ProcessGroup, rank: int):
        if group.node_of(rank) != nic.node_id:
            raise ValueError(
                f"rank {rank} of group {group.group_id} lives on node "
                f"{group.node_of(rank)}, not on {nic.name}"
            )
        self.nic = nic
        self.group = group
        self.rank = rank
        self.phases = group.schedule.phases(rank)
        self.states: dict[int, CollectiveGroupState] = {}
        self.barriers_completed = 0
        self.done_through = -1  # barriers complete in order per rank
        nic.register_engine(group.group_id, self)

    # ------------------------------------------------------------------
    def _state(self, seq: int) -> CollectiveGroupState:
        state = self.states.get(seq)
        if state is None:
            state = CollectiveGroupState(seq, self.phases, self.nic.sim.now)
            self.states[seq] = state
        return state

    # ------------------------------------------------------------------
    # MCP dispatch targets
    # ------------------------------------------------------------------
    def on_command(self, command: tuple):
        kind = command[0]
        if kind == "start":
            yield from self._on_start(command[1])
        elif kind == "timeout":
            yield from self._on_nack_timeout(command[1])
        else:
            raise ValueError(f"unknown engine command {command!r}")

    def _on_start(self, seq: int):
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_start, "coll_start")
        state = self._state(seq)
        state.started = True
        state.start_time = nic.sim.now
        if self.uses_nack_reliability:
            self._arm_nack_timer(state)
        yield from self._progress(seq)

    def on_barrier_packet(self, packet: Packet):
        msg: BarrierMsg = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_trigger, "coll_trigger")
        if msg.seq <= self.done_through:
            # Late duplicate (a retransmission that raced the original):
            # the barrier already completed here.
            nic.tracer.count("coll.rx_duplicate")
            return
        state = self._state(msg.seq)
        if not state.mark_arrived(msg.sender):
            nic.tracer.count("coll.rx_unexpected_sender")
            return
        if state.started and not state.complete:
            yield from self._progress(msg.seq)

    # ------------------------------------------------------------------
    # The schedule state machine
    # ------------------------------------------------------------------
    def _progress(self, seq: int):
        state = self._state(seq)
        if state.in_progress:
            # Another MCP loop is already driving this barrier; it will
            # re-check arrivals after its pending sends.
            return
        state.in_progress = True
        try:
            while state.phase < len(self.phases):
                phase = self.phases[state.phase]
                if phase.send_first and not state.sent_current_phase:
                    state.sent_current_phase = True
                    for dst in phase.sends:
                        yield from self._send_message(state, state.phase, dst)
                if not state.phase_recvs_complete(state.phase):
                    return
                if not phase.send_first and not state.sent_current_phase:
                    state.sent_current_phase = True
                    for dst in phase.sends:
                        yield from self._send_message(state, state.phase, dst)
                state.phase += 1
                state.sent_current_phase = False
            if not state.complete:
                state.complete = True
                yield from self._complete(state)
        finally:
            state.in_progress = False

    def _complete(self, state: CollectiveGroupState):
        nic = self.nic
        state.cancel_nack_timer()
        yield from nic.cpu_task(nic.params.t_coll_complete, "coll_complete")
        self.barriers_completed += 1
        nic.tracer.count("coll.barrier_complete")
        del self.states[state.seq]
        self.done_through = max(self.done_through, state.seq)
        yield from nic.notify_host(
            BarrierDone(self.group.group_id, state.seq, completed_at=nic.sim.now)
        )

    # -- subclass hooks ----------------------------------------------------
    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        raise NotImplementedError

    def _arm_nack_timer(self, state: CollectiveGroupState) -> None:
        raise NotImplementedError

    def _on_nack_timeout(self, seq: int):
        raise NotImplementedError

    def on_nack(self, packet: Packet):
        raise NotImplementedError


class NicDirectBarrierEngine(_NicBarrierEngineBase):
    """Prior work: NIC-triggered barrier over the p2p protocol.

    Each barrier message is a regular GM send: the engine builds a send
    token (``t_sdma_event``), queues it to the destination's send queue,
    and the MCP send scheduler does the rest — packet allocation, a
    per-packet send record, injection, and ACK/timeout reliability.
    """

    uses_nack_reliability = False

    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        nic = self.nic
        state.send_record.mark_sent(phase, dst)
        yield from nic.cpu_task(nic.params.t_sdma_event, "build_token")
        token = SendToken(
            dst=self.group.node_of(dst),
            size_bytes=nic.params.barrier_payload_bytes,
            payload=BarrierMsg(self.group.group_id, state.seq, self.rank, phase),
            kind=PacketKind.BARRIER,
            notify_host=False,
        )
        nic.enqueue_send_token(token)

    def on_nack(self, packet: Packet):
        # The direct scheme has no receiver-driven reliability; a NACK
        # arriving here indicates a misconfigured experiment.
        self.nic.tracer.count("coll.direct_unexpected_nack")
        return
        yield  # pragma: no cover - makes this a generator


class NicCollectiveBarrierEngine(_NicBarrierEngineBase):
    """This paper's scheme: the separate collective protocol (§3, §6).

    Sends bypass the p2p machinery entirely: the group's send token is
    permanently at the front of its dedicated queue and the message
    rides the padded static ACK packet, so a trigger costs only
    ``t_coll_trigger`` + injection.  Reliability is receiver-driven:
    no ACKs; a receiver missing a message after ``nack_timeout_us``
    NACKs the sender, which re-injects from its bit-vector record.
    """

    uses_nack_reliability = True

    def _send_message(self, state: CollectiveGroupState, phase: int, dst: int):
        nic = self.nic
        state.send_record.mark_sent(phase, dst)
        yield from nic.fast_inject(
            self.group.node_of(dst),
            BarrierMsg(self.group.group_id, state.seq, self.rank, phase),
        )

    # -- receiver-driven retransmission ---------------------------------
    def _arm_nack_timer(self, state: CollectiveGroupState) -> None:
        nic = self.nic
        state.nack_timer = nic.sim.schedule(
            nic.params.nack_timeout_us, self._nack_timer_fired, state.seq
        )

    def _nack_timer_fired(self, seq: int) -> None:
        if seq in self.states:
            self.nic.post_engine_command((self.group.group_id, "timeout", seq))

    def _on_nack_timeout(self, seq: int):
        state = self.states.get(seq)
        if state is None or state.complete or not state.started:
            return
        nic = self.nic
        state.nack_rounds += 1
        if state.nack_rounds > nic.params.max_retries:
            nic.tracer.count("coll.gave_up")
            return
        for phase_idx, sender in state.missing_senders():
            nic.tracer.count("coll.nack_timeout")
            yield from nic.send_nack(
                self.group.node_of(sender),
                BarrierNack(
                    self.group.group_id, seq, phase_idx, sender, self.rank
                ),
            )
        self._arm_nack_timer(state)

    def on_nack(self, packet: Packet):
        """A peer is missing one of our messages: retransmit it."""
        nack: BarrierNack = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_nack_process, "nack_process")
        state = self.states.get(nack.seq)
        if state is not None and not state.send_record.was_sent(
            nack.phase, nack.requester
        ):
            # We genuinely have not sent it yet (we are behind, not the
            # wire); it will go out through normal progress.
            nic.tracer.count("coll.nack_premature")
            return
        # Either recorded as sent, or the barrier already completed here
        # (state pruned) — both mean the original left this NIC: resend.
        nic.tracer.count("coll.nack_retransmit")
        yield from nic.fast_inject(
            self.group.node_of(nack.requester),
            BarrierMsg(self.group.group_id, nack.seq, self.rank, nack.phase),
        )


# ----------------------------------------------------------------------
# Host-side entry point
# ----------------------------------------------------------------------
def nic_barrier(port: "GmPort", group: ProcessGroup, seq: int):
    """Host side of a NIC-based barrier (either engine).

    One PIO to start, then the host is completely uninvolved until the
    completion event appears in its receive-event queue — the entire
    point of NIC offload.
    """
    yield from port.cpu.compute(port.cpu.params.barrier_call_us, "barrier_call")
    yield from port.pci.pio_write()
    port.nic.post_engine_command((group.group_id, "start", seq))
    done = yield from port.recv_matching(
        lambda ev: isinstance(ev, BarrierDone)
        and ev.group_id == group.group_id
        and ev.seq == seq
    )
    return done
