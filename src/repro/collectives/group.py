"""Process groups: rank ↔ node mapping for collective operations.

The paper's protocol keeps per-group state on every NIC ("a separate
queue for each group of processes"); a :class:`ProcessGroup` is the
shared description of one such group.  It also carries the group's
compiled collective schedules (the libnbc per-communicator cache):
``collective_schedule()`` compiles a :class:`CollectiveSchedule` once
per ``(collective, algorithm, payload, root)`` and replays it on every
subsequent start.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Sequence

from repro.collectives.algorithms import BarrierSchedule, make_schedule
from repro.collectives.failures import ScheduleVerificationError
from repro.collectives.schedule_ir import CollectiveSchedule, compile_schedule
from repro.collectives.tuning import pick_algorithm

class GroupIdAllocator:
    """Deterministic source of group ids.

    Group ids used to come from a process-global ``itertools.count`` —
    which made every id (and the ``parent_group_id`` lineage) depend on
    how many groups *any* earlier test or sweep in the same process had
    created.  Traces and id-keyed artifacts then differed between a
    fresh interpreter and a warm one.  Each cluster now owns its own
    allocator (``cluster.group_ids``), so two back-to-back builds in
    one process hand out identical ids.
    """

    def __init__(self, start: int = 1):
        self._start = start
        self._counter = itertools.count(start)

    def allocate(self) -> int:
        return next(self._counter)

    def reset(self) -> None:
        """Rewind to the initial id (fresh-process numbering)."""
        self._counter = itertools.count(self._start)


#: Fallback allocator for groups built without a cluster context
#: (direct ``ProcessGroup(...)`` construction in tests / tools).
_default_allocator = GroupIdAllocator()


def reset_group_ids() -> None:
    """Reset the fallback allocator to fresh-process numbering."""
    _default_allocator.reset()


#: (collective, algorithm, model_n, payload) -> model-check findings.
_model_verdicts: dict[tuple, list] = {}


class ProcessGroup:
    """An ordered set of nodes participating in collective operations.

    ``node_ids[rank]`` is the NIC/port the rank lives on.  The node
    order may be an arbitrary permutation (the paper benchmarks "with
    random permutation of the nodes").

    ``algorithm="auto"`` consults the installed tuner decision table
    (see :mod:`repro.collectives.tuning`); with no table installed it
    resolves to the paper's default, dissemination.  An explicit
    algorithm always wins over the table.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        algorithm: str = "auto",
        group_id: int | None = None,
        epoch: int = 0,
        id_allocator: "GroupIdAllocator | None" = None,
    ):
        ids = list(node_ids)
        if not ids:
            raise ValueError("a group needs at least one node")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in group: {ids}")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.node_ids = tuple(ids)
        self.requested_algorithm = algorithm
        if algorithm == "auto":
            algorithm = pick_algorithm("barrier", len(ids))
        self.algorithm = algorithm
        self._id_allocator = (
            id_allocator if id_allocator is not None else _default_allocator
        )
        self.group_id = (
            self._id_allocator.allocate() if group_id is None else group_id
        )
        #: Which repair generation this group belongs to.  The pristine
        #: group a communicator starts from is epoch 0; every shrink
        #: over the survivor set increments it.  The previous epoch's
        #: group (if any) is linked via ``parent_group_id``.
        self.epoch = epoch
        self.parent_group_id: int | None = None
        self.schedule: BarrierSchedule = make_schedule(algorithm, len(ids))
        self._rank_of = {node: rank for rank, node in enumerate(self.node_ids)}
        # Per-communicator compiled-schedule cache (libnbc's
        # NBC_CACHE_SCHEDULE): key -> CollectiveSchedule.
        self._compiled: dict[tuple, CollectiveSchedule] = {}

    @property
    def size(self) -> int:
        return len(self.node_ids)

    @property
    def membership_digest(self) -> str:
        """Content digest of ``(epoch, node_ids)`` — the cache key
        component that distinguishes survivor-epoch schedules from the
        pristine ``range(N)`` grid (and from other survivor sets of the
        same size)."""
        blob = f"{self.epoch}:{','.join(map(str, self.node_ids))}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def shrink(self, dead_nodes: Sequence[int]) -> "ProcessGroup":
        """A new group over the survivors, one epoch later.

        Survivor order is preserved (ranks re-index densely), the
        original *requested* algorithm carries over (an ``"auto"`` group
        re-consults the tuner at the new size), and the new group gets a
        fresh ``group_id`` — engines register per group id, so the dead
        epoch's engines and the repaired epoch's engines never collide.
        """
        dead = set(dead_nodes)
        unknown = dead - set(self.node_ids)
        if unknown:
            raise ValueError(f"nodes {sorted(unknown)} not in group {self.group_id}")
        survivors = [n for n in self.node_ids if n not in dead]
        if not survivors:
            raise ValueError("cannot shrink a group to zero survivors")
        shrunk = ProcessGroup(
            survivors,
            algorithm=self.requested_algorithm,
            epoch=self.epoch + 1,
            id_allocator=self._id_allocator,
        )
        shrunk.parent_group_id = self.group_id
        return shrunk

    def repair(
        self,
        dead_nodes: Sequence[int],
        collectives: Sequence[str] = ("barrier",),
        payload_bytes: int = 0,
    ) -> "ProcessGroup":
        """Shrink *and* prove: compile the survivor schedules for the
        named collectives and run the full SL201–SL208 IR verification
        on each, so repair can never ship an unverified schedule.
        Raises :class:`ScheduleVerificationError` on any finding.
        """
        shrunk = self.shrink(dead_nodes)
        shrunk.verify_schedules(collectives, payload_bytes=payload_bytes)
        return shrunk

    def verify_schedules(
        self, collectives: Sequence[str], payload_bytes: int = 0
    ) -> None:
        """Run the schedule-IR verifier over this group's compiled
        schedules for ``collectives``.

        The static rules (SL201–SL206) prove the full-size survivor
        schedule.  The explicit-state model check (SL207–SL208) explores
        the *sequence automaton*, whose state space is exponential in
        the rank count, so — matching ``MODEL_CHECK_POINTS`` — it runs
        on a downscaled compile of the same ``(collective, algorithm)``
        pair: the automaton's transition table does not depend on the
        rank count, only on the protocol shape.  Verdicts are memoized
        process-wide (repair is on the recovery path; re-proving the
        same automaton point on every epoch turn would dominate it).
        """
        # Lazy import: collectives -> tools would otherwise be cyclic.
        from repro.collectives.schedule_ir import compile_schedule
        from repro.tools.simlint.ir_verify import (
            model_check_schedule,
            verify_schedule,
        )

        findings = []
        for name in collectives:
            bytes_for = payload_bytes if name != "barrier" else 0
            schedule = self.collective_schedule(name, payload_bytes=bytes_for)
            findings.extend(verify_schedule(schedule))
            model_n = min(self.size, 2)
            model_key = (name, schedule.algorithm, model_n, bytes_for)
            model_findings = _model_verdicts.get(model_key)
            if model_findings is None:
                model_schedule = (
                    schedule
                    if model_n == self.size
                    else compile_schedule(
                        name, schedule.algorithm, model_n, bytes_for
                    )
                )
                model_findings, _states = model_check_schedule(model_schedule)
                _model_verdicts[model_key] = model_findings
            findings.extend(model_findings)
        if findings:
            raise ScheduleVerificationError(
                f"group {self.group_id} epoch {self.epoch}: "
                f"{len(findings)} IR finding(s) on recompiled schedules",
                findings,
            )

    def node_of(self, rank: int) -> int:
        return self.node_ids[rank]

    def rank_of(self, node_id: int) -> int:
        try:
            return self._rank_of[node_id]
        except KeyError:
            raise ValueError(f"node {node_id} is not in group {self.group_id}") from None

    def collective_schedule(
        self,
        collective: str,
        payload_bytes: int = 0,
        algorithm: str | None = None,
        root: int = 0,
    ) -> CollectiveSchedule:
        """The compiled schedule for one collective on this group.

        Compiled once per ``(collective, algorithm, payload, root)``
        and kept on the group; repeat starts replay the cached op
        lists.  ``algorithm=None`` follows the group's choice — which,
        for ``"auto"`` groups, asks the decision table *per collective*
        (the tuned winner for allreduce need not match barrier's).
        """
        if algorithm is None:
            if self.requested_algorithm == "auto":
                algorithm = pick_algorithm(collective, self.size, payload_bytes)
            else:
                algorithm = self.algorithm
        key = (collective, algorithm, payload_bytes, root)
        schedule = self._compiled.get(key)
        if schedule is None:
            # Epoch-0 groups keep the pristine range(N) cache keys;
            # repaired epochs compile over their explicit survivor set
            # and key the shared cache on the membership digest.
            members = self.node_ids if self.epoch > 0 else None
            schedule = self._compiled[key] = compile_schedule(
                collective, algorithm, self.size, payload_bytes, root,
                members=members, membership_digest=(
                    self.membership_digest if self.epoch > 0 else None
                ),
            )
        return schedule

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._rank_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessGroup id={self.group_id} size={self.size}"
            f" algorithm={self.algorithm}>"
        )
