"""Process groups: rank ↔ node mapping for collective operations.

The paper's protocol keeps per-group state on every NIC ("a separate
queue for each group of processes"); a :class:`ProcessGroup` is the
shared description of one such group.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.collectives.algorithms import BarrierSchedule, make_schedule

_group_ids = itertools.count(1)


class ProcessGroup:
    """An ordered set of nodes participating in collective operations.

    ``node_ids[rank]`` is the NIC/port the rank lives on.  The node
    order may be an arbitrary permutation (the paper benchmarks "with
    random permutation of the nodes").
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        algorithm: str = "dissemination",
        group_id: int | None = None,
    ):
        ids = list(node_ids)
        if not ids:
            raise ValueError("a group needs at least one node")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in group: {ids}")
        self.node_ids = tuple(ids)
        self.algorithm = algorithm
        self.group_id = next(_group_ids) if group_id is None else group_id
        self.schedule: BarrierSchedule = make_schedule(algorithm, len(ids))
        self._rank_of = {node: rank for rank, node in enumerate(self.node_ids)}

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def node_of(self, rank: int) -> int:
        return self.node_ids[rank]

    def rank_of(self, node_id: int) -> int:
        try:
            return self._rank_of[node_id]
        except KeyError:
            raise ValueError(f"node {node_id} is not in group {self.group_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._rank_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessGroup id={self.group_id} size={self.size}"
            f" algorithm={self.algorithm}>"
        )
