"""Process groups: rank ↔ node mapping for collective operations.

The paper's protocol keeps per-group state on every NIC ("a separate
queue for each group of processes"); a :class:`ProcessGroup` is the
shared description of one such group.  It also carries the group's
compiled collective schedules (the libnbc per-communicator cache):
``collective_schedule()`` compiles a :class:`CollectiveSchedule` once
per ``(collective, algorithm, payload, root)`` and replays it on every
subsequent start.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.collectives.algorithms import BarrierSchedule, make_schedule
from repro.collectives.schedule_ir import CollectiveSchedule, compile_schedule
from repro.collectives.tuning import pick_algorithm

_group_ids = itertools.count(1)


class ProcessGroup:
    """An ordered set of nodes participating in collective operations.

    ``node_ids[rank]`` is the NIC/port the rank lives on.  The node
    order may be an arbitrary permutation (the paper benchmarks "with
    random permutation of the nodes").

    ``algorithm="auto"`` consults the installed tuner decision table
    (see :mod:`repro.collectives.tuning`); with no table installed it
    resolves to the paper's default, dissemination.  An explicit
    algorithm always wins over the table.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        algorithm: str = "auto",
        group_id: int | None = None,
    ):
        ids = list(node_ids)
        if not ids:
            raise ValueError("a group needs at least one node")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in group: {ids}")
        self.node_ids = tuple(ids)
        self.requested_algorithm = algorithm
        if algorithm == "auto":
            algorithm = pick_algorithm("barrier", len(ids))
        self.algorithm = algorithm
        self.group_id = next(_group_ids) if group_id is None else group_id
        self.schedule: BarrierSchedule = make_schedule(algorithm, len(ids))
        self._rank_of = {node: rank for rank, node in enumerate(self.node_ids)}
        # Per-communicator compiled-schedule cache (libnbc's
        # NBC_CACHE_SCHEDULE): key -> CollectiveSchedule.
        self._compiled: dict[tuple, CollectiveSchedule] = {}

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def node_of(self, rank: int) -> int:
        return self.node_ids[rank]

    def rank_of(self, node_id: int) -> int:
        try:
            return self._rank_of[node_id]
        except KeyError:
            raise ValueError(f"node {node_id} is not in group {self.group_id}") from None

    def collective_schedule(
        self,
        collective: str,
        payload_bytes: int = 0,
        algorithm: str | None = None,
        root: int = 0,
    ) -> CollectiveSchedule:
        """The compiled schedule for one collective on this group.

        Compiled once per ``(collective, algorithm, payload, root)``
        and kept on the group; repeat starts replay the cached op
        lists.  ``algorithm=None`` follows the group's choice — which,
        for ``"auto"`` groups, asks the decision table *per collective*
        (the tuned winner for allreduce need not match barrier's).
        """
        if algorithm is None:
            if self.requested_algorithm == "auto":
                algorithm = pick_algorithm(collective, self.size, payload_bytes)
            else:
                algorithm = self.algorithm
        key = (collective, algorithm, payload_bytes, root)
        schedule = self._compiled.get(key)
        if schedule is None:
            schedule = self._compiled[key] = compile_schedule(
                collective, algorithm, self.size, payload_bytes, root
            )
        return schedule

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._rank_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessGroup id={self.group_id} size={self.size}"
            f" algorithm={self.algorithm}>"
        )
