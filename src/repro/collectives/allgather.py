"""NIC-based Allgather over the collective protocol (§9 future work).

The paper's closing question: "whether other collective communication
operations, such as Allgather or Alltoall could benefit from similar
NIC-level implementations."  This answers it for Allgather:

- the dissemination pattern doubles each rank's known set per round
  (round *m*: send everything you know to ``(i + 2^m) mod N``; after
  ``ceil(log2 N)`` rounds everyone holds all N contributions — any N,
  not just powers of two);
- messages ride the collective fast path with payloads that *grow*
  (``4 * |known|`` bytes), so unlike the barrier the wire cost scales
  with data;
- reliability is receiver-driven NACK, as in §6.3.

The host contributes one 4-byte value with a single command, then is
uninvolved until the NIC DMAs the gathered vector back.  All mechanics
live in :class:`repro.collectives.data_engine.DisseminationDataEngine`;
this module supplies the Allgather-specific state hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.collectives.data_engine import (
    DataCollDone,
    DisseminationDataEngine,
    _DataState,
    host_start_data_collective,
)
from repro.collectives.group import ProcessGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

BYTES_PER_VALUE = 4

#: Host notification type (shared with the other data collectives).
AllgatherDone = DataCollDone


class NicAllgatherEngine(DisseminationDataEngine):
    """Per-(NIC, group) Allgather engine.

    The known-set union merge is idempotent and commutative, so the
    engine runs on any compiled message pattern (dissemination,
    pairwise-exchange, gather-broadcast) — whichever the group or the
    tuner's decision table picked.
    """

    counter_prefix = "allgather"
    collective_name = "allgather"
    bytes_per_value = BYTES_PER_VALUE

    def _init_data(self, state: _DataState, args: tuple) -> None:
        (value,) = args
        state.data = {self.rank: value}

    def _phase_payload(self, state: _DataState, phase: int) -> tuple[Any, int]:
        payload = tuple(sorted(state.data.items()))
        return payload, self.bytes_per_value * len(payload)

    def _merge(self, state: _DataState, payload: Any, phase: int) -> None:
        state.data.update(dict(payload))

    def _finish(self, state: _DataState) -> tuple[Any, int]:
        assert len(state.data) == self.group.size
        return (
            tuple(sorted(state.data.items())),
            self.bytes_per_value * self.group.size,
        )


def nic_allgather(port: "GmPort", group: ProcessGroup, seq: int, value: Any):
    """Host side: contribute ``value``; returns ``{rank: value}``."""
    result = yield from host_start_data_collective(
        port, group, seq, (value,), contribute_bytes=BYTES_PER_VALUE
    )
    return dict(result)
