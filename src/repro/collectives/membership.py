"""Per-node membership views fed by the NIC failure detector.

Each NIC carries a :class:`MembershipView`.  Liveness evidence arrives
two ways:

* **Piggybacked** — every received wire packet refreshes the sender's
  ``last_heard`` timestamp for free (``observe_alive``), so explicit
  heartbeats are only needed across otherwise-silent links.
* **Active probing** — when the failure detector is enabled (it is off
  by default; see ``GmParams.heartbeat_period_us`` /
  ``ElanParams.heartbeat_period_us``) the NIC control program runs a
  bounded heartbeat loop: each period it sends a tiny HEARTBEAT packet
  to every watched peer it has not heard from within one period, and
  declares dead any peer silent for longer than the suspicion timeout.
  The loop exits at ``horizon_us`` so the event heap always drains and
  quiescence stays clean.

Death verdicts are typed :class:`PeerDead` records.  They unify the
scattered retry-exhaustion escalations: the Myrinet timeout loop and the
NIC engines report exhaustion through ``declare_dead`` with
``origin="retry-exhaustion"`` alongside the detector's
``origin="heartbeat-timeout"``, so a repair controller has one place to
look regardless of how the failure was noticed.

Determinism: the detector's only randomness is the initial phase offset
of each node's heartbeat loop, drawn from a named
``DeterministicRng`` substream (``hb/<node>``), so runs are bit-identical
for a fixed seed and invariant under tie-break permutations.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["PeerDead", "MembershipView"]


@dataclass(frozen=True)
class PeerDead:
    """Typed verdict: ``node`` was declared dead at ``detected_at``.

    ``origin`` records the evidence class — ``"heartbeat-timeout"`` from
    the active detector, ``"retry-exhaustion"`` from ACK/NACK budget
    escalation, ``"external"`` for controller-injected verdicts (the
    chaos fuzzer's ground truth).
    """

    node: int
    detected_at: float
    origin: str
    detail: str = ""


@dataclass
class MembershipView:
    """One NIC's view of which peers are alive.

    Cheap and always-on: ``observe_alive`` is a dict write on the
    receive path.  Verdicts are idempotent — the first ``declare_dead``
    for a node wins and fires callbacks; later ones are ignored so
    redundant evidence (heartbeat timeout racing retry exhaustion) does
    not produce duplicate repair work.
    """

    node_id: int
    last_heard: dict[int, float] = field(default_factory=dict)
    last_sent: dict[int, float] = field(default_factory=dict)
    dead: dict[int, PeerDead] = field(default_factory=dict)
    _callbacks: list[Callable[[PeerDead], None]] = field(default_factory=list)

    def observe_alive(self, node: int, now: float) -> None:
        if node == self.node_id or node in self.dead:
            return
        prev = self.last_heard.get(node)
        if prev is None or now > prev:
            self.last_heard[node] = now

    def observe_sent(self, node: int, now: float) -> None:
        """Record an outgoing packet to ``node`` (any kind).

        The heartbeat loop keys its send decision on this — my outgoing
        traffic is what proves *my* liveness to the peer, so a beat is
        only needed when I have not transmitted anything to them for a
        full period.  Keying the decision on *receive* evidence instead
        would let one side's regular beats suppress the other side's
        forever, and the silent (but healthy) side gets convicted.
        """
        prev = self.last_sent.get(node)
        if prev is None or now > prev:
            self.last_sent[node] = now

    def declare_dead(self, node: int, now: float, origin: str,
                     detail: str = "") -> Optional[PeerDead]:
        """Record a death verdict; returns it, or None if already dead."""
        if node == self.node_id or node in self.dead:
            return None
        verdict = PeerDead(node=node, detected_at=now, origin=origin,
                           detail=detail)
        self.dead[node] = verdict
        self.last_heard.pop(node, None)
        for callback in list(self._callbacks):
            callback(verdict)
        return verdict

    def on_death(self, callback: Callable[[PeerDead], None]) -> None:
        """Subscribe to future verdicts (repair controllers hook here)."""
        self._callbacks.append(callback)

    def is_dead(self, node: int) -> bool:
        return node in self.dead

    def alive_peers(self, peers) -> list[int]:
        return [p for p in peers if p != self.node_id and p not in self.dead]

    def silent_for(self, node: int, now: float, since_default: float) -> float:
        """Microseconds since we last heard from ``node``.

        Peers never heard from are measured against ``since_default``
        (detector start time) so a node dead from t=0 is still caught.
        """
        return now - self.last_heard.get(node, since_default)
