"""Host-based broadcast / allgather / alltoall baselines over GM.

The comparison partners for the §9 extension collectives, exactly
parallel to how :func:`~repro.collectives.host_barrier.host_barrier`
is the baseline for the NIC-based barrier: the same trees and message
patterns, but every hop is a full GM send/receive — host library
overhead, PIO doorbell, token queues, payload + event DMA, polling —
and the host drives every phase transition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.collectives.broadcast import binomial_children, binomial_parent
from repro.collectives.group import ProcessGroup
from repro.myrinet.gm_api import GmRecvEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

BYTES_PER_VALUE = 4


def _recv_tagged(port: "GmPort", group: ProcessGroup, tag: tuple):
    event = yield from port.recv_matching(
        lambda ev: isinstance(ev, GmRecvEvent)
        and isinstance(ev.payload, tuple)
        and len(ev.payload) == 2
        and ev.payload[0] == (group.group_id,) + tag
    )
    return event.payload[1]


def _send_tagged(port: "GmPort", group: ProcessGroup, dst_rank: int, tag: tuple,
                 value: Any, nbytes: int):
    yield from port.send(
        group.node_of(dst_rank),
        size_bytes=nbytes,
        payload=((group.group_id,) + tag, value),
    )


def host_broadcast(
    port: "GmPort", group: ProcessGroup, seq: int, size_bytes: int,
    value: Any = None,
):
    """Binomial-tree broadcast rooted at rank 0, host-driven per hop.

    Returns the payload at every rank.
    """
    rank = group.rank_of(port.node_id)
    parent = binomial_parent(rank, group.size)
    if parent is not None:
        value = yield from _recv_tagged(port, group, ("bc", seq, rank))
    for child in binomial_children(rank, group.size):
        yield from _send_tagged(
            port, group, child, ("bc", seq, child), value, size_bytes
        )
    return value


def host_allgather(port: "GmPort", group: ProcessGroup, seq: int, value: Any):
    """Dissemination allgather, host-driven per round."""
    rank = group.rank_of(port.node_id)
    n = group.size
    known = {rank: value}
    gap = 1
    phase = 0
    while gap < n:
        dst = (rank + gap) % n
        src = (rank - gap) % n
        payload = tuple(sorted(known.items()))
        yield from _send_tagged(
            port, group, dst, ("ag", seq, phase, dst),
            payload, BYTES_PER_VALUE * len(payload),
        )
        incoming = yield from _recv_tagged(port, group, ("ag", seq, phase, rank))
        known.update(dict(incoming))
        gap <<= 1
        phase += 1
    assert len(known) == n
    return known


def host_alltoall(
    port: "GmPort", group: ProcessGroup, seq: int, blocks: Mapping[int, Any]
):
    """Linear pairwise alltoall (the straightforward host algorithm):

    round *k*: send my block for ``(rank + k)`` and receive from
    ``(rank - k)`` — N-1 rounds of single-block messages, versus the
    NIC engine's ``log2 N`` Bruck rounds."""
    rank = group.rank_of(port.node_id)
    n = group.size
    if set(blocks) != set(range(n)):
        raise ValueError("alltoall needs one block per destination rank")
    received = {rank: blocks[rank]}
    for k in range(1, n):
        dst = (rank + k) % n
        src = (rank - k) % n
        yield from _send_tagged(
            port, group, dst, ("a2a", seq, k, dst), blocks[dst], BYTES_PER_VALUE
        )
        received[src] = yield from _recv_tagged(port, group, ("a2a", seq, k, rank))
    return received
