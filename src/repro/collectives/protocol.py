"""Collective-protocol bookkeeping: the bit-vector send record (§6.3).

The paper replaces GM's per-packet bookkeeping with, per barrier
operation:

- **one** send record carrying a *bit vector* over the barrier's
  messages and a single timestamp (instead of one record + timer per
  packet), and
- a receiver-side arrival bit vector driving the NACK-based
  receiver-driven retransmission.

Both structures are pure state (no simulator dependency) so they are
unit-testable in isolation; the NIC engines pay the processing costs.
"""

from __future__ import annotations

from typing import Optional

from repro.collectives.algorithms import Phase


class CollectiveScheduleLayout:
    """The immutable bit-map derivation of one rank's phase schedule.

    Everything in here — the sender→bit map, the (phase, dst)→send-slot
    map, and the per-phase expected-arrival masks — is a pure function
    of the phase tuple, identical for every barrier sequence a rank
    runs.  Computing it once per engine and sharing it across sequences
    turns the per-iteration state setup into two integer assignments,
    and turns the per-arrival "is this phase's receive set complete?"
    scan into a single mask test.
    """

    __slots__ = ("phases", "bit_of", "slot_of", "recv_masks", "all_sent_mask")

    def __init__(self, phases: tuple[Phase, ...]):
        self.phases = phases
        expected: list[int] = []
        for phase in phases:
            expected.extend(phase.recvs)
        if len(set(expected)) != len(expected):
            raise ValueError("schedule has a duplicate (sender, receiver) pair")
        self.bit_of = {sender: i for i, sender in enumerate(expected)}
        slot_of: dict[tuple[int, int], int] = {}
        for phase_idx, phase in enumerate(phases):
            for dst in phase.sends:
                slot_of[(phase_idx, dst)] = len(slot_of)
        self.slot_of = slot_of
        self.all_sent_mask = (1 << len(slot_of)) - 1
        # recv bits are unique per sender, so sum == bitwise-or.
        self.recv_masks = tuple(
            sum(1 << self.bit_of[s] for s in phase.recvs) for phase in phases
        )


class CollectiveSendRecord:
    """The single send record for one barrier operation at one rank.

    Bit *i* of ``sent_bits`` is set once send slot *i* (a (phase, dst)
    pair in schedule order) has been transmitted.
    """

    def __init__(
        self,
        seq: int,
        phases: tuple[Phase, ...],
        created_at: float,
        layout: Optional[CollectiveScheduleLayout] = None,
    ):
        if layout is None:
            layout = CollectiveScheduleLayout(phases)
        self.seq = seq
        self.created_at = created_at
        self._slot_of = layout.slot_of
        self._all_sent_mask = layout.all_sent_mask
        self.sent_bits = 0

    @property
    def total_slots(self) -> int:
        return len(self._slot_of)

    def mark_sent(self, phase: int, dst: int) -> None:
        self.sent_bits |= 1 << self._slot_of[(phase, dst)]

    def was_sent(self, phase: int, dst: int) -> bool:
        slot = self._slot_of.get((phase, dst))
        if slot is None:
            return False
        return bool(self.sent_bits >> slot & 1)

    @property
    def all_sent(self) -> bool:
        return self.sent_bits == self._all_sent_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CollectiveSendRecord seq={self.seq}"
            f" sent={self.sent_bits:b}/{self.total_slots} bits>"
        )


class CollectiveGroupState:
    """Per-(rank, barrier-sequence) progress state on the NIC.

    ``arrived_bits`` is the receive-side bit vector: bit per expected
    sender rank.  ``phase`` is the next schedule phase to complete.
    """

    def __init__(
        self,
        seq: int,
        phases: tuple[Phase, ...],
        created_at: float,
        layout: Optional[CollectiveScheduleLayout] = None,
    ):
        if layout is None:
            layout = CollectiveScheduleLayout(phases)
        self.seq = seq
        self.phases = phases
        self.created_at = created_at
        self._layout = layout
        self._bit_of = layout.bit_of
        self.arrived_bits = 0
        self.phase = 0
        self.started = False
        self.complete = False
        self.in_progress = False
        self.sent_current_phase = False
        self.start_time: Optional[float] = None
        self.send_record = CollectiveSendRecord(seq, phases, created_at, layout)
        self.nack_timer = None  # ScheduledCall handle
        self.nack_rounds = 0

    # ------------------------------------------------------------------
    def mark_arrived(self, sender: int) -> bool:
        """Record an arrival; returns False for unexpected senders
        (stray/duplicate traffic — counted, not fatal)."""
        bit = self._bit_of.get(sender)
        if bit is None:
            return False
        self.arrived_bits |= 1 << bit
        return True

    def has_arrived(self, sender: int) -> bool:
        bit = self._bit_of.get(sender)
        if bit is None:
            raise KeyError(f"rank {sender} is not an expected sender")
        return bool(self.arrived_bits >> bit & 1)

    def phase_recvs_complete(self, phase_idx: int) -> bool:
        mask = self._layout.recv_masks[phase_idx]
        return self.arrived_bits & mask == mask

    def missing_senders(self) -> list[tuple[int, int]]:
        """(phase, sender) pairs still outstanding up to the current
        phase — the targets of receiver-driven NACKs."""
        missing = []
        for phase_idx in range(min(self.phase + 1, len(self.phases))):
            for sender in self.phases[phase_idx].recvs:
                if not self.has_arrived(sender):
                    missing.append((phase_idx, sender))
        return missing

    def cancel_nack_timer(self) -> None:
        if self.nack_timer is not None:
            self.nack_timer.cancel()
            self.nack_timer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CollectiveGroupState seq={self.seq} phase={self.phase}"
            f"/{len(self.phases)} arrived={self.arrived_bits:b}>"
        )
