"""NIC-based Allreduce over the collective protocol.

Completes the NIC-collective family the paper gestures at (§9 cites the
NIC-based *reduction* work of Moody et al. [14] alongside broadcast).
Implemented as gather-and-combine on the dissemination pattern: the
engine reuses the Allgather state hooks, tracking contributions by rank
(exactly correct for any N, including non-powers of two where plain
partial-sum dissemination would double-count wrapped blocks), and the
NIC applies the reduction operator before DMAing a single value to the
host.

Supported operators are fixed-name (both sides of a reduction must
agree, as in MPI): ``sum``, ``prod``, ``min``, ``max``.  Every message
carries the sender's operator name alongside the gathered map; the
receiving NIC validates it against its own before merging, so an
operator mismatch fails the sequence with a typed
:class:`~repro.collectives.data_engine.DataCollFailed` instead of
silently reducing with whichever operator the local rank happened to
pick.  The operator name rides the message header, not the data
payload, so wire bytes are unchanged from Allgather.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.collectives.allgather import BYTES_PER_VALUE, NicAllgatherEngine
from repro.collectives.data_engine import (
    DataCollMsg,
    _DataState,
    host_start_data_collective,
)
from repro.collectives.group import ProcessGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}


class _ReduceState(_DataState):
    """Allgather state plus the reduction operator this rank was given."""

    __slots__ = ("op_name",)

    def __init__(self, seq: int):
        super().__init__(seq)
        self.op_name: Optional[str] = None


class NicAllreduceEngine(NicAllgatherEngine):
    """Per-(NIC, group) Allreduce engine."""

    counter_prefix = "allreduce"
    state_cls = _ReduceState

    def _init_data(self, state: _ReduceState, args: tuple) -> None:
        value, op_name = args
        if op_name not in OPS:
            raise ValueError(f"unknown reduction op {op_name!r}; use {sorted(OPS)}")
        state.data = {self.rank: value}
        state.op_name = op_name

    def _phase_payload(self, state: _ReduceState, phase: int) -> tuple[Any, int]:
        items = tuple(sorted(state.data.items()))
        # The op name travels in the logical header: wire bytes count
        # only the gathered values, identical to Allgather.
        return (state.op_name, items), BYTES_PER_VALUE * len(items)

    def _merge(self, state: _ReduceState, payload: Any, phase: int) -> None:
        _op_name, items = payload
        state.data.update(dict(items))

    def _validate(
        self, state: _ReduceState, message: DataCollMsg
    ) -> Optional[str]:
        sender_op = message.payload[0]
        if sender_op != state.op_name:
            return (
                f"allreduce op mismatch: rank {message.sender} used "
                f"{sender_op!r}, local op is {state.op_name!r}"
            )
        return None

    def _finish(self, state: _ReduceState) -> tuple[Any, int]:
        assert len(state.data) == self.group.size
        op = OPS[state.op_name]
        values = [state.data[rank] for rank in sorted(state.data)]
        result = values[0]
        for value in values[1:]:
            result = op(result, value)
        return result, BYTES_PER_VALUE


def nic_allreduce(
    port: "GmPort", group: ProcessGroup, seq: int, value: Any, op: str = "sum"
):
    """Host side: contribute ``value``; returns the reduced result."""
    result = yield from host_start_data_collective(
        port, group, seq, (value, op), contribute_bytes=BYTES_PER_VALUE
    )
    return result
