"""NIC-based Allreduce over the collective protocol.

Completes the NIC-collective family the paper gestures at (§9 cites the
NIC-based *reduction* work of Moody et al. [14] alongside broadcast).
Implemented as gather-and-combine on the dissemination pattern: the
engine reuses the Allgather state hooks, tracking contributions by rank
(exactly correct for any N, including non-powers of two where plain
partial-sum dissemination would double-count wrapped blocks), and the
NIC applies the reduction operator before DMAing a single value to the
host.

Supported operators are fixed-name (both sides of a reduction must
agree, as in MPI): ``sum``, ``prod``, ``min``, ``max``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.collectives.allgather import BYTES_PER_VALUE, NicAllgatherEngine
from repro.collectives.data_engine import _DataState, host_start_data_collective
from repro.collectives.group import ProcessGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}


class NicAllreduceEngine(NicAllgatherEngine):
    """Per-(NIC, group) Allreduce engine."""

    counter_prefix = "allreduce"

    def _init_data(self, state: _DataState, args: tuple) -> None:
        value, op_name = args
        if op_name not in OPS:
            raise ValueError(f"unknown reduction op {op_name!r}; use {sorted(OPS)}")
        state.data = {self.rank: value}
        # Stash the operator out-of-band (not part of the gathered map).
        state.op_name = op_name  # type: ignore[attr-defined]

    def _finish(self, state: _DataState) -> tuple[Any, int]:
        assert len(state.data) == self.group.size
        op = OPS[state.op_name]  # type: ignore[attr-defined]
        values = [state.data[rank] for rank in sorted(state.data)]
        result = values[0]
        for value in values[1:]:
            result = op(result, value)
        return result, BYTES_PER_VALUE


def nic_allreduce(
    port: "GmPort", group: ProcessGroup, seq: int, value: Any, op: str = "sum"
):
    """Host side: contribute ``value``; returns the reduced result."""
    result = yield from host_start_data_collective(
        port, group, seq, (value, op), contribute_bytes=BYTES_PER_VALUE
    )
    return result
