"""NIC-based Allreduce over the collective protocol.

Completes the NIC-collective family the paper gestures at (§9 cites the
NIC-based *reduction* work of Moody et al. [14] alongside broadcast).
Every message carries a *partially-reduced* ``(value, contributor
bitmap)`` pair — O(1) data plus ``ceil(N/8)`` bitmap bytes per hop,
instead of the O(N) gathered map an allgather-style implementation
would ship — and the receiving NIC folds partials together under two
rules that keep the reduction exact for any N, including non-powers of
two:

- **disjoint** contributor sets combine (apply the operator, OR the
  bitmaps);
- a **superset** replaces the local partial outright (pairwise
  exchange's post-step and gather-broadcast's release deliver the full
  result to ranks that already hold a piece of it);
- anything else is a protocol violation and fails the sequence with a
  typed :class:`~repro.collectives.data_engine.DataCollFailed`.

Those rules only hold on *reduce-safe* message patterns, so the
schedule compiler normalizes the algorithm (see
:func:`repro.collectives.schedule_ir.normalize_algorithm`):
dissemination at non-powers-of-two — where the wrapped final round
overlaps contributor sets that a folded value cannot be split back out
of — silently becomes pairwise-exchange.

Supported operators are fixed-name, commutative and associative (both
sides of a reduction must agree, as in MPI): ``sum``, ``prod``,
``min``, ``max``.  The operator name rides the message header; the
receiving NIC validates it against its own before merging, so an
operator mismatch fails the sequence instead of silently reducing with
whichever operator the local rank happened to pick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.collectives.allgather import BYTES_PER_VALUE
from repro.collectives.data_engine import (
    DataCollMsg,
    DisseminationDataEngine,
    _DataState,
    host_start_data_collective,
)
from repro.collectives.group import ProcessGroup
from repro.collectives.schedule_ir import bitmap_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}


class _ReduceState(_DataState):
    """Partial-reduction state: the folded value (``data``), the
    contributor bitmap, and the operator this rank was given."""

    __slots__ = ("op_name", "contrib")

    def __init__(self, seq: int):
        super().__init__(seq)
        self.op_name: Optional[str] = None
        self.contrib = 0  # bitmap of ranks folded into ``data``


class NicAllreduceEngine(DisseminationDataEngine):
    """Per-(NIC, group) Allreduce engine."""

    counter_prefix = "allreduce"
    collective_name = "allreduce"
    bytes_per_value = BYTES_PER_VALUE
    state_cls = _ReduceState

    def _init_data(self, state: _ReduceState, args: tuple) -> None:
        value, op_name = args
        if op_name not in OPS:
            raise ValueError(f"unknown reduction op {op_name!r}; use {sorted(OPS)}")
        state.data = value
        state.contrib = 1 << self.rank
        state.op_name = op_name

    def _phase_payload(self, state: _ReduceState, phase: int) -> tuple[Any, int]:
        # One partially-reduced value + the contributor bitmap: wire
        # bytes are O(1) + ceil(N/8) per hop regardless of phase.
        payload = (state.op_name, state.data, state.contrib)
        return payload, self.bytes_per_value + bitmap_bytes(self.group.size)

    def _validate(
        self, state: _ReduceState, message: DataCollMsg
    ) -> Optional[str]:
        sender_op, _value, contrib = message.payload
        if sender_op != state.op_name:
            return (
                f"allreduce op mismatch: rank {message.sender} used "
                f"{sender_op!r}, local op is {state.op_name!r}"
            )
        overlap = contrib & state.contrib
        if overlap and (contrib | state.contrib) != contrib:
            # Folded values cannot be un-merged; a partial overlap
            # would double-count the shared contributors.
            return (
                f"allreduce overlapping partials: rank {message.sender}'s "
                f"bitmap {contrib:#x} overlaps local {state.contrib:#x} "
                "without superseding it"
            )
        return None

    def _merge(self, state: _ReduceState, payload: Any, phase: int) -> None:
        _op_name, value, contrib = payload
        if contrib & state.contrib:
            # Superset (validated): the incoming partial already folds
            # this rank's contribution in — take it wholesale.
            state.data = value
            state.contrib = contrib
        else:
            state.data = OPS[state.op_name](state.data, value)
            state.contrib |= contrib

    def _finish(self, state: _ReduceState) -> tuple[Any, int]:
        full = (1 << self.group.size) - 1
        assert state.contrib == full, (
            f"allreduce finished with contributors {state.contrib:#x}, "
            f"expected {full:#x}"
        )
        return state.data, self.bytes_per_value


def nic_allreduce(
    port: "GmPort", group: ProcessGroup, seq: int, value: Any, op: str = "sum"
):
    """Host side: contribute ``value``; returns the reduced result."""
    result = yield from host_start_data_collective(
        port, group, seq, (value, op), contribute_bytes=BYTES_PER_VALUE
    )
    return result
