"""Barrier message schedules (§5 of the paper).

A schedule is, per rank, an ordered list of :class:`Phase` objects.
Each phase names the peer ranks to send to and to receive from, plus
the ordering rule:

- ``send_first=True`` (dissemination, pairwise-exchange): issue the
  phase's sends, then wait for its receives;
- ``send_first=False`` (gather-broadcast): wait for the phase's
  receives, then issue its sends.

Step counts match §5.1:

- gather-broadcast: ``2 * ceil(log_d N)`` steps on a degree-``d`` tree;
- pairwise-exchange: ``log2 N`` steps for powers of two,
  ``floor(log2 N) + 2`` otherwise (pre/post steps for the extra ranks);
- dissemination: ``ceil(log2 N)`` steps always.

Within one barrier, a given (sender → receiver) pair occurs at most
once across all phases (asserted by :meth:`BarrierSchedule.validate`),
so receivers can match arrivals on (sequence, sender) alone.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Phase:
    """One step of a barrier schedule, from one rank's point of view."""

    sends: tuple[int, ...] = ()
    recvs: tuple[int, ...] = ()
    send_first: bool = True

    def __post_init__(self) -> None:
        if len(set(self.sends)) != len(self.sends):
            raise ValueError(f"duplicate send targets in {self.sends}")
        if len(set(self.recvs)) != len(self.recvs):
            raise ValueError(f"duplicate receive sources in {self.recvs}")

    @property
    def empty(self) -> bool:
        return not self.sends and not self.recvs


@dataclass(frozen=True)
class BarrierSchedule:
    """Per-rank phases for an N-rank barrier."""

    algorithm: str
    size: int
    phases_by_rank: tuple[tuple[Phase, ...], ...]

    def phases(self, rank: int) -> tuple[Phase, ...]:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return self.phases_by_rank[rank]

    @property
    def max_steps(self) -> int:
        return max((len(p) for p in self.phases_by_rank), default=0)

    def total_messages(self) -> int:
        """Messages per barrier over all ranks."""
        return sum(
            len(phase.sends) for phases in self.phases_by_rank for phase in phases
        )

    def expected_senders(self, rank: int) -> set[int]:
        """All ranks this rank receives from during one barrier."""
        return {
            src for phase in self.phases_by_rank[rank] for src in phase.recvs
        }

    def validate(self) -> None:
        """Check global consistency of the schedule.

        - no self-messages;
        - every send is matched by exactly one receive and vice versa;
        - a (sender, receiver) pair occurs at most once per barrier.
        """
        sends: list[tuple[int, int]] = []
        recvs: list[tuple[int, int]] = []
        for rank, phases in enumerate(self.phases_by_rank):
            for phase in phases:
                for dst in phase.sends:
                    if dst == rank:
                        raise ValueError(f"rank {rank} sends to itself")
                    if not 0 <= dst < self.size:
                        raise ValueError(f"rank {rank} sends to invalid {dst}")
                    sends.append((rank, dst))
                for src in phase.recvs:
                    if src == rank:
                        raise ValueError(f"rank {rank} receives from itself")
                    if not 0 <= src < self.size:
                        raise ValueError(f"rank {rank} receives from invalid {src}")
                    recvs.append((src, rank))
        if len(set(sends)) != len(sends):
            raise ValueError("a (sender, receiver) pair occurs more than once")
        if sorted(sends) != sorted(recvs):
            raise ValueError("sends and receives do not match up")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def dissemination(n: int) -> BarrierSchedule:
    """§5.1: in step m, rank i sends to (i + 2^m) mod N and waits for
    (i - 2^m) mod N; ``ceil(log2 N)`` steps regardless of N."""
    if n < 1:
        raise ValueError("group size must be >= 1")
    steps = math.ceil(math.log2(n)) if n > 1 else 0
    per_rank = []
    for i in range(n):
        phases = []
        for m in range(steps):
            gap = 2**m
            phases.append(
                Phase(
                    sends=((i + gap) % n,),
                    recvs=((i - gap) % n,),
                    send_first=True,
                )
            )
        per_rank.append(tuple(phases))
    return BarrierSchedule("dissemination", n, tuple(per_rank))


def pairwise_exchange(n: int) -> BarrierSchedule:
    """§5.1: MPICH's recursive doubling.

    Powers of two: step m pairs i with i xor 2^m.  Otherwise, with M
    the largest power of two below N: the top ``N - M`` ranks first
    report to their partner in the low M, the low M ranks do the
    power-of-two exchange, and the partners finally release the top
    ranks — ``floor(log2 N) + 2`` steps.
    """
    if n < 1:
        raise ValueError("group size must be >= 1")
    if n == 1:
        return BarrierSchedule("pairwise-exchange", 1, ((),))
    m_pow = 1 << (n.bit_length() - 1)
    if m_pow == n:  # power of two
        steps = n.bit_length() - 1
        per_rank = []
        for i in range(n):
            phases = tuple(
                Phase(sends=(i ^ (1 << m),), recvs=(i ^ (1 << m),), send_first=True)
                for m in range(steps)
            )
            per_rank.append(phases)
        return BarrierSchedule("pairwise-exchange", n, tuple(per_rank))

    extras = n - m_pow
    steps = m_pow.bit_length() - 1  # log2(M) exchange steps
    per_rank = []
    for i in range(n):
        phases: list[Phase] = []
        if i >= m_pow:
            # Pre-step: report in; then wait for the release.
            partner = i - m_pow
            phases.append(Phase(sends=(partner,), recvs=(), send_first=True))
            phases.append(Phase(sends=(), recvs=(partner,), send_first=True))
        else:
            if i < extras:
                phases.append(Phase(sends=(), recvs=(i + m_pow,), send_first=True))
            for m in range(steps):
                partner = i ^ (1 << m)
                phases.append(
                    Phase(sends=(partner,), recvs=(partner,), send_first=True)
                )
            if i < extras:
                phases.append(Phase(sends=(i + m_pow,), recvs=(), send_first=True))
        per_rank.append(tuple(phases))
    return BarrierSchedule("pairwise-exchange", n, tuple(per_rank))


def gather_broadcast(n: int, degree: int = 2) -> BarrierSchedule:
    """§5.1: messages combine up a degree-``d`` tree to rank 0, which
    broadcasts the release back down; ``2 * log_d N`` steps."""
    if n < 1:
        raise ValueError("group size must be >= 1")
    if degree < 2:
        raise ValueError("tree degree must be >= 2")
    per_rank = []
    for i in range(n):
        children = tuple(
            c for c in range(i * degree + 1, i * degree + degree + 1) if c < n
        )
        parent: Optional[int] = None if i == 0 else (i - 1) // degree
        gather = Phase(
            sends=(parent,) if parent is not None else (),
            recvs=children,
            send_first=False,  # combine the children before reporting up
        )
        bcast = Phase(
            sends=children,
            recvs=(parent,) if parent is not None else (),
            send_first=False,  # wait for the release before fanning out
        )
        phases = tuple(p for p in (gather, bcast) if not p.empty)
        per_rank.append(phases)
    return BarrierSchedule("gather-broadcast", n, tuple(per_rank))


_BUILDERS: dict[str, Callable[[int], BarrierSchedule]] = {
    "dissemination": dissemination,
    "pairwise-exchange": pairwise_exchange,
    "gather-broadcast": gather_broadcast,
}


def closed_form_message_count(algorithm: str, n: int) -> int:
    """§5.1's closed-form wire messages for one operation over all ranks.

    The compiled IR is the source of truth for message counts
    (:meth:`CollectiveSchedule.total_messages` /
    :meth:`BarrierSchedule.total_messages`); these formulas survive only
    as *cross-check assertions* — the schedule-IR verifier (SL204) and
    the counter audit both assert the IR count equals the closed form,
    so the two derivations can never drift apart silently.

    - dissemination: one send per rank per round, ``N * ceil(log2 N)``;
    - pairwise-exchange: ``N * log2 N`` at powers of two; otherwise the
      low ``M = 2^floor(log2 N)`` ranks exchange ``M * log2 M`` messages
      and each of the ``N - M`` extras costs one pre-step report plus
      one post-step release;
    - gather-broadcast: every non-root rank sends one gather-up and
      receives one broadcast-down, ``2 * (N - 1)``.
    """
    if n < 1:
        raise ValueError("group size must be >= 1")
    if n == 1:
        return 0
    if algorithm == "dissemination":
        return n * math.ceil(math.log2(n))
    if algorithm == "pairwise-exchange":
        m_pow = 1 << (n.bit_length() - 1)
        if m_pow == n:
            return n * (n.bit_length() - 1)
        return m_pow * (m_pow.bit_length() - 1) + 2 * (n - m_pow)
    if algorithm == "gather-broadcast":
        return 2 * (n - 1)
    raise ValueError(
        f"no closed-form message count for algorithm {algorithm!r}"
    )


class ScheduleCache:
    """LRU cache for compiled schedules, with observable hit rates.

    Backs both :func:`make_schedule` (barrier message patterns) and the
    collective-schedule IR compiler (:mod:`repro.collectives
    .schedule_ir`): one store, one eviction policy, one set of
    counters.  The old ``functools.lru_cache(maxsize=8)`` thrashed
    under tuner sweeps — every ``(algorithm, N)`` point evicted another
    point's schedule and the hit counters were invisible to perfbench.
    The size is now configurable (``REPRO_SCHEDULE_CACHE_SIZE`` or
    :func:`configure_schedule_cache`, which sweeps size from their
    point count), and ``stats()`` exposes hits/misses/evictions.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ValueError("schedule cache needs at least one slot")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: tuple, build: Callable[[], Any]) -> Any:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = self._entries[key] = build()
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def resize(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("schedule cache needs at least one slot")
        self.maxsize = maxsize
        while len(self._entries) > maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and zero the counters (a fresh baseline for
        benchmarks and tests)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __len__(self) -> int:
        return len(self._entries)


def _default_cache_size() -> int:
    raw = os.environ.get("REPRO_SCHEDULE_CACHE_SIZE", "")
    return max(1, int(raw)) if raw else 8


#: The process-wide schedule cache.  A 16k-rank schedule is tens of
#: megabytes, so the default stays small; sweeps that touch many
#: ``(algorithm, N)`` points resize it to their working set.
SCHEDULE_CACHE = ScheduleCache(_default_cache_size())


def configure_schedule_cache(maxsize: Optional[int] = None) -> ScheduleCache:
    """Resize the process-wide schedule cache (e.g. to a sweep's point
    count) and return it.  ``None`` restores the default size."""
    SCHEDULE_CACHE.resize(maxsize if maxsize is not None else _default_cache_size())
    return SCHEDULE_CACHE


def schedule_cache_stats() -> dict:
    """Hit-rate counters for perfbench and the tuner."""
    return SCHEDULE_CACHE.stats()


def make_schedule(algorithm: str, n: int) -> BarrierSchedule:
    """Build a validated schedule by algorithm name.

    Schedules are immutable and depend only on ``(algorithm, n)``, so
    repeat builds (a bench point's trials, a sweep's per-size reference
    runs) come from :data:`SCHEDULE_CACHE` instead of re-deriving and
    re-validating a quarter-million :class:`Phase` objects at N=16384.
    """
    if algorithm not in _BUILDERS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_BUILDERS)}"
        )

    def build() -> BarrierSchedule:
        schedule = _BUILDERS[algorithm](n)
        schedule.validate()
        return schedule

    return SCHEDULE_CACHE.get_or_build(("pattern", algorithm, n), build)
