"""NIC-based Alltoall over the collective protocol (§9 future work).

The second half of the paper's "Allgather or Alltoall" question, using
the Bruck algorithm so the message *pattern* stays exactly the barrier's
dissemination (one send to ``(i + 2^m) mod N`` and one receive per
round, ``ceil(log2 N)`` rounds) while personalized blocks hop toward
their destinations:

- a block travelling from origin *o* to destination *d* must cover
  distance ``(d - o) mod N``; in round *m* every block whose remaining
  distance has bit *m* set rides that round's message and its distance
  drops by ``2^m``;
- blocks reaching distance 0 have arrived; after the last round every
  rank holds one block from every origin.

Each round moves about half of a rank's outstanding blocks, so the wire
cost per rank per round is ~``4 * N/2`` bytes — the classic Bruck
trade: ``log2 N`` rounds at the price of forwarding.  Reliability is
the same receiver-driven NACK as everything else on the protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.collectives.data_engine import (
    DataCollDone,
    DisseminationDataEngine,
    _DataState,
    host_start_data_collective,
)
from repro.collectives.group import ProcessGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort

BYTES_PER_BLOCK = 4

AlltoallDone = DataCollDone


class NicAlltoallEngine(DisseminationDataEngine):
    """Per-(NIC, group) Alltoall engine (Bruck algorithm).

    Bruck routing is keyed to the dissemination distances (``2^m`` per
    round), so the engine pins that pattern regardless of the group's
    or the tuner's algorithm choice.
    """

    counter_prefix = "alltoall"
    collective_name = "alltoall"
    forced_algorithm = "dissemination"
    bytes_per_value = BYTES_PER_BLOCK

    def _init_data(self, state: _DataState, args: tuple) -> None:
        (blocks,) = args
        if set(blocks) != set(range(self.group.size)):
            raise ValueError(
                f"alltoall needs one block per destination rank; got {sorted(blocks)}"
            )
        buckets: dict[int, dict[int, Any]] = {}
        arrived: dict[int, Any] = {}
        for dst, value in blocks.items():
            distance = (dst - self.rank) % self.group.size
            if distance == 0:
                arrived[self.rank] = value  # my block for myself
            else:
                buckets.setdefault(distance, {})[self.rank] = value
        state.data = {"buckets": buckets, "arrived": arrived}

    def _phase_payload(self, state: _DataState, phase: int) -> tuple[Any, int]:
        buckets = state.data["buckets"]
        moving = []
        for distance in sorted(buckets):
            if distance >> phase & 1:
                for origin, value in sorted(buckets[distance].items()):
                    moving.append((distance, origin, value))
        # The blocks leave this NIC (Bruck forwards, it does not copy).
        for distance, origin, _ in moving:
            del buckets[distance][origin]
            if not buckets[distance]:
                del buckets[distance]
        return tuple(moving), self.bytes_per_value * len(moving)

    def _merge(self, state: _DataState, payload: Any, phase: int) -> None:
        buckets = state.data["buckets"]
        arrived = state.data["arrived"]
        step = 1 << phase
        for distance, origin, value in payload:
            remaining = distance - step
            if remaining == 0:
                arrived[origin] = value
            else:
                buckets.setdefault(remaining, {})[origin] = value

    def _finish(self, state: _DataState) -> tuple[Any, int]:
        arrived = state.data["arrived"]
        assert not state.data["buckets"], "blocks left in flight"
        assert len(arrived) == self.group.size
        return (
            tuple(sorted(arrived.items())),
            self.bytes_per_value * self.group.size,
        )


def nic_alltoall(
    port: "GmPort", group: ProcessGroup, seq: int, blocks: Mapping[int, Any]
):
    """Host side: contribute one block per destination rank.

    Returns ``{origin_rank: block}`` — the blocks every other rank
    addressed to this one.
    """
    if set(blocks) != set(range(group.size)):
        raise ValueError(
            f"alltoall needs one block per destination rank; got {sorted(blocks)}"
        )
    result = yield from host_start_data_collective(
        port,
        group,
        seq,
        (dict(blocks),),
        contribute_bytes=BYTES_PER_BLOCK * group.size,
    )
    return dict(result)
