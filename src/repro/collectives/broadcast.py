"""NIC-based broadcast over the collective protocol (§9 future work).

The paper closes by planning to combine this barrier with "the
NIC-based broadcast [18]" (Yu, Buntinas & Panda, ICPP'03: reliable
NIC-based multicast over Myrinet/GM-2).  This module implements that
companion collective on top of the same protocol machinery:

- the root's host DMAs the payload into NIC SRAM once and posts a
  single start command;
- NICs forward along a binomial tree *entirely at NIC level* (no host
  crossing at interior nodes until local delivery);
- reliability is receiver-driven, exactly like the barrier: children
  that miss the payload NACK their parent, which re-injects from SRAM.

Forwarding uses the collective fast path (dedicated queue semantics),
so a hop costs ``t_coll_trigger`` + injection + wire — not the p2p
token/packet/record path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.collectives.data_engine import CollectiveFailure, DataCollFailed
from repro.collectives.failures import FailureReason, Revoked
from repro.collectives.group import ProcessGroup
from repro.network import Packet, PacketKind

#: Typed failure reason when a child exhausts its NACK retry budget
#: (back-compat alias into the registry).
BCAST_RETRY_BUDGET_EXHAUSTED = FailureReason.BCAST_BUDGET.value

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.gm_api import GmPort
    from repro.myrinet.nic import LanaiNic


@dataclass(frozen=True)
class BcastMsg:
    """A broadcast payload hop (NIC → NIC)."""

    group_id: int
    seq: int
    root: int  # rank
    size_bytes: int
    payload: Any = None


@dataclass(frozen=True)
class BcastNack:
    """Receiver-driven retransmission request for a broadcast."""

    group_id: int
    seq: int
    requester: int  # rank missing the payload


@dataclass(frozen=True)
class BcastDone:
    """Host notification: the payload reached this node's memory."""

    group_id: int
    seq: int
    size_bytes: int
    payload: Any = None


def binomial_children(rank: int, size: int) -> list[int]:
    """Children of ``rank`` in a binomial broadcast tree rooted at 0.

    Round ``m``: every rank below ``2**m`` forwards to ``rank + 2**m``.
    """
    children = []
    gap = 1
    while gap < size:
        if rank < gap and rank + gap < size:
            children.append(rank + gap)
        gap <<= 1
    return children


def binomial_parent(rank: int, size: int) -> Optional[int]:
    if rank == 0:
        return None
    # The parent cleared the highest set bit of the rank.
    return rank - (1 << (rank.bit_length() - 1))


class _BcastState:
    __slots__ = (
        "seq", "have_payload", "message", "joined", "delivered",
        "nack_timer", "nack_rounds",
    )

    def __init__(self, seq: int):
        self.seq = seq
        self.have_payload = False
        self.message: Optional[BcastMsg] = None
        self.joined = False
        self.delivered = False
        self.nack_timer = None
        self.nack_rounds = 0

    def cancel_timer(self) -> None:
        if self.nack_timer is not None:
            self.nack_timer.cancel()
            self.nack_timer = None


class NicBroadcastEngine:
    """Per-(NIC, group) broadcast engine, rooted at rank 0.

    Registered under the group id like a barrier engine; a group object
    is dedicated to one collective (create one group per collective, as
    GM dedicates ports).
    """

    def __init__(self, nic: "LanaiNic", group: ProcessGroup, rank: int):
        if group.node_of(rank) != nic.node_id:
            raise ValueError(
                f"rank {rank} of group {group.group_id} is not on {nic.name}"
            )
        self.nic = nic
        self.group = group
        self.rank = rank
        self.children = binomial_children(rank, group.size)
        self.parent = binomial_parent(rank, group.size)
        self.states: dict[int, _BcastState] = {}
        self.closed = False
        self.broadcasts_completed = 0
        # Per-seq retirement, aligned with the bounded SRAM archive:
        # non-blocking broadcasts can complete out of order (a
        # NACK-recovered seq finishing after a younger one), so a
        # single high-watermark would drop live low-seq payloads.
        self.done_floor = -1
        # Delivered payloads stay resendable (SRAM buffer pool, as in
        # the multicast paper); pruned FIFO.  A failed seq archives
        # ``None`` — retired, but nothing to resend.
        self.archive: dict[int, Optional[BcastMsg]] = {}
        nic.register_engine(group.group_id, self)

    # ------------------------------------------------------------------
    def _retired(self, seq: int) -> bool:
        return seq <= self.done_floor or seq in self.archive

    def _retire(self, state: _BcastState) -> None:
        state.cancel_timer()
        del self.states[state.seq]
        self.archive[state.seq] = state.message
        while len(self.archive) > self.nic.params.coll_archive_depth:
            pruned = min(self.archive)
            self.archive.pop(pruned)
            self.done_floor = max(self.done_floor, pruned)

    def _state(self, seq: int) -> _BcastState:
        state = self.states.get(seq)
        if state is None:
            state = _BcastState(seq)
            self.states[seq] = state
        return state

    # ------------------------------------------------------------------
    # MCP dispatch targets
    # ------------------------------------------------------------------
    def on_command(self, command: tuple):
        kind = command[0]
        if kind == "bcast_root":
            # Root host has DMAed the payload to SRAM already.
            yield from self._on_root_start(command[1])
        elif kind == "join":
            yield from self._on_join(command[1])
        elif kind == "timeout":
            yield from self._on_nack_timeout(command[1])
        elif kind == "epoch":
            yield from self.on_epoch_change()
        elif kind == "teardown":
            yield from self.on_teardown()
        else:
            raise ValueError(f"unknown broadcast command {command!r}")

    def on_epoch_change(self):
        """Epoch died: joined, undelivered sequences fail up to the host
        with ``group-revoked``; passive states drop; the engine closes."""
        nic = self.nic
        self.closed = True
        for seq in sorted(self.states):
            state = self.states[seq]
            if state.joined and not state.delivered:
                yield from self._fail(state, FailureReason.GROUP_REVOKED.value)
            else:
                state.cancel_timer()
                del self.states[seq]
                nic.tracer.count("bcast.epoch_state_dropped")

    def on_teardown(self):
        """Silent close (dead node's own NIC at repair)."""
        nic = self.nic
        self.closed = True
        for seq in sorted(self.states):
            state = self.states.pop(seq)
            state.cancel_timer()
            nic.tracer.count("bcast.teardown_state_dropped")
        return
        yield  # pragma: no cover - makes this a generator

    def _on_root_start(self, message: BcastMsg):
        if self.rank != message.root:
            raise ValueError("bcast_root command at a non-root rank")
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_start)
        state = self._state(message.seq)
        state.have_payload = True
        state.message = message
        yield from self._forward(state)
        # The root's host already owns the data: complete immediately.
        yield from self._deliver(state, dma_payload=False)

    def _on_join(self, seq: int):
        """A non-root host posted a receive for broadcast ``seq``."""
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_start)
        if self.closed:
            nic.tracer.count("bcast.start_after_revoke")
            yield from nic.notify_host(
                DataCollFailed(
                    self.group.group_id, seq,
                    FailureReason.GROUP_REVOKED.value, nic.sim.now,
                )
            )
            return
        state = self._state(seq)
        state.joined = True
        if state.have_payload:
            yield from self._deliver(state, dma_payload=True)
        else:
            self._arm_nack_timer(state)

    def on_barrier_packet(self, packet: Packet):  # pragma: no cover - guard
        raise TypeError("broadcast engine received a barrier packet")

    def on_bcast_packet(self, packet: Packet):
        message: BcastMsg = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_trigger)
        if self.closed:
            nic.tracer.count("bcast.rx_after_revoke")
            return
        if self._retired(message.seq):
            nic.tracer.count("bcast.rx_duplicate")
            return
        state = self._state(message.seq)
        if state.have_payload:
            nic.tracer.count("bcast.rx_duplicate")
            return
        state.have_payload = True
        state.message = message
        state.cancel_timer()
        yield from self._forward(state)
        if state.joined:
            yield from self._deliver(state, dma_payload=True)

    # ------------------------------------------------------------------
    def _forward(self, state: _BcastState):
        nic = self.nic
        message = state.message
        for child in self.children:
            yield from nic.coll_inject(
                self.group.node_of(child), message, message.size_bytes
            )
            nic.tracer.count("bcast.forwarded")

    def _deliver(self, state: _BcastState, dma_payload: bool):
        if state.delivered:
            # The join command and the payload arrival raced across the
            # MCP's two loops; deliver exactly once.
            return
        state.delivered = True
        nic = self.nic
        message = state.message
        if dma_payload and message.size_bytes > 0:
            from repro.pci import DmaDirection

            yield from nic.pci.dma(message.size_bytes, DmaDirection.NIC_TO_HOST)
        yield from nic.cpu_task(nic.params.t_coll_complete)
        self.broadcasts_completed += 1
        nic.tracer.count("bcast.delivered")
        self._retire(state)
        yield from nic.notify_host(
            BcastDone(
                self.group.group_id,
                message.seq,
                message.size_bytes,
                message.payload,
            )
        )

    def _fail(self, state: _BcastState, reason: str):
        nic = self.nic
        nic.tracer.count("bcast.failed")
        self._retire(state)
        yield from nic.notify_host(
            DataCollFailed(self.group.group_id, state.seq, reason, nic.sim.now)
        )

    # ------------------------------------------------------------------
    # Receiver-driven reliability
    # ------------------------------------------------------------------
    def _arm_nack_timer(self, state: _BcastState) -> None:
        nic = self.nic
        state.nack_timer = nic.sim.schedule(
            nic.params.nack_timeout_us, self._nack_timer_fired, state.seq
        )

    def _nack_timer_fired(self, seq: int) -> None:
        state = self.states.get(seq)
        if state is not None and not state.have_payload:
            self.nic.post_engine_command((self.group.group_id, "timeout", seq))

    def _on_nack_timeout(self, seq: int):
        state = self.states.get(seq)
        if state is None or state.have_payload or self.parent is None:
            return
        state.nack_rounds += 1
        if state.nack_rounds > self.nic.params.max_retries:
            # Declare the parent dead: tear the sequence down with a
            # typed failure so the joined host unblocks instead of
            # waiting in recv_matching forever.
            self.nic.tracer.count("bcast.gave_up")
            yield from self._fail(state, BCAST_RETRY_BUDGET_EXHAUSTED)
            return
        self.nic.tracer.count("bcast.nack_timeout")
        yield from self.nic.send_nack(
            self.group.node_of(self.parent),
            BcastNack(self.group.group_id, seq, self.rank),
        )
        self._arm_nack_timer(state)

    def on_nack(self, packet: Packet):
        nack: BcastNack = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_nack_process)
        if self.closed:
            nic.tracer.count("bcast.nack_after_revoke")
            return
        state = self.states.get(nack.seq)
        if state is not None and state.have_payload:
            message = state.message
            nic.tracer.count("bcast.nack_retransmit")
        elif state is None:
            # Already delivered and pruned: serve from the SRAM buffer
            # pool (the multicast paper's retained payloads).
            message = self.archive.get(nack.seq)
            if message is None:
                nic.tracer.count("bcast.nack_unrecoverable")
                return
            nic.tracer.count("bcast.nack_stale_resend")
        else:
            nic.tracer.count("bcast.nack_premature")
            return
        yield from nic.coll_inject(
            self.group.node_of(nack.requester), message, message.size_bytes
        )


# ----------------------------------------------------------------------
# Host-side entry points
# ----------------------------------------------------------------------
def broadcast_matcher(group: ProcessGroup, seq: int):
    """Event matcher for one broadcast's local delivery or failure."""
    return (
        lambda ev: isinstance(ev, (BcastDone, DataCollFailed))
        and ev.group_id == group.group_id
        and ev.seq == seq
    )


def interpret_broadcast(done, group: ProcessGroup, node_id: int):
    if isinstance(done, DataCollFailed):
        if done.reason == FailureReason.GROUP_REVOKED.value:
            raise Revoked(group.group_id, done.seq, node=node_id,
                          failed_at=done.failed_at)
        raise CollectiveFailure(group.group_id, done.seq, done.reason, node=node_id)
    return done


def post_broadcast_root(
    port: "GmPort", group: ProcessGroup, seq: int, size_bytes: int, payload: Any = None
):
    """Root side, non-blocking: push the payload to the NIC and start
    the broadcast without waiting for delivery."""
    from repro.pci import DmaDirection

    rank = group.rank_of(port.node_id)
    yield from port.cpu.compute(port.cpu.params.send_overhead_us)
    yield from port.pci.pio_write()
    if size_bytes > 0:
        yield from port.pci.dma(size_bytes, DmaDirection.HOST_TO_NIC)
    port.nic.post_engine_command(
        (
            group.group_id,
            "bcast_root",
            BcastMsg(group.group_id, seq, rank, size_bytes, payload),
        )
    )


def post_broadcast_recv(port: "GmPort", group: ProcessGroup, seq: int):
    """Non-root side, non-blocking: join the broadcast."""
    yield from port.cpu.compute(port.cpu.params.recv_overhead_us)
    yield from port.pci.pio_write()
    port.nic.post_engine_command((group.group_id, "join", seq))


def wait_broadcast(port: "GmPort", group: ProcessGroup, seq: int):
    """Block until broadcast ``seq`` delivers locally (or fails typed)."""
    done = yield from port.recv_matching(broadcast_matcher(group, seq))
    return interpret_broadcast(done, group, port.node_id)


def nic_broadcast_root(
    port: "GmPort", group: ProcessGroup, seq: int, size_bytes: int, payload: Any = None
):
    """Root side: push the payload to the NIC and start the broadcast."""
    yield from post_broadcast_root(port, group, seq, size_bytes, payload)
    done = yield from wait_broadcast(port, group, seq)
    return done


def nic_broadcast_recv(port: "GmPort", group: ProcessGroup, seq: int):
    """Non-root side: join the broadcast and wait for local delivery."""
    yield from post_broadcast_recv(port, group, seq)
    done = yield from wait_broadcast(port, group, seq)
    return done
