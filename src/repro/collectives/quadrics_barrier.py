"""NIC-based barrier over Quadrics via chained RDMA descriptors (§7).

The paper's design choices, reproduced here:

- **No Elan thread**: "we have chosen not to set up an additional
  thread ... and instead, set up a list of chained RDMA descriptors at
  the NIC from user-level."  Only the event unit and DMA engine run.
- **Event-triggered chain**: "The RDMA operations are triggered only
  upon the arrival of a remote event except the very first RDMA
  operation, which the host process triggers to initiate a barrier."
- **Host completion**: "The completion of the very last RDMA operation
  will trigger a local event to the host process."

Chain construction
------------------
Each rank's schedule is flattened into an alternating list of
operations: ``send`` (one or more RDMA descriptors, issued in order)
and ``wait`` (an Elan event that must collect that step's arrivals).
The chain is strictly *sequential*: operation *t+1* is gated on an
event fed by **both** operation *t*'s completion (the last descriptor's
local completion event, or a chained set-event for wait → wait links)
**and** its own arrivals.  This sequencing is what makes the barrier
sound — a message sent at step *t* proves its sender finished steps
``0..t-1``, so causality covers every participant by the last step.
(Gating each step only on its own arrival event is *not* sufficient;
the end-to-end tests catch that variant letting a rank exit before a
straggler enters.)

Event words are cumulative counters, so consecutive barriers reuse the
same per-step events with thresholds that grow by the step's expected
count each iteration — early messages from barrier *k+1* simply
pre-increment the counters (see
:class:`repro.quadrics.events.ElanEvent`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.failures import FailureReason, Revoked
from repro.collectives.group import ProcessGroup
from repro.collectives.messages import BarrierDone, BarrierFailed, BarrierFailure
from repro.quadrics.elan import RdmaDescriptor
from repro.quadrics.elanlib import ElanPort


@dataclass(frozen=True)
class _Op:
    """One link of the flattened chain: a send or a wait."""

    kind: str  # "send" | "wait"
    peers: tuple[int, ...]  # dst ranks (send) or src ranks (wait)


def _flatten_ops(phases) -> list[_Op]:
    """Flatten phases into the alternating send/wait operation list.

    Adjacent sends merge (they just queue on the DMA engine); empty
    phases disappear.  The final virtual "done" wait is added by the
    driver, not here.
    """
    ops: list[_Op] = []

    def _append(kind: str, peers: tuple[int, ...]) -> None:
        if not peers:
            return
        if ops and ops[-1].kind == kind == "send":
            ops[-1] = _Op("send", ops[-1].peers + peers)
        else:
            ops.append(_Op(kind, peers))

    for phase in phases:
        if phase.send_first:
            _append("send", phase.sends)
            _append("wait", phase.recvs)
        else:
            _append("wait", phase.recvs)
            _append("send", phase.sends)
    return ops


def _group_chain_layout(group: ProcessGroup) -> tuple[list, list]:
    """Every rank's flattened ops and wait-index map, computed **once**.

    Each of the N drivers needs the wait-op index its peers use for
    messages from *it*.  Flattening every peer's schedule inside every
    driver's constructor is O(N^2 log N) — the wall that capped sweeps at
    1024 nodes (69 of 85 seconds at N=1024 went to driver setup).  One
    shared pass flattens each rank exactly once and inverts the relation
    into ``wait_maps[rank][src] -> op index``; drivers then look up only
    their own O(log N) peers.  Cached on the group (immutable after
    construction), so all N drivers share one layout.
    """
    cached = getattr(group, "_chained_layout", None)
    if cached is not None:
        return cached
    rank_ops = [_flatten_ops(group.schedule.phases(r)) for r in range(group.size)]
    wait_maps: list[dict[int, int]] = []
    for ops in rank_ops:
        waits: dict[int, int] = {}
        for t, op in enumerate(ops):
            if op.kind == "wait":
                for src in op.peers:
                    waits[src] = t  # later wait wins, as in the per-driver scan
        wait_maps.append(waits)
    group._chained_layout = (rank_ops, wait_maps)
    return group._chained_layout


def prearm_chained_group(drivers, total_iterations: int) -> bool:
    """Batch-arm every driver's chain for the whole experiment.

    Homogeneous-phase batching: all N ranks run the same chain shape, so
    the per-iteration bookkeeping (threshold arming, done-word notify
    values) collapses into one setup pass over ranks x iterations instead
    of N generator-resumed arm loops per barrier.

    Bit-identical only when no wait word's threshold can be crossed
    before its per-iteration arm point.  Every wait op at index > 0
    carries a chain link fed by the rank's *own* previous op — which
    trails the host's arm-and-trigger — so its threshold is structurally
    unreachable early.  A chain *starting* with a wait (gather-broadcast
    root) has no such link and could fire at arm time under per-iteration
    arming; if any rank's chain starts with a wait the whole group falls
    back to per-iteration arming.  Returns whether prearming applied.
    """
    dset = list(drivers.values())
    if not all(d.ops and d.ops[0].kind == "send" for d in dset):
        return False
    for driver in dset:
        for seq in range(driver._prearmed, total_iterations):
            driver._arm_chain(seq)
        driver._prearmed = max(driver._prearmed, total_iterations)
    return True


class _RemoteWaitView:
    """Lazy ``dst_rank -> wait-op index`` mapping for one sender.

    Backed by the group-shared wait maps; materializing a per-driver
    dict over all N destinations would reintroduce the O(N^2) setup the
    shared layout removed, and a driver only ever looks up its own
    O(log N) send peers.
    """

    __slots__ = ("_maps", "_rank")

    def __init__(self, wait_maps: list, rank: int):
        self._maps = wait_maps
        self._rank = rank

    def __getitem__(self, dst_rank: int) -> int:
        return self._maps[dst_rank][self._rank]


class QuadricsChainedBarrier:
    """Per-rank chained-RDMA barrier driver (host object).

    Build once per (port, group); call :meth:`barrier` with increasing
    sequence numbers.
    """

    def __init__(self, port: ElanPort, group: ProcessGroup):
        self.port = port
        self.group = group
        self.rank = group.rank_of(port.node_id)
        rank_ops, wait_maps = _group_chain_layout(group)
        self.phases = group.schedule.phases(self.rank)
        self.ops = rank_ops[self.rank]
        # Which wait-op index at each destination rank expects *us*.
        rank = self.rank
        self.remote_wait_index = _RemoteWaitView(wait_maps, rank)
        self.barriers_completed = 0
        self._prearmed = 0  # chains armed through this seq (exclusive)
        self._done_name = self._done_event()
        self._plan, self._head = self._build_plan()
        #: Started-but-not-yet-completed sequence numbers: what
        #: :meth:`revoke` must resolve with synthetic failure words so
        #: a waiter of a dead epoch unblocks instead of hanging.
        self._outstanding: set[int] = set()
        self.closed = False

    # ------------------------------------------------------------------
    # Event-word naming and cumulative thresholds
    # ------------------------------------------------------------------
    def _wait_event(self, op_index: int) -> str:
        return f"g{self.group.group_id}w{op_index}"

    def _done_event(self) -> str:
        return f"g{self.group.group_id}done"

    def _per_barrier(self, op_index: int) -> int:
        """Set-events this wait op's word collects per barrier."""
        arrivals = len(self.ops[op_index].peers)
        link = 1 if op_index > 0 else 0  # the chain link from op t-1
        return arrivals + link

    def _threshold(self, seq: int, op_index: int) -> int:
        return (seq + 1) * self._per_barrier(op_index)

    # ------------------------------------------------------------------
    # Chain arming
    # ------------------------------------------------------------------
    def _descriptors(self, op: _Op, next_gate: str) -> list[RdmaDescriptor]:
        """Build a send op's descriptor list; the last descriptor's
        local completion feeds the next chain link."""
        descriptors = []
        for k, dst in enumerate(op.peers):
            descriptors.append(
                RdmaDescriptor(
                    dst=self.group.node_of(dst),
                    remote_event=self._wait_event(self.remote_wait_index[dst]),
                    size_bytes=0,
                    local_event=next_gate if k == len(op.peers) - 1 else None,
                    group_id=self.group.group_id,
                )
            )
        return descriptors

    def _build_plan(self):
        """Precompute the seq-invariant part of the chain.

        Event words, descriptor contents and the armed actions are the
        same every iteration — only the (linear-in-seq) thresholds
        change.  Descriptors are deliberately shared across iterations:
        they are never mutated, and a packet snapshots nothing beyond a
        reference to them.
        """
        nic = self.port.nic
        ops = self.ops
        head: list[RdmaDescriptor] = []
        plan: list[tuple] = []  # (ElanEvent, per-barrier count, actions)
        for t, op in enumerate(ops):
            next_gate = (
                self._wait_event(t + 1) if t + 1 < len(ops) else self._done_name
            )
            if op.kind == "send":
                if t == 0:
                    head = self._descriptors(op, next_gate)
                # A send op at t > 0 is issued by op t-1's firing —
                # which is always a wait op (adjacent sends merged), so
                # it is armed as that wait's action below.
            else:  # wait
                event = nic.event(self._wait_event(t))
                if t + 1 < len(ops) and ops[t + 1].kind == "send":
                    follow = self._descriptors(ops[t + 1], self._gate_after(t + 1))
                    actions = tuple(
                        (lambda d=descriptor: nic.issue_rdma(d))
                        for descriptor in follow
                    )
                else:
                    # wait -> wait/done: a chained set-event (SRAM write).
                    actions = (nic.event(next_gate).set_event,)
                plan.append((event, self._per_barrier(t), actions))
        return plan, head

    def _arm_chain(self, seq: int) -> list[RdmaDescriptor]:
        """Arm every link of this barrier's chain; return the head
        descriptors the host must trigger itself (if the chain starts
        with a send)."""
        s1 = seq + 1
        for event, per_barrier, actions in self._plan:
            threshold = s1 * per_barrier
            for action in actions:
                event.arm(threshold, action)
        self.port.nic.arm_host_notify(
            self._done_name,
            s1,  # the done word collects exactly one set per barrier
            value=BarrierDone(self.group.group_id, seq, completed_at=0.0),
        )
        return self._head

    def _gate_after(self, send_op_index: int) -> str:
        """The event a send op's completion feeds (the op after it)."""
        if send_op_index + 1 < len(self.ops):
            return self._wait_event(send_op_index + 1)
        return self._done_event()

    # ------------------------------------------------------------------
    def _matcher(self, seq: int):
        return (
            lambda ev: isinstance(ev, (BarrierDone, BarrierFailed))
            and ev.group_id == self.group.group_id
            and ev.seq == seq
        )

    def _interpret(self, event):
        """Resolve a completion word to a result or a typed failure."""
        self._outstanding.discard(getattr(event, "seq", -1))
        if isinstance(event, BarrierFailed):
            if event.reason == FailureReason.GROUP_REVOKED.value:
                raise Revoked(
                    event.group_id,
                    event.seq,
                    node=self.port.node_id,
                    failed_at=event.failed_at,
                )
            raise BarrierFailure(
                event.group_id, event.seq, event.reason, node=self.port.node_id
            )
        self.barriers_completed += 1
        return event

    def revoke(self):
        """Tear down this driver's epoch after a membership change.

        Disarms every armed action on the group's chain events (a stale
        chain link firing after repair would DMA a ghost done-word into
        the new epoch's host queue) and resolves every outstanding
        sequence with a synthetic revocation word, so blocked waiters
        surface :class:`Revoked` instead of hanging on a chain that can
        never complete — some of its senders are dead.
        """
        if self.closed:
            return
        self.closed = True
        nic = self.port.nic
        disarmed = nic.disarm_events(f"g{self.group.group_id}")
        nic.tracer.count("elan.barrier_revoked")
        if disarmed:
            nic.tracer.count("elan.barrier_revoke_disarmed", disarmed)
        for seq in sorted(self._outstanding):
            nic.host_events.put(
                BarrierFailed(
                    self.group.group_id,
                    seq,
                    FailureReason.GROUP_REVOKED.value,
                    failed_at=self.port.sim.now,
                )
            )

    def start_barrier(self, seq: int):
        """Non-blocking half: arm the chain and trigger the head.

        Event words are cumulative, so several sequences can be armed
        and in flight at once — arming always proceeds contiguously up
        through ``seq`` (thresholds are linear in the iteration count).
        Pair with :meth:`wait_barrier`.
        """
        if self.closed:
            raise Revoked(
                self.group.group_id,
                seq,
                node=self.port.node_id,
                failed_at=self.port.sim.now,
            )
        port = self.port
        nic = port.nic
        yield from port.cpu.compute(port.cpu.params.barrier_call_us, "barrier_call")
        # One command crossing re-arms the descriptor list for this
        # iteration (the SRAM writes ride the same PIO burst).
        yield from port._command()
        if not self.ops:
            return
        self._outstanding.add(seq)
        # Prearmed chains (see prearm_chained_group) skip the arm loop:
        # the thresholds are already in SRAM, only the head trigger and
        # the completion wait remain per iteration.
        if seq >= self._prearmed:
            head = None
            for s in range(self._prearmed, seq + 1):
                head = self._arm_chain(s)
            self._prearmed = seq + 1
        else:
            head = self._head
        # "The very first RDMA operation ... the host process triggers."
        for descriptor in head:
            nic.issue_rdma(descriptor)

    def wait_barrier(self, seq: int):
        """Blocking wait for a previously-started barrier.

        Raises :class:`Revoked` when the group was revoked while the
        barrier was in flight, :class:`BarrierFailure` on any other
        failure word.
        """
        if not self.ops:
            # Degenerate single-rank group: nothing to wait for.
            self.barriers_completed += 1
            return None
        done = yield from self.port.wait_host_event(self._matcher(seq))
        return self._interpret(done)

    def ibarrier(self, seq: int):
        """Post a barrier; returns a request handle with generator
        ``wait()``/``test()`` methods (the Quadrics counterpart of
        :class:`repro.collectives.nonblocking.CollectiveRequest`)."""
        yield from self.start_barrier(seq)
        return QuadricsBarrierRequest(self, seq)

    def barrier(self, seq: int):
        """One barrier: arm the chain, trigger the head, await the tail."""
        yield from self.start_barrier(seq)
        done = yield from self.wait_barrier(seq)
        return done


class QuadricsBarrierRequest:
    """Handle for one in-flight chained-RDMA barrier."""

    def __init__(self, driver: QuadricsChainedBarrier, seq: int):
        self.driver = driver
        self.seq = seq
        self.done = False
        self.result = None
        self.failure: Exception | None = None

    def wait(self):
        if self.done:
            if self.failure is not None:
                raise self.failure
            return self.result
        try:
            self.result = yield from self.driver.wait_barrier(self.seq)
        except (Revoked, BarrierFailure) as exc:
            self.done = True
            self.failure = exc
            raise
        self.done = True
        return self.result

    def test(self):
        """One non-blocking poll: ``True`` iff the barrier resolved.

        A barrier that resolved to a failure word raises the typed
        failure (:class:`Revoked` / :class:`BarrierFailure`) — the
        handle is *done*, not pending, so it never hangs.
        """
        if self.done:
            if self.failure is not None:
                raise self.failure
            return True
        driver = self.driver
        if not driver.ops:
            self.result = yield from driver.wait_barrier(self.seq)
            self.done = True
            return True
        event = yield from driver.port.poll_host_event(driver._matcher(self.seq))
        if event is None:
            return False
        self.done = True
        try:
            self.result = driver._interpret(event)
        except (Revoked, BarrierFailure) as exc:
            self.failure = exc
            raise
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.done else "in-flight"
        return (
            f"<QuadricsBarrierRequest group={self.driver.group.group_id}"
            f" seq={self.seq} {status}>"
        )
