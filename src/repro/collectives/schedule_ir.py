"""Precompiled collective schedules (the libnbc idea, NIC-side).

libnbc showed that a non-blocking collective should be *compiled once*
into a schedule — an ordered list of primitive operations per rank —
and then merely *replayed* on every start (``NBC_Ibarrier`` builds the
round structure on first use and parks it in the communicator under
``NBC_CACHE_SCHEDULE``).  This module is that compiler for the NIC
engines: a :class:`CollectiveSchedule` is the per-rank op list for one
``(collective, algorithm, group size, payload)`` combination, derived
from the barrier message patterns of §5 and annotated with the
collective's data movement:

- ``send``   — inject one message to a peer rank (payload built by the
  engine's ``_phase_payload`` hook; ``nbytes`` is pinned at compile
  time where the collective's wire cost is closed-form);
- ``recv``   — wait for the message a peer sends us (``peer_phase`` is
  the phase tag the *sender* stamps, precomputed so receivers match and
  NACK correctly even on asymmetric schedules like pairwise-exchange);
- ``reduce`` — fold the received payload into local state (the engine's
  ``_merge`` hook);
- ``dma``    — deliver the result across the PCI bus and notify the
  host (the engine's ``_finish`` hook sizes it when ``nbytes < 0``).

Starting a collective is then "replay this op list", not "re-derive
the dissemination pattern": :class:`~repro.collectives.data_engine
.DisseminationDataEngine` walks the ops with a single index per
sequence.  Compiled schedules are cached in two layers — per
communicator on the :class:`~repro.collectives.group.ProcessGroup`
(the libnbc cache) and process-wide in
:data:`repro.collectives.algorithms.SCHEDULE_CACHE` (shared with the
barrier pattern builders, so the tuner's sweeps size one cache).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.collectives.algorithms import SCHEDULE_CACHE, make_schedule

#: Collectives whose merge operator is a *reduction* (not a union):
#: their schedules must never deliver the same contribution twice
#: unless the incoming partial supersedes the local one entirely.
REDUCING_COLLECTIVES = frozenset({"allreduce", "reduce"})


@dataclass(frozen=True)
class ScheduleOp:
    """One primitive operation of a compiled collective schedule."""

    kind: str  # "send" | "recv" | "reduce" | "dma"
    phase: int  # this rank's phase index (payload build + send tag)
    peer: int = -1  # dst rank (send) / src rank (recv, reduce)
    peer_phase: int = -1  # recv: phase tag the sender stamps on the wire
    nbytes: int = -1  # wire/DMA bytes; -1 = sized at runtime by a hook

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" peer={self.peer}" if self.peer >= 0 else ""
        if self.kind == "recv":
            extra += f" peer_phase={self.peer_phase}"
        if self.nbytes >= 0:
            extra += f" nbytes={self.nbytes}"
        return f"<op {self.kind} phase={self.phase}{extra}>"


@dataclass(frozen=True)
class CollectiveSchedule:
    """Per-rank op lists for one collective on one group shape.

    ``algorithm`` is the message pattern the ops actually follow;
    ``requested_algorithm`` is what the caller asked for before
    :func:`normalize_algorithm` substituted a reduce-safe pattern (the
    two differ only for reducing collectives at non-reduce-safe
    shapes).  Tuner tables and experiment labels must use
    ``algorithm`` — labelling a pairwise-exchange run "dissemination"
    misattributes the measurement.
    """

    collective: str
    algorithm: str
    size: int
    payload_bytes: int
    ops_by_rank: tuple[tuple[ScheduleOp, ...], ...]
    root: int = 0
    requested_algorithm: str = ""
    #: Explicit rank -> node mapping this schedule was compiled over.
    #: Empty for the pristine ``range(N)`` grid; a repaired epoch's
    #: survivor set otherwise (ops always speak *ranks* — members is
    #: provenance, and the membership-digest cache key derives from it).
    members: tuple[int, ...] = ()

    @property
    def normalized(self) -> bool:
        """Did compilation substitute a different message pattern?"""
        return bool(
            self.requested_algorithm
            and self.requested_algorithm != self.algorithm
        )

    def ops(self, rank: int) -> tuple[ScheduleOp, ...]:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return self.ops_by_rank[rank]

    @property
    def max_ops(self) -> int:
        return max((len(ops) for ops in self.ops_by_rank), default=0)

    def total_messages(self) -> int:
        """Wire messages per sequence over all ranks."""
        return sum(
            1
            for ops in self.ops_by_rank
            for op in ops
            if op.kind == "send"
        )

    def describe(self, rank: int) -> str:  # pragma: no cover - debugging aid
        return " -> ".join(repr(op) for op in self.ops(rank))


def bitmap_bytes(n: int) -> int:
    """Bytes of an N-rank contributor bitmap."""
    return (n + 7) // 8


def reduce_safe(algorithm: str, n: int) -> bool:
    """Can a reduction run on this message pattern without ever merging
    overlapping contribution sets?

    - ``pairwise-exchange``: always — aligned power-of-two blocks (the
      pre/post steps fold extras disjointly and release the superset);
    - ``gather-broadcast``: always — subtrees are disjoint going up and
      the release going down is the full superset;
    - ``dissemination``: only for powers of two; otherwise the last
      round's wrapped block overlaps the receiver's own block and an
      aggregated partial cannot be split back apart.
    """
    if algorithm in ("pairwise-exchange", "gather-broadcast"):
        return True
    if algorithm == "dissemination":
        return n & (n - 1) == 0
    return False


def normalize_algorithm(collective: str, algorithm: str, n: int) -> str:
    """Substitute a reduce-safe pattern when the requested one is not.

    Dissemination Allreduce at non-powers-of-two would need to split
    aggregated partials (impossible once values are folded), so
    reductions silently normalize to pairwise-exchange there — the same
    ``floor(log2 N) + 2``-step pattern MPICH falls back to.
    """
    if collective in REDUCING_COLLECTIVES and not reduce_safe(algorithm, n):
        return "pairwise-exchange"
    return algorithm


def _wire_nbytes(collective: str, n: int, payload_bytes: int) -> int:
    """Per-hop wire bytes where the collective's cost is closed-form.

    Allreduce/Reduce carry exactly one partially-reduced value plus the
    contributor bitmap per hop — O(1)+bitmap, the fix for the old
    O(N) gathered-map payload.  Barrier messages carry no data.
    Allgather/Alltoall payloads grow or shrink per round; their hooks
    size each message at runtime (``-1`` here).
    """
    if collective in REDUCING_COLLECTIVES:
        return payload_bytes + bitmap_bytes(n)
    if collective == "barrier":
        return 0
    return -1


def _result_nbytes(
    collective: str, n: int, payload_bytes: int, rank: int, root: int
) -> int:
    if collective == "barrier":
        return 0
    if collective == "allreduce":
        return payload_bytes
    if collective == "reduce":
        return payload_bytes if rank == root else 0
    if collective in ("allgather", "alltoall"):
        return n * payload_bytes
    return -1


#: Shapes already warned about, so each silent substitution surfaces
#: exactly once per process instead of once per compile/cache miss.
_normalization_warned: set[tuple[str, str, int]] = set()


def compile_schedule(
    collective: str,
    algorithm: str,
    n: int,
    payload_bytes: int = 0,
    root: int = 0,
    members: tuple[int, ...] | None = None,
    membership_digest: str | None = None,
) -> CollectiveSchedule:
    """Compile (and cache) the op lists for one collective shape.

    The barrier message pattern supplies who-talks-to-whom-when; this
    pass flattens it into per-rank op lists, resolves every receive's
    sender-side phase tag (asymmetric schedules number their phases
    differently on the two ends of a wire), and pins wire/DMA sizes
    where the collective's cost model is closed-form.  Results are
    cached process-wide in ``SCHEDULE_CACHE``; :class:`ProcessGroup`
    adds the per-communicator layer on top.

    When :func:`normalize_algorithm` substitutes a reduce-safe pattern
    the compiled schedule records the original request in
    ``requested_algorithm`` and a one-shot :class:`RuntimeWarning` is
    emitted, so tuner tables and experiment labels cannot silently
    attribute a pairwise-exchange measurement to dissemination.

    ``members`` compiles over an explicit rank -> node set (a repaired
    epoch's survivors) instead of the implicit ``range(N)``: the op
    lists are identical for identical sizes, but the schedule records
    its membership and the cache key gains ``membership_digest`` so a
    survivor-epoch schedule can never be confused with (or poison) the
    pristine grid's entries.
    """
    if members is not None and len(members) != n:
        raise ValueError(
            f"explicit member set has {len(members)} nodes, expected {n}"
        )
    requested = algorithm
    algorithm = normalize_algorithm(collective, algorithm, n)
    if algorithm != requested:
        mark = (collective, requested, n)
        if mark not in _normalization_warned:
            _normalization_warned.add(mark)
            warnings.warn(
                f"{collective} at N={n} cannot run {requested!r} (not "
                f"reduce-safe); schedule normalized to {algorithm!r}. "
                "Label results with CollectiveSchedule.algorithm, not the "
                "requested name.",
                RuntimeWarning,
                stacklevel=2,
            )
    key = ("ir", collective, requested, n, payload_bytes, root)
    if members is not None:
        # Keyed on the epoch's membership digest: pristine range(N)
        # keys stay bit-for-bit unchanged (run-cache compatibility),
        # survivor epochs get their own entries.
        key = key + (membership_digest or ",".join(map(str, members)),)
    return SCHEDULE_CACHE.get_or_build(
        key,
        lambda: _compile(
            collective, algorithm, n, payload_bytes, root, requested,
            members=members,
        ),
    )


def _compile(
    collective: str,
    algorithm: str,
    n: int,
    payload_bytes: int,
    root: int,
    requested: str = "",
    members: tuple[int, ...] | None = None,
) -> CollectiveSchedule:
    base = make_schedule(algorithm, n)
    # The phase index at which ``src`` sends to ``dst``: receivers match
    # and NACK with the *sender's* tag.  Unique per (src, dst) pair —
    # BarrierSchedule.validate() guarantees it.
    send_phase: dict[tuple[int, int], int] = {}
    for rank in range(n):
        for m, phase in enumerate(base.phases(rank)):
            for dst in phase.sends:
                send_phase[(rank, dst)] = m

    wire = _wire_nbytes(collective, n, payload_bytes)
    ops_by_rank = []
    for rank in range(n):
        ops: list[ScheduleOp] = []

        def _sends(m: int, phase) -> None:
            for dst in phase.sends:
                ops.append(ScheduleOp("send", m, peer=dst, nbytes=wire))

        def _recvs(m: int, phase) -> None:
            for src in phase.recvs:
                ops.append(
                    ScheduleOp(
                        "recv", m, peer=src, peer_phase=send_phase[(src, rank)]
                    )
                )
                ops.append(ScheduleOp("reduce", m, peer=src))

        for m, phase in enumerate(base.phases(rank)):
            if phase.send_first:
                _sends(m, phase)
                _recvs(m, phase)
            else:
                _recvs(m, phase)
                _sends(m, phase)
        ops.append(
            ScheduleOp(
                "dma",
                len(base.phases(rank)),
                nbytes=_result_nbytes(collective, n, payload_bytes, rank, root),
            )
        )
        ops_by_rank.append(tuple(ops))
    return CollectiveSchedule(
        collective,
        algorithm,
        n,
        payload_bytes,
        tuple(ops_by_rank),
        root=root,
        requested_algorithm=requested or algorithm,
        members=tuple(members) if members is not None else (),
    )
