"""Shared machinery for data-bearing dissemination collectives.

The barrier's collective protocol generalizes to data collectives that
follow the same dissemination message pattern (one send + one receive
per round, ``ceil(log2 N)`` rounds): Allgather, Alltoall (Bruck) and
Allreduce all specialize :class:`DisseminationDataEngine` through four
hooks:

- ``_init_data``      — seed per-sequence state from the host command;
- ``_phase_payload``  — build round *m*'s outgoing payload (+ wire bytes);
- ``_merge``          — fold an arrived payload into the state;
- ``_finish``         — produce the host-visible result (+ DMA bytes).

The base class provides everything the paper's protocol prescribes:
the fast send path (no p2p queues/records), one logical record per
operation, receiver-driven NACK retransmission, cumulative duplicate
suppression, and retention of sent payloads so even post-completion
NACKs are answerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.collectives.algorithms import dissemination
from repro.collectives.group import ProcessGroup
from repro.collectives.messages import BarrierFailure
from repro.network import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.myrinet.nic import LanaiNic


@dataclass(frozen=True)
class DataCollMsg:
    """One dissemination hop of a data collective."""

    group_id: int
    seq: int
    sender: int
    phase: int
    payload: Any
    nbytes: int


@dataclass(frozen=True)
class DataCollNack:
    """Receiver-driven retransmission request (shared by all data
    collectives)."""

    group_id: int
    seq: int
    phase: int
    missing_sender: int
    requester: int


@dataclass(frozen=True)
class DataCollDone:
    """Host notification carrying the collective's result."""

    group_id: int
    seq: int
    result: Any


@dataclass(frozen=True)
class DataCollFailed:
    """Failure notification the NIC DMAs to the host.

    Posted when the engine detects an unrecoverable protocol violation
    (e.g. ranks disagreeing on the Allreduce operator).  The NIC has
    already torn the sequence's state down; the host-side wrapper
    raises it as :class:`CollectiveFailure`.
    """

    group_id: int
    seq: int
    reason: str
    failed_at: float


class CollectiveFailure(BarrierFailure):
    """A data collective gave up instead of hanging — same typed
    escalation surface as :class:`~repro.collectives.messages
    .BarrierFailure`, so existing handlers catch both."""


class _DataState:
    """Per-(rank, sequence) progress for one data collective."""

    __slots__ = (
        "seq", "data", "phase", "started", "complete", "in_progress",
        "sent_current_phase", "sent_messages", "pending", "nack_timer",
        "nack_rounds",
    )

    def __init__(self, seq: int):
        self.seq = seq
        self.data: Any = None
        self.phase = 0
        self.started = False
        self.complete = False
        self.in_progress = False
        self.sent_current_phase = False
        self.sent_messages: dict[int, DataCollMsg] = {}
        self.pending: dict[int, DataCollMsg] = {}  # sender -> message
        self.nack_timer = None
        self.nack_rounds = 0

    def cancel_timer(self) -> None:
        if self.nack_timer is not None:
            self.nack_timer.cancel()
            self.nack_timer = None


class DisseminationDataEngine:
    """Base NIC engine for dissemination-patterned data collectives."""

    counter_prefix = "datacoll"
    #: Per-sequence state class; subclasses needing extra fields (e.g.
    #: Allreduce's operator) override with a ``_DataState`` subclass.
    state_cls = _DataState

    def __init__(self, nic: "LanaiNic", group: ProcessGroup, rank: int):
        if group.node_of(rank) != nic.node_id:
            raise ValueError(
                f"rank {rank} of group {group.group_id} is not on {nic.name}"
            )
        self.nic = nic
        self.group = group
        self.rank = rank
        self.phases = dissemination(group.size).phases(rank)
        self.states: dict[int, _DataState] = {}
        self.completed = 0
        self.done_through = -1
        # Sent payloads retained past completion for stale NACKs
        # (bounded SRAM retention, pruned FIFO).
        self.archive: dict[int, dict[int, DataCollMsg]] = {}
        nic.register_engine(group.group_id, self)

    # -- hooks ---------------------------------------------------------
    def _init_data(self, state: _DataState, args: tuple) -> None:
        raise NotImplementedError

    def _phase_payload(self, state: _DataState, phase: int) -> tuple[Any, int]:
        raise NotImplementedError

    def _merge(self, state: _DataState, payload: Any, phase: int) -> None:
        raise NotImplementedError

    def _finish(self, state: _DataState) -> tuple[Any, int]:
        raise NotImplementedError

    def _validate(self, state: _DataState, message: DataCollMsg) -> Optional[str]:
        """Check an arrived message against this rank's collective
        arguments before merging.  A non-``None`` reason fails the
        sequence with a typed :class:`DataCollFailed` instead of
        silently merging inconsistent contributions."""
        return None

    # -- plumbing --------------------------------------------------------
    def _state(self, seq: int) -> _DataState:
        state = self.states.get(seq)
        if state is None:
            state = self.state_cls(seq)
            self.states[seq] = state
        return state

    def on_command(self, command: tuple):
        kind = command[0]
        if kind == "start":
            yield from self._on_start(command[1], command[2:])
        elif kind == "timeout":
            yield from self._on_nack_timeout(command[1])
        else:
            raise ValueError(f"unknown {self.counter_prefix} command {command!r}")

    def _on_start(self, seq: int, args: tuple):
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_start)
        state = self._state(seq)
        self._init_data(state, args)
        state.started = True
        self._arm_nack_timer(state)
        yield from self._progress(seq)

    def on_bcast_packet(self, packet: Packet):
        """Data-collective traffic arrives as BCAST-kind packets."""
        message: DataCollMsg = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_coll_trigger)
        if message.seq <= self.done_through:
            nic.tracer.count(f"{self.counter_prefix}.rx_duplicate")
            return
        state = self._state(message.seq)
        if message.sender in state.pending:
            nic.tracer.count(f"{self.counter_prefix}.rx_duplicate")
            return
        state.pending[message.sender] = message
        if state.started and not state.complete:
            yield from self._progress(message.seq)

    def on_barrier_packet(self, packet: Packet):  # pragma: no cover - guard
        raise TypeError(f"{self.counter_prefix} engine received a barrier packet")

    # -- progress ----------------------------------------------------------
    def _progress(self, seq: int):
        state = self._state(seq)
        if state.in_progress:
            return
        state.in_progress = True
        try:
            while state.phase < len(self.phases):
                phase = self.phases[state.phase]
                if not state.sent_current_phase:
                    state.sent_current_phase = True
                    payload, nbytes = self._phase_payload(state, state.phase)
                    for dst in phase.sends:
                        yield from self._send(
                            state, state.phase, dst, payload, nbytes
                        )
                src = phase.recvs[0]
                message = state.pending.get(src)
                if message is None or message.phase != state.phase:
                    return
                del state.pending[src]
                reason = self._validate(state, message)
                if reason is not None:
                    yield from self._fail(state, reason)
                    return
                self._merge(state, message.payload, state.phase)
                state.phase += 1
                state.sent_current_phase = False
            if not state.complete:
                state.complete = True
                yield from self._complete(state)
        finally:
            state.in_progress = False

    def _send(self, state: _DataState, phase: int, dst: int, payload: Any, nbytes: int):
        nic = self.nic
        message = DataCollMsg(
            self.group.group_id, state.seq, self.rank, phase, payload, nbytes
        )
        state.sent_messages[phase] = message
        yield from nic.cpu_task(nic.params.t_inject)
        nic.fabric.transmit(
            Packet(
                src=nic.node_id,
                dst=self.group.node_of(dst),
                kind=PacketKind.BCAST,
                size_bytes=nic.params.data_header_bytes + nbytes,
                payload=message,
            )
        )
        nic.tracer.count(f"{self.counter_prefix}.sent")

    def _complete(self, state: _DataState):
        from repro.pci import DmaDirection

        nic = self.nic
        state.cancel_timer()
        result, result_bytes = self._finish(state)
        yield from nic.cpu_task(nic.params.t_coll_complete)
        if result_bytes > 0:
            yield from nic.pci.dma(result_bytes, DmaDirection.NIC_TO_HOST)
        self.completed += 1
        nic.tracer.count(f"{self.counter_prefix}.complete")
        del self.states[state.seq]
        self.done_through = max(self.done_through, state.seq)
        self.archive[state.seq] = state.sent_messages
        while len(self.archive) > nic.params.coll_archive_depth:
            self.archive.pop(min(self.archive))
        yield from nic.notify_host(
            DataCollDone(self.group.group_id, state.seq, result)
        )

    def _fail(self, state: _DataState, reason: str):
        """Tear the sequence down and notify the host with a typed failure.

        Mirrors ``_complete``'s teardown (timer, state table, archive)
        so a failed sequence leaves no dangling NIC resources, but DMAs
        a :class:`DataCollFailed` instead of a result.
        """
        nic = self.nic
        state.cancel_timer()
        nic.tracer.count(f"{self.counter_prefix}.failed")
        del self.states[state.seq]
        self.done_through = max(self.done_through, state.seq)
        self.archive[state.seq] = state.sent_messages
        while len(self.archive) > nic.params.coll_archive_depth:
            self.archive.pop(min(self.archive))
        yield from nic.notify_host(
            DataCollFailed(self.group.group_id, state.seq, reason, nic.sim.now)
        )

    # -- receiver-driven reliability ----------------------------------------
    def _arm_nack_timer(self, state: _DataState) -> None:
        nic = self.nic
        state.nack_timer = nic.sim.schedule(
            nic.params.nack_timeout_us, self._nack_timer_fired, state.seq
        )

    def _nack_timer_fired(self, seq: int) -> None:
        if seq in self.states:
            self.nic.post_engine_command((self.group.group_id, "timeout", seq))

    def _on_nack_timeout(self, seq: int):
        state = self.states.get(seq)
        if state is None or state.complete or not state.started:
            return
        state.nack_rounds += 1
        if state.nack_rounds > self.nic.params.max_retries:
            self.nic.tracer.count(f"{self.counter_prefix}.gave_up")
            return
        if state.phase < len(self.phases):
            src = self.phases[state.phase].recvs[0]
            if src not in state.pending:
                self.nic.tracer.count(f"{self.counter_prefix}.nack_timeout")
                yield from self.nic.send_nack(
                    self.group.node_of(src),
                    DataCollNack(
                        self.group.group_id, seq, state.phase, src, self.rank
                    ),
                )
        self._arm_nack_timer(state)

    def on_nack(self, packet: Packet):
        nack: DataCollNack = packet.payload
        nic = self.nic
        yield from nic.cpu_task(nic.params.t_nack_process)
        state = self.states.get(nack.seq)
        if state is not None:
            message = state.sent_messages.get(nack.phase)
            counter = f"{self.counter_prefix}.nack_retransmit"
        else:
            message = self.archive.get(nack.seq, {}).get(nack.phase)
            counter = f"{self.counter_prefix}.nack_stale_resend"
        if message is None:
            nic.tracer.count(f"{self.counter_prefix}.nack_premature")
            return
        nic.tracer.count(counter)
        yield from nic.cpu_task(nic.params.t_inject)
        nic.fabric.transmit(
            Packet(
                src=nic.node_id,
                dst=self.group.node_of(nack.requester),
                kind=PacketKind.BCAST,
                size_bytes=nic.params.data_header_bytes + message.nbytes,
                payload=message,
            )
        )


def host_start_data_collective(port, group: ProcessGroup, seq: int, args: tuple,
                               contribute_bytes: int):
    """Shared host side: contribute data, start, await the result."""
    from repro.pci import DmaDirection

    yield from port.cpu.compute(port.cpu.params.send_overhead_us)
    yield from port.pci.pio_write()
    if contribute_bytes > 0:
        yield from port.pci.dma(contribute_bytes, DmaDirection.HOST_TO_NIC)
    port.nic.post_engine_command((group.group_id, "start", seq) + args)
    done = yield from port.recv_matching(
        lambda ev: isinstance(ev, (DataCollDone, DataCollFailed))
        and ev.group_id == group.group_id
        and ev.seq == seq
    )
    if isinstance(done, DataCollFailed):
        raise CollectiveFailure(
            group.group_id, seq, done.reason, node=port.node_id
        )
    return done.result
